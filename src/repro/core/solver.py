"""R-recovery solvers: invert the measurement map Z(R).

Two complementary solvers, both enforcing R > 0 via ``θ = log R``:

* :func:`solve_nested` — *variable projection*: the per-pair voltages
  are always the exact solution of the inner linear circuit, so the
  outer problem is just ``Z̃(R) = Z`` over the ``n^2`` resistances.
  The outer Jacobian is analytic and beautifully compact: with
  ``P = L^+`` (Laplacian pseudo-inverse) and incidence vector ``b_ab``
  of resistor (a, b),

      ``∂Z_st / ∂R_ab = (x_st^T P b_ab)^2 / R_ab^2``

  (the squared transfer potential), computed for *all* pair/resistor
  combinations with a blocked broadcast kernel.  This is the scalable,
  recommended solver.

* :func:`solve_full` — the paper's formulation taken literally: one
  joint nonlinear system over the ``(2n-1) n^2`` unknowns
  ``(θ, Ua, Ub)``, solved by trust-region least squares with the
  analytic sparse Jacobian of :mod:`repro.core.residual`.

Both return a :class:`SolveResult`; the test suite checks they agree
with each other and with the ground truth on noise-free data.

Fast path
---------
:func:`solve_nested` computes the Gauss–Newton step by solving the
*square* system ``J s = -res`` directly instead of the normal
equations: normal equations square the condition number
(``cond(JᵀJ) = cond(J)²``), which stalls the late iterations near
``tol``; the direct step — a single-precision LU factorisation
polished by iterative refinement against the double-precision
Jacobian — is accurate to ~1e-13, restoring quadratic convergence
(fewer iterations *and* tighter recoveries).  Rejected steps fall to a
backtracking line search whose trial evaluations are single forward
solves (~1 ms), not new factorisations; only when the line search
exhausts does the solver assemble the Levenberg normal equations as a
rescue, with the damping ridge hoisted out of the retry loop and
applied to the diagonal in place.

Both dense kernels (Jacobian assembly, JᵀJ/grad) run behind the
``backend="numpy"|"compiled"`` knob of
:mod:`repro.core.solver_backends`; the two backends are bit-identical
by construction, and a missing numba degrades to numpy with a
recorded metric, never an error.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np
import scipy.linalg
import scipy.optimize

from repro.core.residual import JointSystem
from repro.core.solver_backends import (
    fused_jtj_grad,
    resolve_backend,
    transfer_jacobian,
)
from repro.kirchhoff.forward import (
    effective_resistance_matrix,
    laplacian_factor_cached,
    laplacian_pinv_cached,
)
from repro.utils.validation import require_positive, require_positive_array

#: Relative residual at which an iteratively-refined GN step is
#: accepted as exact for stepping purposes (~100x float64 epsilon).
_REFINE_TARGET = 1e-13
#: Relative residual beyond which the float32-factored step is deemed
#: unusable and the solver re-factorises in double precision.
_REFINE_LIMIT = 1e-10
#: Maximum refinement sweeps before giving up on the float32 factor.
_REFINE_SWEEPS = 6
#: Maximum step halvings in the backtracking line search.
_LINESEARCH_HALVINGS = 20


@dataclass(frozen=True)
class SolveResult:
    """Outcome of an R-recovery solve.

    ``backend`` records the compute backend that actually executed
    (``"numpy"`` after a compiled-requested-but-unavailable fallback).
    """

    r_estimate: np.ndarray
    method: str
    iterations: int
    residual_norm: float
    elapsed_seconds: float
    converged: bool
    backend: str = "numpy"

    def max_relative_error(self, r_true: np.ndarray) -> float:
        r_true = np.asarray(r_true, dtype=np.float64)
        return float(np.max(np.abs(self.r_estimate - r_true) / r_true))

    def mean_relative_error(self, r_true: np.ndarray) -> float:
        r_true = np.asarray(r_true, dtype=np.float64)
        return float(np.mean(np.abs(self.r_estimate - r_true) / r_true))


def predict_z(r: np.ndarray) -> np.ndarray:
    """The forward map Z(R) (alias of the exact crossbar solver)."""
    return effective_resistance_matrix(r)


def nested_jacobian(r: np.ndarray) -> np.ndarray:
    """Analytic ``∂Z_st/∂θ_ab`` (θ = log R), shape (n^2, n^2).

    Rows index measurement pairs (s, t) row-major; columns index
    resistors (a, b) row-major.  Derivation: ``Z = x^T L^+ x``,
    ``∂L/∂G_ab = b b^T`` ⇒ ``∂Z/∂G_ab = -(x^T L^+ b)^2``; with
    ``G = e^{-θ}``, ``∂Z/∂θ_ab = (x^T L^+ b)^2 G_ab``.

    Assembly is blocked over measurement-pair rows so the O(n⁴)
    transfer tensor never materialises at once (peak scratch one
    ~64 MB block; see
    :func:`repro.core.solver_backends.jacobian_row_block`) — values
    are bit-identical to the historical full-broadcast expression.
    """
    r = require_positive_array(r, "r")
    # Cached: within one Gauss-Newton iteration the residual already
    # factorised this same field, so this is usually a cache hit.
    pinv = laplacian_pinv_cached(r)
    return transfer_jacobian(pinv, r)


def nested_jacobian_reference(r: np.ndarray) -> np.ndarray:
    """The historical one-shot broadcast Jacobian (benchmarks/tests).

    Materialises the full O(n⁴) ``transfer`` tensor at once — kept as
    the bit-parity reference for the blocked/compiled kernels and as
    the pre-fast-path baseline for ``benchmarks/bench_solver.py``.
    """
    r = require_positive_array(r, "r")
    m, n = r.shape
    pinv = laplacian_pinv_cached(r)
    hh = pinv[:m, :m]  # P[H_s, H_a]
    hv = pinv[:m, m:]  # P[H_s, V_b]
    vv = pinv[m:, m:]  # P[V_t, V_b]
    # t[s, t, a, b] = P[Hs,Ha] - P[Hs,Vb] - P[Vt,Ha] + P[Vt,Vb]
    transfer = (
        hh[:, None, :, None]
        - hv[:, None, None, :]
        - hv.T[None, :, :, None]
        + vv[None, :, None, :]
    )
    jac = transfer**2 / r[None, None, :, :]
    return jac.reshape(m * n, m * n)


def _scaled_jacobian(r: np.ndarray, z: np.ndarray, backend: str) -> np.ndarray:
    """The relative-residual Jacobian ``nested_jacobian(r) / z`` rows.

    The per-row ``1/z_st`` scaling is fused into the blocked assembly
    (same division, so bit-identical to the two-pass expression)
    instead of a second full-matrix pass.  Reuses the factorisation
    the residual evaluation left in the cache.
    """
    pinv = laplacian_factor_cached(r).pinv
    return transfer_jacobian(pinv, r, z=z, backend=backend)


def _gn_step(jac: np.ndarray, rhs: np.ndarray, obs) -> np.ndarray | None:
    """Solve the square system ``jac @ step = rhs`` to ~1e-13.

    Factorise once in float32 (half the memory traffic of dgetrf on
    this n²×n² matrix), then polish by iterative refinement against
    the double-precision ``jac``.  If refinement cannot reach
    :data:`_REFINE_LIMIT` — ill-conditioned or overflowed float32
    factor — re-factorise in double precision; ``None`` only when even
    that is singular.
    """
    rhs_norm = float(np.linalg.norm(rhs))
    if rhs_norm == 0.0:
        return np.zeros_like(rhs)
    step = None
    try:
        lu32 = scipy.linalg.lu_factor(
            jac.astype(np.float32), check_finite=False
        )
        step = scipy.linalg.lu_solve(
            lu32, rhs.astype(np.float32), check_finite=False
        ).astype(np.float64)
        for _ in range(_REFINE_SWEEPS):
            resid = rhs - jac @ step
            relres = float(np.linalg.norm(resid)) / rhs_norm
            if not np.isfinite(relres) or relres <= _REFINE_TARGET:
                break
            step = step + scipy.linalg.lu_solve(
                lu32, resid.astype(np.float32), check_finite=False
            ).astype(np.float64)
        resid = rhs - jac @ step
        relres = float(np.linalg.norm(resid)) / rhs_norm
        if np.isfinite(relres) and relres <= _REFINE_LIMIT:
            return step
    except (np.linalg.LinAlgError, scipy.linalg.LinAlgError, ValueError):
        pass
    obs.count("solver.gn.refine_fallbacks")
    try:
        return scipy.linalg.solve(jac, rhs, check_finite=False)
    except (np.linalg.LinAlgError, scipy.linalg.LinAlgError):
        return None


def solve_nested(
    z: np.ndarray,
    voltage: float = 5.0,
    r0: np.ndarray | None = None,
    tol: float = 1e-12,
    max_iter: int = 100,
    backend: str = "numpy",
    observer=None,
) -> SolveResult:
    """Variable-projection solve of Z(R) = Z_measured.

    Gauss–Newton on ``θ = log R`` with residuals ``(Z̃ - Z)/Z``, the
    analytic blocked Jacobian, and the direct refined step of
    :func:`_gn_step`; rejected steps backtrack along the GN direction
    (cheap forward evaluations) before escalating to a Levenberg
    rescue.  Per-iteration wall time lands in the
    ``solver.iteration.seconds`` histogram of the active observer.
    """
    from repro.observe.observer import as_observer

    z = require_positive_array(z, "z")
    require_positive(voltage, "voltage")
    obs = as_observer(observer)
    backend = resolve_backend(backend, obs)
    m, n = z.shape
    start = time.perf_counter()
    if r0 is None:
        r_unif = float(np.median(z) * m * n / (m + n - 1))
        r0 = np.full((m, n), r_unif)
    theta = np.log(require_positive_array(r0, "r0")).ravel()
    z_flat = z.ravel()

    def cost_and_res(th: np.ndarray):
        """(cost, res, r) at θ — (inf, None, None) for unusable trials.

        A large trial step can overflow ``exp`` (non-finite field) or
        produce a non-finite cost; both read as "worse than anything"
        so the line search / rescue rejects them instead of crashing.
        """
        with np.errstate(over="ignore", invalid="ignore"):
            r = np.exp(th).reshape(m, n)
        if not np.all(np.isfinite(r)) or np.any(r <= 0.0):
            return np.inf, None, None
        pred = predict_z(r).ravel()
        res = (pred - z_flat) / z_flat
        cost = 0.5 * float(res @ res)
        if not np.isfinite(cost):
            return np.inf, None, None
        return cost, res, r

    cost, res, r_cur = cost_and_res(theta)
    if res is None:
        raise ValueError("r0 produces a non-finite forward prediction")
    iterations = 0
    converged = False
    for iterations in range(1, max_iter + 1):
        if np.max(np.abs(res)) < tol:
            converged = True
            break
        iter_start = time.perf_counter()
        jac = _scaled_jacobian(r_cur, z, backend)
        step = _gn_step(jac, -res, obs)
        accepted_step = None
        if step is not None:
            alpha = 1.0
            for _ in range(_LINESEARCH_HALVINGS):
                trial = theta + alpha * step
                new_cost, new_res, new_r = cost_and_res(trial)
                if new_cost < cost:
                    theta = trial
                    cost, res, r_cur = new_cost, new_res, new_r
                    accepted_step = alpha * step
                    break
                alpha *= 0.5
        if accepted_step is None:
            obs.count("solver.gn.lm_rescues")
            rescue = _lm_rescue(jac, res, theta, cost, cost_and_res, backend)
            if rescue is not None:
                accepted_step, cost, res, r_cur, theta = rescue
        obs.observe_hist(
            "solver.iteration.seconds", time.perf_counter() - iter_start
        )
        if accepted_step is None:
            break  # no acceptable step found
        if np.max(np.abs(accepted_step)) < 1e-15:
            converged = True
            break
    if np.max(np.abs(res)) < tol:
        converged = True
    return SolveResult(
        r_estimate=r_cur,
        method="nested",
        iterations=iterations,
        residual_norm=float(np.linalg.norm(res)),
        elapsed_seconds=time.perf_counter() - start,
        converged=converged,
        backend=backend,
    )


def _lm_rescue(jac, res, theta, cost, cost_and_res, backend):
    """Levenberg fallback when the GN direction yields no decrease.

    Assembles the normal equations lazily (only this path pays the
    JᵀJ gemm) and retries with an escalating damping ridge written
    onto the diagonal in place — diagonal values identical to the
    historical ``jtj + lam·diag(diag(jtj)) + 1e-300·I`` expression,
    without re-allocating two dense n²×n² matrices per retry.
    """
    jtj, grad = fused_jtj_grad(jac, res, backend)
    diag_base = np.diag(jtj).copy()
    diag_idx = np.diag_indices_from(jtj)
    lam = 1e-4
    for _ in range(25):
        jtj[diag_idx] = diag_base + lam * diag_base + 1e-300
        try:
            step = np.linalg.solve(jtj, -grad)
        except np.linalg.LinAlgError:
            lam = max(lam * 10.0, 1e-8)
            continue
        new_cost, new_res, new_r = cost_and_res(theta + step)
        if new_cost < cost:
            return step, new_cost, new_res, new_r, theta + step
        lam = max(lam * 10.0, 1e-8)
    return None


def solve_nested_reference(
    z: np.ndarray,
    voltage: float = 5.0,
    r0: np.ndarray | None = None,
    tol: float = 1e-12,
    max_iter: int = 100,
) -> SolveResult:
    """The pre-fast-path damped Gauss–Newton solver, kept verbatim.

    Normal-equation Levenberg–Marquardt over the full-broadcast
    Jacobian — the baseline ``benchmarks/bench_solver.py`` measures
    speedups against, and the behavioural reference the regression
    suite compares :func:`solve_nested` recoveries to.  Not wired into
    any production path.
    """
    z = require_positive_array(z, "z")
    require_positive(voltage, "voltage")
    m, n = z.shape
    start = time.perf_counter()
    if r0 is None:
        r_unif = float(np.median(z) * m * n / (m + n - 1))
        r0 = np.full((m, n), r_unif)
    theta = np.log(require_positive_array(r0, "r0")).ravel()
    z_flat = z.ravel()

    def cost_and_res(th: np.ndarray) -> tuple[float, np.ndarray, np.ndarray]:
        r = np.exp(th).reshape(m, n)
        pred = predict_z(r).ravel()
        res = (pred - z_flat) / z_flat
        return 0.5 * float(res @ res), res, r

    cost, res, r_cur = cost_and_res(theta)
    iterations = 0
    converged = False
    lam = 0.0  # Levenberg damping, raised on rejected steps
    for iterations in range(1, max_iter + 1):
        jac = nested_jacobian_reference(r_cur) / z_flat[:, None]
        grad = jac.T @ res
        if np.max(np.abs(res)) < tol:
            converged = True
            break
        jtj = jac.T @ jac
        step = None
        for _ in range(25):
            try:
                step = np.linalg.solve(
                    jtj + lam * np.diag(np.diag(jtj)) + 1e-300 * np.eye(len(grad)),
                    -grad,
                )
            except np.linalg.LinAlgError:
                lam = max(lam * 10.0, 1e-8)
                continue
            new_cost, new_res, new_r = cost_and_res(theta + step)
            if new_cost < cost:
                theta = theta + step
                cost, res, r_cur = new_cost, new_res, new_r
                lam = lam / 3.0 if lam > 1e-12 else 0.0
                break
            lam = max(lam * 10.0, 1e-8)
        else:
            break  # no acceptable step found
        if step is not None and np.max(np.abs(step)) < 1e-15:
            converged = True
            break
    if np.max(np.abs(res)) < tol:
        converged = True
    return SolveResult(
        r_estimate=r_cur,
        method="nested",
        iterations=iterations,
        residual_norm=float(np.linalg.norm(res)),
        elapsed_seconds=time.perf_counter() - start,
        converged=converged,
    )


def solve_full(
    z: np.ndarray,
    voltage: float = 5.0,
    r0: np.ndarray | None = None,
    tol: float = 1e-10,
    max_nfev: int = 60,
    backend: str = "numpy",
    observer=None,
) -> SolveResult:
    """Joint solve over (θ, Ua, Ub) — the paper's literal formulation.

    Trust-region reflective least squares with the analytic sparse
    Jacobian; ``tr_solver='lsmr'`` keeps memory at the Jacobian's
    O(n^4) nonzeros.  The ``backend`` knob is accepted for interface
    symmetry but has no effect: this path is sparse end to end and
    never assembles the dense kernels the knob selects.
    """
    del backend, observer  # sparse path: no dense kernels to select
    z = require_positive_array(z, "z")
    if z.shape[0] != z.shape[1]:
        raise ValueError("full solver requires a square device")
    n = z.shape[0]
    system = JointSystem(n=n, z=z, voltage=voltage)
    start = time.perf_counter()
    x0 = system.initial_state(r0)
    result = scipy.optimize.least_squares(
        system.residual,
        x0,
        jac=system.jacobian,
        method="trf",
        tr_solver="lsmr",
        xtol=tol,
        ftol=tol,
        gtol=tol,
        max_nfev=max_nfev,
    )
    r_est, _, _ = system.unpack(result.x)
    return SolveResult(
        r_estimate=r_est,
        method="full",
        iterations=int(result.nfev),
        residual_norm=float(np.linalg.norm(result.fun)),
        elapsed_seconds=time.perf_counter() - start,
        converged=bool(result.success),
    )


def solve_bounded(
    z: np.ndarray,
    voltage: float = 5.0,
    r0: np.ndarray | None = None,
    tol: float = 1e-10,
    max_nfev: int = 200,
    spread: float = 6.0,
    backend: str = "numpy",
    observer=None,
) -> SolveResult:
    """Box-bounded trust-region solve on ``θ = log R`` (safety net).

    The last rung of the degradation ladder
    (:mod:`repro.resilience.degrade`): when Gauss–Newton diverges —
    wildly inconsistent measurements, a poisoned warm start — this
    solve cannot run away, because every iterate is confined to
    ``θ ∈ [θ_unif - spread, θ_unif + spread]`` around the uniform-field
    estimate (±``spread`` natural-log units ≈ a factor ``e^spread`` in
    resistance, generous for any physical device).  Slower and less
    accurate than :func:`solve_nested`, but it always returns a finite
    field.
    """
    from repro.observe.observer import as_observer

    z = require_positive_array(z, "z")
    require_positive(voltage, "voltage")
    backend = resolve_backend(backend, as_observer(observer))
    m, n = z.shape
    start = time.perf_counter()
    theta_unif = float(np.log(np.median(z) * m * n / (m + n - 1)))
    lo = theta_unif - spread
    hi = theta_unif + spread
    if r0 is None:
        theta0 = np.full(m * n, theta_unif)
    else:
        theta0 = np.log(require_positive_array(r0, "r0")).ravel()
    # least_squares requires a strictly interior start.
    margin = 1e-9 * max(1.0, abs(hi - lo))
    theta0 = np.clip(theta0, lo + margin, hi - margin)
    z_flat = z.ravel()

    def residual(th: np.ndarray) -> np.ndarray:
        r = np.exp(th).reshape(m, n)
        return (predict_z(r).ravel() - z_flat) / z_flat

    def jacobian(th: np.ndarray) -> np.ndarray:
        r = np.exp(th).reshape(m, n)
        return _scaled_jacobian(require_positive_array(r, "r"), z, backend)

    result = scipy.optimize.least_squares(
        residual,
        theta0,
        jac=jacobian,
        bounds=(lo, hi),
        method="trf",
        xtol=tol,
        ftol=tol,
        gtol=tol,
        max_nfev=max_nfev,
    )
    r_est = np.exp(result.x).reshape(m, n)
    return SolveResult(
        r_estimate=r_est,
        method="bounded",
        iterations=int(result.nfev),
        residual_norm=float(np.linalg.norm(result.fun)),
        elapsed_seconds=time.perf_counter() - start,
        converged=bool(result.success) and bool(np.all(np.isfinite(r_est))),
        backend=backend,
    )


def solve(
    z: np.ndarray,
    voltage: float = 5.0,
    method: str = "nested",
    backend: str = "numpy",
    observer=None,
    **kwargs,
) -> SolveResult:
    """Dispatch to a solver by name.

    ``"nested"`` (recommended), ``"full"`` (the paper's joint system),
    ``"regularized"`` (Tikhonov-smoothed nested; pass ``lam=...``,
    default 1e-3 — see :mod:`repro.core.regularized`), or ``"bounded"``
    (box-constrained trust region, the degradation ladder's safety
    net).  ``backend`` selects the dense-kernel implementation
    (``"numpy"``/``"compiled"``; see
    :mod:`repro.core.solver_backends`) and threads to every method —
    the sparse ``"full"`` solver accepts and ignores it.
    """
    if method == "nested":
        return solve_nested(
            z, voltage=voltage, backend=backend, observer=observer, **kwargs
        )
    if method == "full":
        return solve_full(
            z, voltage=voltage, backend=backend, observer=observer, **kwargs
        )
    if method == "regularized":
        from repro.core.regularized import solve_regularized

        kwargs.setdefault("lam", 1e-3)
        return solve_regularized(
            z, voltage=voltage, backend=backend, observer=observer, **kwargs
        )
    if method == "bounded":
        return solve_bounded(
            z, voltage=voltage, backend=backend, observer=observer, **kwargs
        )
    raise ValueError(
        f"unknown method {method!r}; use 'nested', 'full', 'regularized' "
        "or 'bounded'"
    )
