"""Installation self-test: the library's core invariants in one call.

A downstream user's first question is "does this work here?".
:func:`run_selftest` executes the load-bearing invariants end to end
on a small device and reports each:

1. **forward/inverse round-trip** — measure a known field, invert,
   compare (must be ~machine exact);
2. **equation consistency** — ground-truth R + forward-solved voltages
   zero out every generated joint constraint;
3. **topology/physics agreement** — β1 (GF(2) homology) = Maxwell
   count = mesh equations = (n−1)²;
4. **strategy equivalence** — every parallel formation strategy
   produces the single-thread system exactly (real forked workers);
5. **serialization round-trip** — binary equation files reload
   bit-exactly.

Exposed on the CLI as ``parma selftest``.  Checks run independently;
the report lists every failure rather than stopping at the first.
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one invariant check."""

    name: str
    passed: bool
    detail: str
    elapsed_seconds: float


@dataclass(frozen=True)
class SelfTestReport:
    checks: tuple[CheckResult, ...] = field(default_factory=tuple)

    @property
    def passed(self) -> bool:
        return all(c.passed for c in self.checks)

    @property
    def num_failed(self) -> int:
        return sum(not c.passed for c in self.checks)

    def render(self) -> str:
        lines = ["Parma self-test:"]
        for c in self.checks:
            status = "PASS" if c.passed else "FAIL"
            lines.append(
                f"  [{status}] {c.name} ({c.elapsed_seconds * 1e3:.0f} ms)"
                + (f" — {c.detail}" if c.detail else "")
            )
        verdict = (
            "all invariants hold"
            if self.passed
            else f"{self.num_failed} check(s) FAILED"
        )
        lines.append(f"=> {verdict}")
        return "\n".join(lines)


def _check(name, fn) -> CheckResult:
    start = time.perf_counter()
    try:
        detail = fn() or ""
        passed = True
    except Exception as exc:  # noqa: BLE001 - report, don't crash
        detail = f"{type(exc).__name__}: {exc}"
        passed = False
    return CheckResult(
        name=name,
        passed=passed,
        detail=detail,
        elapsed_seconds=time.perf_counter() - start,
    )


def run_selftest(n: int = 5, seed: int = 1234) -> SelfTestReport:
    """Run every invariant check on an ``n x n`` device."""
    from repro.mea.wetlab import quick_device_data

    r_true, z = quick_device_data(n, seed=seed)
    checks = []

    def roundtrip():
        from repro.core.solver import solve_nested

        result = solve_nested(z)
        err = result.max_relative_error(r_true)
        if err > 1e-8:
            raise AssertionError(f"round-trip error {err:.2e} > 1e-8")
        return f"max rel err {err:.1e}"

    checks.append(_check("forward/inverse round-trip", roundtrip))

    def equations():
        from repro.core.equations import form_pair_block
        from repro.kirchhoff.forward import solve_drive

        worst = 0.0
        for i in range(n):
            for j in range(n):
                sol = solve_drive(r_true, i, j, voltage=5.0)
                blk = form_pair_block(n, i, j, z=sol.z, voltage=5.0)
                worst = max(
                    worst, blk.max_relative_residual(r_true, sol.ua(), sol.ub())
                )
        if worst > 1e-10:
            raise AssertionError(f"equation residual {worst:.2e} > 1e-10")
        return f"worst residual {worst:.1e}"

    checks.append(_check("joint-constraint consistency", equations))

    def topology():
        from repro.kirchhoff.laws import Circuit, ResistorEdge
        from repro.mea.device import MEAGrid
        from repro.mea.graph import device_complex, wire_graph
        from repro.topology.cycles import cyclomatic_number
        from repro.topology.homology import betti_numbers

        grid = MEAGrid(n)
        beta = betti_numbers(device_complex(grid))
        wg = wire_graph(grid)
        maxwell = cyclomatic_number(list(wg.nodes), list(wg.edges))
        circuit = Circuit([ResistorEdge(u, v, 1.0) for u, v in wg.edges])
        mesh = circuit.num_independent_l2()
        expected = (n - 1) ** 2
        if not (beta == (1, expected) and maxwell == mesh == expected):
            raise AssertionError(
                f"beta={beta}, maxwell={maxwell}, mesh={mesh}, "
                f"expected {(1, expected)}"
            )
        return f"beta1 = {expected} holes, three ways"

    checks.append(_check("topology/physics agreement", topology))

    def strategies():
        from repro.core.strategies import (
            BalancedParallel,
            ParallelStrategy,
            PyMPStrategy,
            SingleThread,
        )

        reference = SingleThread().run(z)
        for strategy in (ParallelStrategy(), BalancedParallel(2), PyMPStrategy(2)):
            rep = strategy.run(z)
            if rep.terms_formed != reference.terms_formed or not np.isclose(
                rep.checksum, reference.checksum
            ):
                raise AssertionError(f"{rep.strategy} diverged from baseline")
        return f"{reference.terms_formed} terms, 4 strategies agree"

    checks.append(_check("parallel strategy equivalence", strategies))

    def serialization():
        from repro.core.equations import form_all_blocks
        from repro.io.equations_io import load_blocks_binary, save_blocks_binary

        blocks = form_all_blocks(z)
        with tempfile.TemporaryDirectory() as d:
            path = Path(d) / "selftest.bin"
            save_blocks_binary(blocks, path)
            back = load_blocks_binary(path)
        a = sum(b.checksum() for b in blocks)
        b = sum(b.checksum() for b in back)
        if len(back) != len(blocks) or not np.isclose(a, b):
            raise AssertionError("binary round-trip mismatch")
        return f"{len(blocks)} blocks round-tripped"

    checks.append(_check("equation serialization round-trip", serialization))

    return SelfTestReport(checks=tuple(checks))
