"""Bounded-memory streaming formation for the largest devices.

At ``n = 100`` the full term set is 2·10⁸ entries (~3.2 GB) — the
paper's memory figure shows the in-memory pipeline climbing toward
20 GB there.  When only the *serialized* system is needed (Fig. 9's
workload, or feeding an out-of-core solver), formation can stream:
form one pair block, hand it to a sink, drop it.  Peak memory is then
one block (O(n²) ≈ 320 KB at n = 100) regardless of device size.

:func:`stream_formation` is the generic driver;
:class:`FormationSink` implementations cover the common sinks
(binary file, counting/checksum only, memory sampling).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import BinaryIO, Protocol

import numpy as np

from repro.core.equations import PairBlock, iter_pair_blocks
from repro.core.templates import check_formation_mode, iter_pair_blocks_cached
from repro.io.equations_io import write_block_binary
from repro.observe.observer import as_observer
from repro.resilience.atomio import atomic_open
from repro.resilience.faults import as_injector
from repro.resilience.supervise import Deadline, DeadlineExceeded
from repro.utils.validation import require_positive


class FormationSink(Protocol):
    """Consumes one block at a time; must not retain references."""

    def consume(self, block: PairBlock) -> None: ...


@dataclass
class CountingSink:
    """Aggregates counts/checksums without retaining blocks."""

    terms: int = 0
    equations: int = 0
    checksum: float = 0.0

    def consume(self, block: PairBlock) -> None:
        self.terms += block.num_terms
        self.equations += block.num_equations
        self.checksum += block.checksum()


@dataclass
class BinaryFileSink:
    """Appends each block to an open binary stream."""

    fh: BinaryIO
    bytes_written: int = 0

    def consume(self, block: PairBlock) -> None:
        self.bytes_written += write_block_binary(block, self.fh)


@dataclass
class TeeSink:
    """Fans one stream out to several sinks."""

    sinks: tuple = ()

    def consume(self, block: PairBlock) -> None:
        for sink in self.sinks:
            sink.consume(block)


@dataclass
class MemoryWatermarkSink:
    """Tracks the RSS high-water mark while consuming (for tests)."""

    samples: list = field(default_factory=list)
    every: int = 50
    _count: int = 0

    def consume(self, block: PairBlock) -> None:
        self._count += 1
        if self._count % self.every == 0:
            from repro.instrument.memory import rss_bytes

            self.samples.append(rss_bytes())

    @property
    def peak(self) -> int:
        return max(self.samples, default=0)


@dataclass(frozen=True)
class StreamReport:
    n: int
    pairs_formed: int
    terms_formed: int
    elapsed_seconds: float

    def terms_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return float("inf")
        return self.terms_formed / self.elapsed_seconds


def stream_formation(
    z: np.ndarray,
    sink: FormationSink,
    voltage: float = 5.0,
    formation: str = "cached",
    faults=None,
    observer=None,
    deadline: Deadline | float | None = None,
) -> StreamReport:
    """Form every pair block of ``z`` and feed it to ``sink``.

    Memory stays bounded (one block legacy, one fixed-size batch
    cached); the returned report carries throughput so benchmarks can
    extrapolate wall time for any n.  ``formation="cached"`` stamps
    blocks from the per-n template (blocks handed to the sink are
    views into the current batch — the no-retention contract above is
    what makes that safe); ``"legacy"`` is the original per-pair path.

    ``faults`` (a :class:`repro.resilience.FaultPlan` or injector) can
    corrupt or drop blocks before the sink, and abort the stream — the
    failure modes the checkpointed writer
    (:func:`repro.resilience.checkpoint.stream_to_file_checkpointed`)
    detects and repairs on resume.

    ``deadline`` (seconds or a running
    :class:`repro.resilience.supervise.Deadline`) is checked once per
    block; on expiry the stream raises
    :class:`repro.resilience.supervise.DeadlineExceeded` with
    ``partial`` set to the blocks-consumed count, leaving whatever the
    sink already committed intact.
    """
    z = np.asarray(z, dtype=np.float64)
    if z.ndim != 2 or z.shape[0] != z.shape[1]:
        raise ValueError("z must be square (n, n)")
    require_positive(voltage, "voltage")
    formation = check_formation_mode(formation)
    injector = as_injector(faults)
    deadline = Deadline.coerce(deadline)
    obs = as_observer(observer)
    n = z.shape[0]
    start = time.perf_counter()
    pairs = 0
    terms = 0
    blocks = (
        iter_pair_blocks_cached(z, voltage=voltage)
        if formation == "cached"
        else iter_pair_blocks(z, voltage=voltage)
    )
    with obs.span("stream", n=n, formation=formation, sink=type(sink).__name__):
        for index, block in enumerate(blocks):
            if deadline is not None and deadline.expired:
                raise DeadlineExceeded(
                    f"deadline of {deadline.seconds:g}s expired after "
                    f"{pairs} streamed block(s)",
                    deadline=deadline,
                    partial=pairs,
                )
            if injector is not None:
                block = injector.mangle_block(block, index)
                if block is None:
                    obs.event("stream.block_dropped", index=index)
                    obs.count("stream.blocks_dropped")
                    continue  # dropped before the sink
            sink.consume(block)
            pairs += 1
            terms += block.num_terms
            if injector is not None:
                injector.maybe_abort_stream(pairs)
    obs.count("stream.blocks_consumed", pairs)
    obs.count("stream.terms", terms)
    return StreamReport(
        n=n,
        pairs_formed=pairs,
        terms_formed=terms,
        elapsed_seconds=time.perf_counter() - start,
    )


def stream_to_file(
    z: np.ndarray, path: str | Path, voltage: float = 5.0, formation: str = "cached"
) -> tuple[StreamReport, int]:
    """Stream the full system to one binary file; returns (report, bytes).

    The write is atomic (tmp+fsync+rename): an interrupted stream
    leaves no file under ``path``.  For resumable multi-gigabyte
    streams use
    :func:`repro.resilience.checkpoint.stream_to_file_checkpointed`.
    """
    with atomic_open(path, "wb") as fh:
        sink = BinaryFileSink(fh=fh)
        report = stream_formation(z, sink, voltage=voltage, formation=formation)
    return report, sink.bytes_written
