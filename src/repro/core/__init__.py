"""Parma core: the paper's primary contribution.

* :mod:`repro.core.categories` — the four constraint categories and
  their exact size accounting.
* :mod:`repro.core.equations` — joint-constraint equation formation
  (§IV-A): ``2 n^3`` equations, structure-of-arrays term blocks.
* :mod:`repro.core.partition` — work decomposition: per-category,
  balanced (deterministic LPT), and Betti-aware (homology holes).
* :mod:`repro.core.strategies` — the paper's four executable systems:
  SingleThread / Parallel / Balanced Parallel / PyMP-k.
* :mod:`repro.core.residual` / :mod:`repro.core.solver` — the
  nonlinear inverse problem: recover R from Z (nested variable-
  projection and full joint formulations).
* :mod:`repro.core.engine` / :mod:`repro.core.pipeline` — the public
  parametrize() API and campaign pipelines.
"""

from repro.core.categories import (
    Category,
    category_costs,
    equations_per_device,
    equations_per_pair,
    terms_per_pair,
    total_equations,
    total_terms,
    total_unknowns,
)
from repro.core.conditioning import (
    ConditioningReport,
    analyze_conditioning,
    conditioning_vs_size,
)
from repro.core.distributed import MPIFormation
from repro.core.engine import ParmaEngine, ParmaResult
from repro.core.equations import (
    PairBlock,
    SystemStats,
    form_all_blocks,
    form_pair_block,
    iter_pair_blocks,
)
from repro.core.partition import (
    Partition,
    WorkItem,
    effective_parallelism,
    hole_of_pair,
    partition,
    partition_balanced,
    partition_betti,
    partition_by_category,
)
from repro.core.pipeline import CampaignResult, run_pipeline
from repro.core.regularized import (
    l_curve,
    pick_lambda_by_discrepancy,
    solve_regularized,
)
from repro.core.residual import (
    JointSystem,
    clear_jacobian_cache,
    jacobian_cache_stats,
)
from repro.core.selftest import SelfTestReport, run_selftest
from repro.core.streaming import (
    BinaryFileSink,
    CountingSink,
    StreamReport,
    stream_formation,
    stream_to_file,
)
from repro.core.solver import (
    SolveResult,
    solve,
    solve_bounded,
    solve_full,
    solve_nested,
)
from repro.core.templates import (
    PairBlockBatch,
    PairTemplate,
    cache_stats,
    clear_template_cache,
    form_all_pairs,
    form_worker_share,
    get_template,
    iter_pair_blocks_cached,
    stamp_pair_block,
    warm_template_cache,
)
from repro.core.strategies import (
    BalancedParallel,
    FormationReport,
    ParallelStrategy,
    PyMPStrategy,
    SingleThread,
    calibrate_sec_per_term,
    item_costs_seconds,
    make_strategy,
)

__all__ = [
    "BalancedParallel",
    "ConditioningReport",
    "analyze_conditioning",
    "conditioning_vs_size",
    "BinaryFileSink",
    "CountingSink",
    "MPIFormation",
    "StreamReport",
    "stream_formation",
    "stream_to_file",
    "CampaignResult",
    "Category",
    "FormationReport",
    "JointSystem",
    "PairBlock",
    "PairBlockBatch",
    "PairTemplate",
    "cache_stats",
    "clear_jacobian_cache",
    "clear_template_cache",
    "form_all_pairs",
    "form_worker_share",
    "get_template",
    "iter_pair_blocks_cached",
    "jacobian_cache_stats",
    "stamp_pair_block",
    "warm_template_cache",
    "ParallelStrategy",
    "ParmaEngine",
    "ParmaResult",
    "Partition",
    "PyMPStrategy",
    "SingleThread",
    "SolveResult",
    "SystemStats",
    "WorkItem",
    "calibrate_sec_per_term",
    "category_costs",
    "effective_parallelism",
    "equations_per_device",
    "equations_per_pair",
    "form_all_blocks",
    "form_pair_block",
    "hole_of_pair",
    "item_costs_seconds",
    "iter_pair_blocks",
    "l_curve",
    "pick_lambda_by_discrepancy",
    "solve_regularized",
    "SelfTestReport",
    "run_selftest",
    "make_strategy",
    "partition",
    "partition_balanced",
    "partition_betti",
    "partition_by_category",
    "run_pipeline",
    "solve",
    "solve_bounded",
    "solve_full",
    "solve_nested",
    "terms_per_pair",
    "total_equations",
    "total_terms",
    "total_unknowns",
]
