"""Global residual and analytic sparse Jacobian of the joint system.

The *full* Parma solve treats every unknown jointly: the state vector
is ``x = [θ, Ua, Ub]`` with ``θ = log R`` (length ``n^2``; the log
parametrization enforces R > 0 for free) and the per-pair voltages
``Ua``/``Ub`` (each ``n^2 * (n-1)``).  Residuals are the ``2 n^3``
Kirchhoff balances of :mod:`repro.core.equations`, normalised per pair
by the drive current ``U / Z`` so rows are dimensionless and O(1).

Equation order: for pair ``p`` (row-major), the ``2n`` rows
``[SOURCE, DEST, UA_0.., UB_0..]`` — identical to
:func:`repro.core.equations.form_pair_block`.

The Jacobian is assembled analytically in COO form.  Per pair there
are at most ``6 n^2`` nonzeros, so the full matrix has O(n^4) nonzeros
— sparse at density ``~3/n^2`` — and ``scipy.optimize.least_squares``
with ``tr_solver="lsmr"`` scales to the sizes the solver benchmarks
use.  The COO sparsity pattern depends only on ``n``, never on ``x``,
so it is computed once and cached (:func:`jacobian_cache_stats`
observes the cache): each solver iteration only recomputes values into
the preallocated ``data`` buffer and converts through a precomputed
COO→CSR mapping.  :meth:`JointSystem.jacobian_reference` keeps the
from-scratch assembly as the reference implementation.

All rows use the LHS - RHS convention of
:meth:`repro.core.equations.PairBlock.residuals`, so the global vector
restricted to one pair equals that pair's block residuals (up to the
per-pair normalisation ``z/U``).  Derivatives (G = e^{-θ}, so
``∂/∂θ = -G ∂/∂G``):

=========  ==================================================================
row        nonzero columns
=========  ==================================================================
SOURCE     θ_ij: -U G_ij;  θ_ik: -(U - Ua_k) G_ik;  Ua_k: -G_ik
DEST       θ_ij: -U G_ij;  θ_mj: -Ub_m G_mj;  Ub_m: +G_mj
UA_k       θ_ik: -(U - Ua_k) G_ik;  θ_mk: +(Ua_k - Ub_m) G_mk;
           Ua_k: -(G_ik + Σ_m G_mk);  Ub_m: +G_mk
UB_m       θ_mk: -(Ua_k - Ub_m) G_mk;  θ_mj: +Ub_m G_mj;
           Ua_k: +G_mk;  Ub_m: -(Σ_k G_mk + G_mj)
=========  ==================================================================
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from functools import cached_property

import numpy as np
import scipy.sparse

from repro.utils.validation import require_positive, require_positive_array


@dataclass(frozen=True)
class JointSystem:
    """Index bookkeeping for the full joint system of one device."""

    n: int
    z: np.ndarray  # (n, n) measured
    voltage: float

    def __post_init__(self) -> None:
        z = require_positive_array(self.z, "z")
        if z.ndim != 2 or z.shape[0] != z.shape[1]:
            raise ValueError("z must be square")
        object.__setattr__(self, "z", z)
        require_positive(self.voltage, "voltage")
        if z.shape[0] != self.n:
            raise ValueError(f"z side {z.shape[0]} != n = {self.n}")

    # -- layout ------------------------------------------------------------

    @property
    def num_pairs(self) -> int:
        return self.n * self.n

    @property
    def num_theta(self) -> int:
        return self.n * self.n

    @property
    def num_voltage_unknowns(self) -> int:
        return 2 * self.num_pairs * (self.n - 1)

    @property
    def num_unknowns(self) -> int:
        return self.num_theta + self.num_voltage_unknowns

    @property
    def num_residuals(self) -> int:
        return 2 * self.n * self.num_pairs

    def theta_index(self, row: np.ndarray, col: np.ndarray) -> np.ndarray:
        return row * self.n + col

    def ua_index(self, pair: np.ndarray, k_prime: np.ndarray) -> np.ndarray:
        return self.num_theta + pair * (self.n - 1) + k_prime

    def ub_index(self, pair: np.ndarray, m_prime: np.ndarray) -> np.ndarray:
        return (
            self.num_theta
            + self.num_pairs * (self.n - 1)
            + pair * (self.n - 1)
            + m_prime
        )

    # -- state packing -----------------------------------------------------

    def pack(self, r: np.ndarray, ua: np.ndarray, ub: np.ndarray) -> np.ndarray:
        """Pack (R (n,n), Ua (p, n-1), Ub (p, n-1)) into the x vector."""
        n, p = self.n, self.num_pairs
        if r.shape != (n, n) or ua.shape != (p, n - 1) or ub.shape != (p, n - 1):
            raise ValueError("state shapes do not match the device")
        return np.concatenate(
            [np.log(np.asarray(r, dtype=np.float64)).ravel(), ua.ravel(), ub.ravel()]
        )

    def unpack(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        n, p = self.n, self.num_pairs
        if x.shape != (self.num_unknowns,):
            raise ValueError(
                f"x has length {x.shape}, expected {self.num_unknowns}"
            )
        theta = x[: self.num_theta].reshape(n, n)
        ua = x[self.num_theta : self.num_theta + p * (n - 1)].reshape(p, n - 1)
        ub = x[self.num_theta + p * (n - 1) :].reshape(p, n - 1)
        return np.exp(theta), ua, ub

    # -- residual -----------------------------------------------------------

    def residual(self, x: np.ndarray) -> np.ndarray:
        """All ``2 n^3`` normalised residuals, fully vectorised.

        Works on whole-device tensors: ``UA``/``UB`` are reshaped to
        ``(n, n, n-1)`` (pair row, pair col, intermediate index) and the
        category sums become einsum/matmul contractions.
        """
        n = self.n
        r, ua_flat, ub_flat = self.unpack(x)
        g = 1.0 / r
        u = self.voltage
        ua = ua_flat.reshape(n, n, n - 1)  # [i, j, k']
        ub = ub_flat.reshape(n, n, n - 1)  # [i, j, m']
        drive = u / self.z  # (n, n)

        # Gathered conductance tables.
        g_ik = _delete_cols_per_j(g)  # [i, j, k'] = G[i, k(k')]
        g_mj = _delete_rows_per_i(g)  # [i, j, m'] = G[m(m'), j]
        g_mk = _delete_both(g)  # [i, j, m', k'] = G[m, k]

        # SOURCE: U G_ij + Σ_k (U - Ua) G_ik - drive   (LHS - RHS, the
        # same convention as PairBlock.residuals).
        f_src = u * g + ((u - ua) * g_ik).sum(axis=2) - drive
        # DEST: U G_ij + Σ_m Ub G_mj - drive
        f_dst = u * g + (ub * g_mj).sum(axis=2) - drive
        # UA_k: (U - Ua_k) G_ik - Σ_m (Ua_k - Ub_m) G_mk
        cross = ua[:, :, None, :] - ub[:, :, :, None]  # [i,j,m',k']
        f_ua = (u - ua) * g_ik - (cross * g_mk).sum(axis=2)
        # UB_m: Σ_k (Ua_k - Ub_m) G_mk - Ub_m G_mj
        f_ub = (cross * g_mk).sum(axis=3) - ub * g_mj

        # Normalise and interleave into per-pair order
        # [SOURCE, DEST, UA.., UB..].
        scale = 1.0 / drive
        out = np.empty((n * n, 2 * n), dtype=np.float64)
        out[:, 0] = (f_src * scale).ravel()
        out[:, 1] = (f_dst * scale).ravel()
        out[:, 2 : n + 1] = (f_ua * scale[:, :, None]).reshape(n * n, n - 1)
        out[:, n + 1 :] = (f_ub * scale[:, :, None]).reshape(n * n, n - 1)
        return out.ravel()

    # -- Jacobian --------------------------------------------------------------

    @cached_property
    def _row_scale(self) -> np.ndarray:
        """Per-pair row normalisation ``z/U`` (x-independent)."""
        pairs = np.arange(self.num_pairs)
        return (self.z[pairs // self.n, pairs % self.n] / self.voltage).ravel()

    def jacobian(self, x: np.ndarray) -> scipy.sparse.csr_matrix:
        """Analytic sparse Jacobian at ``x`` (CSR, rows = residuals).

        Fast path: the sparsity structure is fetched from the
        process-wide per-``n`` cache (built once), so each call only
        evaluates the nonzero *values* and scatters them through the
        precomputed COO→CSR mapping.  Output matches
        :meth:`jacobian_reference` to machine precision.
        """
        struct = _get_jac_structure(self.n)
        vals = self._jacobian_values(x, struct)
        data = np.add.reduceat(vals[struct.perm], struct.starts)
        return scipy.sparse.csr_matrix(
            (data, struct.indices, struct.indptr),
            shape=(self.num_residuals, self.num_unknowns),
        )

    def _jacobian_values(
        self, x: np.ndarray, struct: "_JacobianStructure"
    ) -> np.ndarray:
        """Nonzero values in the canonical COO emission order.

        Mirrors block-for-block the ``add(...)`` sequence of
        :meth:`jacobian_reference`; the block order here and the
        row/col order of :func:`_build_jac_structure` must stay in
        lockstep (property-tested).
        """
        r, ua, ub = self.unpack(x)
        g = 1.0 / r
        u = self.voltage
        i_of, j_of, ks, ms = struct.i_of, struct.j_of, struct.ks, struct.ms
        g_ik = g[i_of[:, None], ks]  # (p, n-1)
        g_mj = g[ms, j_of[:, None]]  # (p, n-1)
        g_mk = g[ms[:, :, None], ks[:, None, :]]  # (p, m', k')
        g_ij = g[i_of, j_of]  # (p,)
        scale = self._row_scale
        cross = ua[:, None, :] - ub[:, :, None]  # (p, m', k')
        blocks = (
            # SOURCE row: θ_ij, θ_ik, Ua_k.
            -scale * u * g_ij,
            (-scale[:, None] * (u - ua) * g_ik),
            (-scale[:, None] * g_ik),
            # DEST row: θ_ij, θ_mj, Ub_m.
            -scale * u * g_ij,
            (-scale[:, None] * ub * g_mj),
            (scale[:, None] * g_mj),
            # UA rows: θ_ik, θ_mk, Ua_k, Ub_m.
            -scale[:, None] * (u - ua) * g_ik,
            scale[:, None, None] * cross * g_mk,
            -scale[:, None] * (g_ik + g_mk.sum(axis=1)),
            scale[:, None, None] * g_mk,
            # UB rows: θ_mk, θ_mj, Ua_k, Ub_m.
            -scale[:, None, None] * cross * g_mk,
            scale[:, None] * ub * g_mj,
            scale[:, None, None] * g_mk,
            -scale[:, None] * (g_mk.sum(axis=2) + g_mj),
        )
        return np.concatenate(
            [np.asarray(b, dtype=np.float64).ravel() for b in blocks]
        )

    def jacobian_reference(self, x: np.ndarray) -> scipy.sparse.csr_matrix:
        """Reference Jacobian: full from-scratch COO assembly."""
        n = self.n
        r, ua_flat, ub_flat = self.unpack(x)
        g = 1.0 / r
        u = self.voltage
        pairs = np.arange(self.num_pairs)
        i_of = pairs // n
        j_of = pairs % n
        # ks[p] = the n-1 vertical wires != j; ms[p] = horizontals != i.
        ks = _others(j_of, n)  # (p, n-1)
        ms = _others(i_of, n)  # (p, n-1)
        ua = ua_flat  # (p, n-1)
        ub = ub_flat
        g_ik = g[i_of[:, None], ks]  # (p, n-1)
        g_mj = g[ms, j_of[:, None]]  # (p, n-1)
        g_mk = g[ms[:, :, None], ks[:, None, :]]  # (p, m', k')
        g_ij = g[i_of, j_of]  # (p,)
        scale = (self.z[i_of, j_of] / u).ravel()  # per-pair row scale

        rows: list[np.ndarray] = []
        cols: list[np.ndarray] = []
        vals: list[np.ndarray] = []
        base = 2 * n * pairs  # first residual row of each pair

        def add(rr, cc, vv):
            rr, cc, vv = np.broadcast_arrays(
                np.asarray(rr), np.asarray(cc), np.asarray(vv)
            )
            rows.append(rr.ravel())
            cols.append(cc.ravel())
            vals.append(vv.astype(np.float64).ravel())

        nm1 = n - 1
        # --- SOURCE row (base + 0): f = U G_ij + Σ (U - Ua) G_ik - drive,
        # ∂/∂θ = -G ∂/∂G.
        r_src = base
        add(r_src, self.theta_index(i_of, j_of), -scale * u * g_ij)
        add(
            np.repeat(r_src, nm1),
            self.theta_index(np.repeat(i_of, nm1), ks.ravel()),
            (-scale[:, None] * (u - ua) * g_ik).ravel(),
        )
        add(
            np.repeat(r_src, nm1),
            self.ua_index(np.repeat(pairs, nm1), np.tile(np.arange(nm1), len(pairs))),
            (-scale[:, None] * g_ik).ravel(),
        )
        # --- DEST row (base + 1): f = U G_ij + Σ Ub G_mj - drive -----------
        r_dst = base + 1
        add(r_dst, self.theta_index(i_of, j_of), -scale * u * g_ij)
        add(
            np.repeat(r_dst, nm1),
            self.theta_index(ms.ravel(), np.repeat(j_of, nm1)),
            (-scale[:, None] * ub * g_mj).ravel(),
        )
        add(
            np.repeat(r_dst, nm1),
            self.ub_index(np.repeat(pairs, nm1), np.tile(np.arange(nm1), len(pairs))),
            (scale[:, None] * g_mj).ravel(),
        )
        # --- UA rows (base + 2 + k') ---------------------------------------
        r_ua = base[:, None] + 2 + np.arange(nm1)[None, :]  # (p, k')
        # θ_ik: -(U - Ua_k) G_ik
        add(
            r_ua,
            self.theta_index(i_of[:, None], ks),
            -scale[:, None] * (u - ua) * g_ik,
        )
        # θ_mk: +(Ua_k - Ub_m) G_mk   (summed term, one entry per (m,k))
        cross = ua[:, None, :] - ub[:, :, None]  # (p, m', k')
        add(
            np.broadcast_to(r_ua[:, None, :], g_mk.shape),
            self.theta_index(
                np.broadcast_to(ms[:, :, None], g_mk.shape),
                np.broadcast_to(ks[:, None, :], g_mk.shape),
            ),
            scale[:, None, None] * cross * g_mk,
        )
        # Ua_k: -(G_ik + Σ_m G_mk)
        add(
            r_ua,
            self.ua_index(pairs[:, None], np.arange(nm1)[None, :]),
            -scale[:, None] * (g_ik + g_mk.sum(axis=1)),
        )
        # Ub_m: +G_mk  (entry per (m', k'): row = UA_k, col = Ub_m)
        add(
            np.broadcast_to(r_ua[:, None, :], g_mk.shape),
            self.ub_index(pairs[:, None, None], np.arange(nm1)[None, :, None]),
            scale[:, None, None] * g_mk,
        )
        # --- UB rows (base + n + 1 + m') --------------------------------------
        r_ub = base[:, None] + n + 1 + np.arange(nm1)[None, :]  # (p, m')
        # θ_mk: -(Ua_k - Ub_m) G_mk
        add(
            np.broadcast_to(r_ub[:, :, None], g_mk.shape),
            self.theta_index(
                np.broadcast_to(ms[:, :, None], g_mk.shape),
                np.broadcast_to(ks[:, None, :], g_mk.shape),
            ),
            -scale[:, None, None] * cross * g_mk,
        )
        # θ_mj: +Ub_m G_mj
        add(
            r_ub,
            self.theta_index(ms, j_of[:, None]),
            scale[:, None] * ub * g_mj,
        )
        # Ua_k: +G_mk (row = UB_m, col = Ua_k)
        add(
            np.broadcast_to(r_ub[:, :, None], g_mk.shape),
            self.ua_index(pairs[:, None, None], np.arange(nm1)[None, None, :]),
            scale[:, None, None] * g_mk,
        )
        # Ub_m: -(Σ_k G_mk + G_mj)
        add(
            r_ub,
            self.ub_index(pairs[:, None], np.arange(nm1)[None, :]),
            -scale[:, None] * (g_mk.sum(axis=2) + g_mj),
        )

        mat = scipy.sparse.coo_matrix(
            (
                np.concatenate(vals),
                (np.concatenate(rows), np.concatenate(cols)),
            ),
            shape=(self.num_residuals, self.num_unknowns),
        )
        return mat.tocsr()

    def initial_state(self, r0: np.ndarray | None = None) -> np.ndarray:
        """A physically consistent starting vector.

        Defaults to ``R0 = n * Z`` scaled so the uniform-field forward
        model roughly reproduces Z, with Ua/Ub from the exact forward
        solve under ``R0`` — so the initial residual only reflects the
        R-error, not arbitrary voltages.  All ``n^2`` drive solutions
        come from one shared (and cached) Laplacian factorisation.
        """
        from repro.kirchhoff.forward import solve_all_drives_shared

        n = self.n
        if r0 is None:
            # For a uniform field R, Z = R * (2n - 1) / n^2; invert that
            # estimate around the median measurement.
            r_unif = float(np.median(self.z) * n * n / (2 * n - 1))
            r0 = np.full((n, n), r_unif)
        r0 = np.asarray(r0, dtype=np.float64)
        ua = np.empty((self.num_pairs, n - 1))
        ub = np.empty((self.num_pairs, n - 1))
        for sol in solve_all_drives_shared(r0, voltage=self.voltage):
            p = sol.row * n + sol.col
            ua[p] = sol.ua()
            ub[p] = sol.ub()
        return self.pack(r0, ua, ub)


def _others_table(n: int) -> np.ndarray:
    """Cached ``(n, n-1)`` table: row ``d`` = sorted indices != d.

    The single index structure behind every "delete row/column d"
    gather below — computed once per ``n`` for the whole process.
    """
    with _JAC_LOCK:
        table = _OTHERS_TABLES.get(n)
        if table is None:
            grid = np.broadcast_to(np.arange(n), (n, n))
            table = grid[grid != np.arange(n)[:, None]].reshape(n, n - 1)
            table.setflags(write=False)
            _OTHERS_TABLES[n] = table
    return table


def _others(idx: np.ndarray, n: int) -> np.ndarray:
    """For each entry of ``idx``, the sorted other indices in [0, n)."""
    return _others_table(n)[np.asarray(idx)]


def _delete_cols_per_j(g: np.ndarray) -> np.ndarray:
    """[i, j, k'] = G[i, k] with column j removed, k ascending."""
    return np.ascontiguousarray(g[:, _others_table(g.shape[0])])


def _delete_rows_per_i(g: np.ndarray) -> np.ndarray:
    """[i, j, m'] = G[m, j] with row i removed, m ascending."""
    return np.ascontiguousarray(
        g[_others_table(g.shape[0])].transpose(0, 2, 1)
    )


def _delete_both(g: np.ndarray) -> np.ndarray:
    """[i, j, m', k'] = G[m, k], row i and column j removed."""
    table = _others_table(g.shape[0])
    return g[table[:, None, :, None], table[None, :, None, :]]


# -- persistent Jacobian-structure cache -------------------------------------


@dataclass
class JacobianCacheStats:
    """Observable counters of the Jacobian-structure cache."""

    name: str = "jacobian-structure"
    entries: int = 0
    hits: int = 0
    misses: int = 0
    bytes_resident: int = 0
    build_seconds: float = 0.0

    def snapshot(self) -> "JacobianCacheStats":
        return JacobianCacheStats(
            name=self.name,
            entries=self.entries,
            hits=self.hits,
            misses=self.misses,
            bytes_resident=self.bytes_resident,
            build_seconds=self.build_seconds,
        )


@dataclass(frozen=True)
class _JacobianStructure:
    """x-independent COO pattern + COO→CSR mapping for one ``n``.

    ``perm`` sorts the canonical COO emission order into CSR order;
    ``starts`` are the ``np.add.reduceat`` segment heads that fold
    duplicate coordinates; ``indices``/``indptr`` are the final CSR
    structure, shared (read-only) by every value update.
    """

    n: int
    i_of: np.ndarray
    j_of: np.ndarray
    ks: np.ndarray
    ms: np.ndarray
    perm: np.ndarray
    starts: np.ndarray
    indices: np.ndarray
    indptr: np.ndarray
    nnz_coo: int

    def nbytes(self) -> int:
        return sum(
            a.nbytes
            for a in (
                self.i_of,
                self.j_of,
                self.ks,
                self.ms,
                self.perm,
                self.starts,
                self.indices,
                self.indptr,
            )
        )


_JAC_LOCK = threading.Lock()
_JAC_STRUCTURES: dict[int, _JacobianStructure] = {}
_OTHERS_TABLES: dict[int, np.ndarray] = {}
_JAC_STATS = JacobianCacheStats()


def _build_jac_structure(n: int) -> _JacobianStructure:
    """Emit the canonical COO rows/cols and derive the CSR mapping.

    Block order mirrors :meth:`JointSystem.jacobian_reference` (and
    must stay in lockstep with
    :meth:`JointSystem._jacobian_values`).
    """
    system = JointSystem(n=n, z=np.ones((n, n)), voltage=1.0)
    num_pairs = n * n
    nm1 = n - 1
    pairs = np.arange(num_pairs)
    i_of = pairs // n
    j_of = pairs % n
    ks = _others(j_of, n)
    ms = _others(i_of, n)
    base = 2 * n * pairs
    kp = np.arange(nm1)
    tile_kp = np.tile(kp, num_pairs)
    shape3 = (num_pairs, nm1, nm1)

    r_src = base
    r_dst = base + 1
    r_ua = base[:, None] + 2 + kp[None, :]  # (p, k')
    r_ub = base[:, None] + n + 1 + kp[None, :]  # (p, m')

    def bc(arr, shape):
        return np.broadcast_to(arr, shape)

    blocks: list[tuple[np.ndarray, np.ndarray]] = [
        # SOURCE row: θ_ij, θ_ik, Ua_k.
        (r_src, system.theta_index(i_of, j_of)),
        (
            np.repeat(r_src, nm1),
            system.theta_index(np.repeat(i_of, nm1), ks.ravel()),
        ),
        (np.repeat(r_src, nm1), system.ua_index(np.repeat(pairs, nm1), tile_kp)),
        # DEST row: θ_ij, θ_mj, Ub_m.
        (r_dst, system.theta_index(i_of, j_of)),
        (
            np.repeat(r_dst, nm1),
            system.theta_index(ms.ravel(), np.repeat(j_of, nm1)),
        ),
        (np.repeat(r_dst, nm1), system.ub_index(np.repeat(pairs, nm1), tile_kp)),
        # UA rows: θ_ik, θ_mk, Ua_k, Ub_m.
        (r_ua, system.theta_index(i_of[:, None], ks)),
        (
            bc(r_ua[:, None, :], shape3),
            system.theta_index(
                bc(ms[:, :, None], shape3), bc(ks[:, None, :], shape3)
            ),
        ),
        (r_ua, system.ua_index(pairs[:, None], kp[None, :])),
        (
            bc(r_ua[:, None, :], shape3),
            bc(system.ub_index(pairs[:, None, None], kp[None, :, None]), shape3),
        ),
        # UB rows: θ_mk, θ_mj, Ua_k, Ub_m.
        (
            bc(r_ub[:, :, None], shape3),
            system.theta_index(
                bc(ms[:, :, None], shape3), bc(ks[:, None, :], shape3)
            ),
        ),
        (r_ub, system.theta_index(ms, j_of[:, None])),
        (
            bc(r_ub[:, :, None], shape3),
            bc(system.ua_index(pairs[:, None, None], kp[None, None, :]), shape3),
        ),
        (r_ub, system.ub_index(pairs[:, None], kp[None, :])),
    ]
    rows = np.concatenate([np.asarray(r).ravel() for r, _ in blocks])
    cols = np.concatenate([np.asarray(c).ravel() for _, c in blocks])

    perm = np.lexsort((cols, rows))
    rs = rows[perm]
    cs = cols[perm]
    fresh = np.empty(len(rs), dtype=bool)
    fresh[0] = True
    fresh[1:] = (rs[1:] != rs[:-1]) | (cs[1:] != cs[:-1])
    starts = np.flatnonzero(fresh)
    indices = np.ascontiguousarray(cs[starts])
    counts = np.bincount(rs[starts], minlength=system.num_residuals)
    indptr = np.concatenate(([0], np.cumsum(counts)))
    return _JacobianStructure(
        n=n,
        i_of=i_of,
        j_of=j_of,
        ks=ks,
        ms=ms,
        perm=perm,
        starts=starts,
        indices=indices,
        indptr=indptr,
        nnz_coo=len(rows),
    )


def _get_jac_structure(n: int) -> _JacobianStructure:
    """Cached structure for ``n`` (persistent across solver iterations,
    systems and measurements — the pattern depends on nothing else)."""
    with _JAC_LOCK:
        struct = _JAC_STRUCTURES.get(n)
        if struct is not None:
            _JAC_STATS.hits += 1
            return struct
    start = time.perf_counter()
    struct = _build_jac_structure(n)
    elapsed = time.perf_counter() - start
    with _JAC_LOCK:
        raced = _JAC_STRUCTURES.get(n)
        if raced is not None:  # pragma: no cover - build race
            _JAC_STATS.hits += 1
            return raced
        _JAC_STRUCTURES[n] = struct
        _JAC_STATS.misses += 1
        _JAC_STATS.entries = len(_JAC_STRUCTURES)
        _JAC_STATS.bytes_resident += struct.nbytes()
        _JAC_STATS.build_seconds += elapsed
    return struct


def jacobian_cache_stats() -> JacobianCacheStats:
    """Snapshot of the structure-cache counters for this process."""
    with _JAC_LOCK:
        return _JAC_STATS.snapshot()


def clear_jacobian_cache() -> None:
    """Drop cached structures and reset the counters (tests)."""
    with _JAC_LOCK:
        _JAC_STRUCTURES.clear()
        _OTHERS_TABLES.clear()
        _JAC_STATS.entries = 0
        _JAC_STATS.hits = 0
        _JAC_STATS.misses = 0
        _JAC_STATS.bytes_resident = 0
        _JAC_STATS.build_seconds = 0.0
