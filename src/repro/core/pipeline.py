"""Campaign-level pipelines: whole wet-lab days through Parma.

Glues the engine to time-series inputs: each timepoint is
parametrized, fields are compared across hours, and growth-based
anomaly drift is reported — the "(almost) real-time anomaly
detection" workload of §II-C.

This is the *batch* shape of the repeated-query workload: one process,
one campaign, timepoints in order (warm-started, checkpointable,
deadline-bounded).  The *online* shape — many independent requests
arriving concurrently, sharing warm caches across processes' lifetimes
— is :mod:`repro.serve` (``parma serve``); see ``docs/ARCHITECTURE.md``
for how the two sit on the same engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.anomaly.detect import DetectionResult, detect_anomalies, detect_drift_anomalies
from repro.core.engine import ParmaEngine, ParmaResult
from repro.core.solver import SolveResult
from repro.core.strategies import FormationReport
from repro.mea.dataset import Measurement, MeasurementCampaign
from repro.observe.observer import as_observer
from repro.resilience.checkpoint import CampaignCheckpoint, CheckpointError
from repro.resilience.faults import as_injector
from repro.resilience.supervise import Deadline, DeadlineExceeded
from repro.utils import logging as rlog


@dataclass(frozen=True)
class CampaignResult:
    """Per-timepoint parametrizations plus the drift analysis."""

    results: tuple[ParmaResult, ...]
    drift_detection: DetectionResult | None

    @property
    def hours(self) -> tuple[float, ...]:
        return tuple(r.measurement.hour for r in self.results)

    def resistance_series(self) -> np.ndarray:
        """Stacked recovered fields, shape (timepoints, n, n)."""
        return np.stack([r.resistance for r in self.results])

    def total_formation_terms(self) -> int:
        return sum(r.formation.terms_formed for r in self.results)

    def summary(self) -> str:
        lines = [f"Campaign over hours {self.hours}:"]
        for r in self.results:
            lines.append("  " + r.summary())
        if self.drift_detection is not None:
            lines.append(
                f"  drift: {self.drift_detection.num_regions} growing "
                "region(s) between first and last timepoint"
            )
        return "\n".join(lines)


def _resumed_result(
    meas: Measurement, field: np.ndarray, entry: dict, engine: ParmaEngine
) -> ParmaResult:
    """Rebuild a ParmaResult for a checkpointed timepoint.

    The field comes off disk (digest-verified); solve/formation
    metadata comes from the manifest entry; detection is recomputed
    from the field (cheap, and keeps detector knobs live).  The
    formation strategy is prefixed ``resumed:`` so reports show which
    timepoints were not re-formed.
    """
    solve_meta = entry["solve"]
    form_meta = entry["formation"]
    n = int(field.shape[0])
    solve_result = SolveResult(
        r_estimate=field,
        method=str(solve_meta["method"]),
        iterations=int(solve_meta["iterations"]),
        residual_norm=float(solve_meta["residual_norm"]),
        elapsed_seconds=0.0,
        converged=bool(solve_meta["converged"]),
    )
    formation = FormationReport(
        strategy=f"resumed:{form_meta['strategy']}",
        n=n,
        num_workers=int(form_meta["num_workers"]),
        elapsed_seconds=0.0,
        terms_formed=int(form_meta["terms_formed"]),
        checksum=float(form_meta["checksum"]),
        per_worker_terms=np.zeros(max(1, int(form_meta["num_workers"])), dtype=np.int64),
    )
    detection = detect_anomalies(
        field,
        threshold_sigmas=engine.threshold_sigmas,
        min_size=engine.min_region_size,
    )
    return ParmaResult(
        measurement=meas,
        formation=formation,
        solve=solve_result,
        detection=detection,
        laps={"formation": 0.0, "solve": 0.0, "detect": 0.0},
        degradation=None,
        events=(f"resumed from checkpoint (rung={entry.get('rung', 'primary')})",),
    )


def run_pipeline(
    campaign: MeasurementCampaign,
    engine: ParmaEngine | None = None,
    output_dir: str | Path | None = None,
    growth_threshold: float = 0.25,
    warm_start: bool = True,
    formation: str = "cached",
    backend: str = "numpy",
    checkpoint_dir: str | Path | None = None,
    resume: bool = True,
    faults=None,
    observer=None,
    deadline: Deadline | float | None = None,
) -> CampaignResult:
    """Parametrize every timepoint and analyse anomaly drift.

    With ``output_dir`` set, each timepoint's equations are written to
    ``<output_dir>/hour-<h>/`` (the Fig. 9 I/O path).

    ``warm_start`` seeds each solve with the previous timepoint's
    recovered field: consecutive readings differ only by anomaly
    growth and noise, so the solver converges in fewer iterations —
    the natural optimization for the §II-C "(almost) real-time"
    monitoring loop.  Warm starting also reuses the forward solver's
    Laplacian factorisation across timepoints: each solve begins at
    the field where the previous solve's last evaluation ended, so the
    first inner-circuit solve is served from the pseudo-inverse cache
    (:func:`repro.kirchhoff.forward.laplacian_pinv_cached`) instead of
    being refactorised.

    ``formation`` selects the equation-formation path for the default
    engine ("cached" template fast path or the "legacy" per-pair
    reference) and ``backend`` its solver compute backend
    (``"numpy"``/``"compiled"``); both are ignored when an ``engine``
    is supplied.

    With ``checkpoint_dir`` set, each completed timepoint is persisted
    (field + metadata, atomically, digest-protected) to a
    :class:`repro.resilience.CampaignCheckpoint`.  A rerun with
    ``resume=True`` (default) skips verified timepoints — including
    seeding the warm start from the last checkpointed field — so an
    interrupted day continues from where it died instead of
    re-solving from hour 0.  A corrupt field file fails its digest and
    that timepoint (plus everything after it) is recomputed.

    ``faults`` (a :class:`repro.resilience.FaultPlan` or injector)
    drives chaos testing at the campaign level — currently
    ``abort_after_timepoints``, which raises
    :class:`repro.resilience.InjectedAbort` *after* the checkpoint
    record, simulating a crash between timepoints.  Measurement/
    formation/solver faults belong on the engine.

    ``observer`` (a :class:`repro.observe.Observer`) traces the
    campaign: one ``timepoint`` span per measurement with
    formation/solve/detect children from the engine, plus
    checkpoint-resume events.  When given, it is also installed on the
    engine so the per-stage spans land on the same stream.

    ``deadline`` (seconds, or a started
    :class:`repro.resilience.supervise.Deadline`) bounds the whole
    campaign on one shared monotonic budget — it is installed on the
    engine so formation regions and supervision drain the same clock.
    When it expires, :class:`repro.resilience.supervise.
    DeadlineExceeded` is raised with ``partial`` set to a
    :class:`CampaignResult` of the timepoints that did finish
    (checkpointed ones included), so callers salvage instead of
    discard.
    """
    engine = engine or ParmaEngine(formation=formation, backend=backend)
    obs = as_observer(observer)
    if observer is not None:
        engine.observer = observer
    deadline = Deadline.coerce(deadline)
    if deadline is not None:
        engine.deadline = deadline
        if engine.supervisor is not None and engine.supervisor.deadline is None:
            engine.supervisor.deadline = deadline
    elif engine.deadline is not None:
        deadline = engine.deadline
    injector = as_injector(faults)
    checkpoint = (
        CampaignCheckpoint(checkpoint_dir) if checkpoint_dir is not None else None
    )
    results: list[ParmaResult] = []
    previous_field = None
    with obs.span(
        "campaign", timepoints=len(campaign), strategy=engine.strategy_name
    ):
        for index, meas in enumerate(campaign):
            n = meas.z_kohm.shape[0]
            if deadline is not None and deadline.expired:
                raise DeadlineExceeded(
                    f"deadline of {deadline.seconds:g}s expired after "
                    f"{len(results)} of {len(campaign)} timepoint(s)",
                    deadline=deadline,
                    partial=CampaignResult(
                        results=tuple(results), drift_detection=None
                    ),
                )
            if (
                checkpoint is not None
                and resume
                and checkpoint.matches(index, meas.hour, n)
            ):
                entry = checkpoint.entry(index)
                try:
                    field = checkpoint.load_field(index)
                except CheckpointError as exc:
                    rlog.info(
                        "resilience.checkpoint_invalid", index=index, error=str(exc)
                    )
                    obs.event(
                        "checkpoint.invalidated", index=index, error=str(exc)
                    )
                    obs.count("checkpoint.invalidations")
                    checkpoint.invalidate_from(index)
                else:
                    result = _resumed_result(meas, field, entry, engine)
                    previous_field = field
                    results.append(result)
                    obs.event(
                        "checkpoint.resumed", index=index, hour=float(meas.hour)
                    )
                    obs.count("checkpoint.resumes")
                    continue
            tp_dir = None
            if output_dir is not None:
                tp_dir = Path(output_dir) / f"hour-{meas.hour:g}"
            solver_kwargs = {}
            if warm_start and previous_field is not None:
                solver_kwargs["r0"] = previous_field
            with obs.span("timepoint", index=index, hour=float(meas.hour), n=n):
                try:
                    result = engine.parametrize(
                        meas, output_dir=tp_dir, solver_kwargs=solver_kwargs
                    )
                except DeadlineExceeded as exc:
                    if exc.partial is None:
                        exc.partial = CampaignResult(
                            results=tuple(results), drift_detection=None
                        )
                    raise
            previous_field = result.resistance
            results.append(result)
            if checkpoint is not None:
                checkpoint.record(index, result)
                obs.count("checkpoint.writes")
            if injector is not None:
                injector.maybe_abort_campaign(len(results))
        drift = None
        if len(results) >= 2:
            with obs.span("drift", timepoints=len(results)):
                drift = detect_drift_anomalies(
                    results[0].resistance,
                    results[-1].resistance,
                    growth_threshold=growth_threshold,
                )
    return CampaignResult(results=tuple(results), drift_detection=drift)
