"""Campaign-level pipelines: whole wet-lab days through Parma.

Glues the engine to time-series inputs: each timepoint is
parametrized, fields are compared across hours, and growth-based
anomaly drift is reported — the "(almost) real-time anomaly
detection" workload of §II-C.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.anomaly.detect import DetectionResult, detect_drift_anomalies
from repro.core.engine import ParmaEngine, ParmaResult
from repro.mea.dataset import MeasurementCampaign


@dataclass(frozen=True)
class CampaignResult:
    """Per-timepoint parametrizations plus the drift analysis."""

    results: tuple[ParmaResult, ...]
    drift_detection: DetectionResult | None

    @property
    def hours(self) -> tuple[float, ...]:
        return tuple(r.measurement.hour for r in self.results)

    def resistance_series(self) -> np.ndarray:
        """Stacked recovered fields, shape (timepoints, n, n)."""
        return np.stack([r.resistance for r in self.results])

    def total_formation_terms(self) -> int:
        return sum(r.formation.terms_formed for r in self.results)

    def summary(self) -> str:
        lines = [f"Campaign over hours {self.hours}:"]
        for r in self.results:
            lines.append("  " + r.summary())
        if self.drift_detection is not None:
            lines.append(
                f"  drift: {self.drift_detection.num_regions} growing "
                "region(s) between first and last timepoint"
            )
        return "\n".join(lines)


def run_pipeline(
    campaign: MeasurementCampaign,
    engine: ParmaEngine | None = None,
    output_dir: str | Path | None = None,
    growth_threshold: float = 0.25,
    warm_start: bool = True,
    formation: str = "cached",
) -> CampaignResult:
    """Parametrize every timepoint and analyse anomaly drift.

    With ``output_dir`` set, each timepoint's equations are written to
    ``<output_dir>/hour-<h>/`` (the Fig. 9 I/O path).

    ``warm_start`` seeds each solve with the previous timepoint's
    recovered field: consecutive readings differ only by anomaly
    growth and noise, so the solver converges in fewer iterations —
    the natural optimization for the §II-C "(almost) real-time"
    monitoring loop.  Warm starting also reuses the forward solver's
    Laplacian factorisation across timepoints: each solve begins at
    the field where the previous solve's last evaluation ended, so the
    first inner-circuit solve is served from the pseudo-inverse cache
    (:func:`repro.kirchhoff.forward.laplacian_pinv_cached`) instead of
    being refactorised.

    ``formation`` selects the equation-formation path for the default
    engine ("cached" template fast path or the "legacy" per-pair
    reference); it is ignored when an ``engine`` is supplied.
    """
    engine = engine or ParmaEngine(formation=formation)
    results: list[ParmaResult] = []
    previous_field = None
    for meas in campaign:
        tp_dir = None
        if output_dir is not None:
            tp_dir = Path(output_dir) / f"hour-{meas.hour:g}"
        solver_kwargs = {}
        if warm_start and previous_field is not None:
            solver_kwargs["r0"] = previous_field
        result = engine.parametrize(
            meas, output_dir=tp_dir, solver_kwargs=solver_kwargs
        )
        previous_field = result.resistance
        results.append(result)
    drift = None
    if len(results) >= 2:
        drift = detect_drift_anomalies(
            results[0].resistance,
            results[-1].resistance,
            growth_threshold=growth_threshold,
        )
    return CampaignResult(results=tuple(results), drift_detection=drift)
