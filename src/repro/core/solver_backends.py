"""Solver compute backends: blocked numpy kernels and optional numba jit.

The Gauss–Newton hot path spends its time in two dense kernels: the
transfer-tensor square/accumulate that assembles the ``(n², n²)``
Jacobian, and the ``JᵀJ``/``Jᵀr`` normal-equation assembly used by the
Levenberg rescue.  Both live here behind a ``backend`` knob that
mirrors the formation layer's ``formation="cached"|"legacy"`` pattern:

* ``"numpy"`` (default) — blocked broadcast kernels.  The Jacobian is
  assembled in row blocks over measurement pairs so the O(n⁴)
  intermediate never materialises at once (see
  :func:`jacobian_row_block`); at ``n = 100`` peak extra memory is one
  ~64 MB block instead of an 800 MB tensor.
* ``"compiled"`` — numba ``@njit`` kernels performing the same
  floating-point operations *in the same order*, so the two backends
  produce bit-identical Jacobians and therefore identical Gauss–Newton
  trajectories (the parity suite asserts matching iteration counts and
  ``r_estimate`` agreement).  When numba is not importable the request
  degrades to ``"numpy"`` and a ``solver.backend.fallback`` counter is
  recorded — never an error.

The knob is validated at every entry point with
:func:`check_backend_mode` and resolved (with the fallback metric) by
:func:`resolve_backend`.
"""

from __future__ import annotations

import numpy as np

#: Accepted values for the solver ``backend`` knob.
BACKEND_MODES = ("numpy", "compiled")

#: Target bytes for one Jacobian assembly row block (documented cap:
#: the blocked kernel's peak intermediate is one ``(block, n, n, n)``
#: float64 tensor, so ``block = TARGET / (8 n³)`` keeps assembly under
#: ~64 MB of scratch at any device size — n = 100 fits a default CI
#: runner with room to spare).
JACOBIAN_BLOCK_TARGET_BYTES = 64 * 1024 * 1024

_NUMBA_AVAILABLE: bool | None = None
_NUMBA_KERNELS: tuple | None = None


def check_backend_mode(backend: str) -> str:
    """Validate a solver backend name, returning it unchanged."""
    if backend not in BACKEND_MODES:
        raise ValueError(
            f"backend must be one of {BACKEND_MODES}, got {backend!r}"
        )
    return backend


def numba_available() -> bool:
    """True when numba imports cleanly (checked once per process)."""
    global _NUMBA_AVAILABLE
    if _NUMBA_AVAILABLE is None:
        try:
            import numba  # noqa: F401

            _NUMBA_AVAILABLE = True
        except Exception:  # pragma: no cover - import-environment specific
            _NUMBA_AVAILABLE = False
    return _NUMBA_AVAILABLE


def resolve_backend(backend: str, observer=None) -> str:
    """The backend that will actually execute (with fallback metric).

    ``"compiled"`` without numba degrades to ``"numpy"``; the
    degradation is observable (``solver.backend.fallback`` counter and
    a ``solver.backend_fallback`` event on the observer stream) but
    never raises.
    """
    from repro.observe.observer import as_observer

    backend = check_backend_mode(backend)
    if backend == "compiled" and not numba_available():
        obs = as_observer(observer)
        obs.count("solver.backend.fallback")
        obs.event(
            "solver.backend_fallback",
            requested="compiled",
            used="numpy",
            reason="numba not importable",
        )
        return "numpy"
    return backend


def backend_status() -> dict:
    """Availability summary for ``parma info`` and run manifests."""
    status = {
        "modes": list(BACKEND_MODES),
        "default": "numpy",
        "numba_available": numba_available(),
        "numba_version": None,
    }
    if status["numba_available"]:
        import numba

        status["numba_version"] = getattr(numba, "__version__", "unknown")
    return status


def jacobian_row_block(m: int, n: int) -> int:
    """Rows of measurement pairs per Jacobian assembly block.

    One block holds ``block * n * m * n`` float64 transfer values;
    this picks the largest block under
    :data:`JACOBIAN_BLOCK_TARGET_BYTES` (always at least one row).
    """
    per_row = 8 * n * m * n
    return int(np.clip(JACOBIAN_BLOCK_TARGET_BYTES // max(1, per_row), 1, m))


def _get_numba_kernels():
    """Compile (once) and return the numba kernels.

    Only called when :func:`numba_available` is True; the kernels are
    cached on disk by numba so repeat processes skip compilation.
    """
    global _NUMBA_KERNELS
    if _NUMBA_KERNELS is None:
        import numba

        @numba.njit(cache=True, fastmath=False)
        def _jac_kernel(hh, hv, vv, r, z, out, scale_rows):
            # Same floating-point operations, same order, as the numpy
            # blocked kernel: v = ((hh - hv) - hvT) + vv, then
            # (v*v) / r, then / z.  fastmath stays off so the result
            # is bit-identical to the numpy backend.
            m = hh.shape[0]
            n = vv.shape[0]
            for s in range(m):
                for t in range(n):
                    row = s * n + t
                    for a in range(m):
                        for b in range(n):
                            v = hh[s, a] - hv[s, b] - hv[a, t] + vv[t, b]
                            val = (v * v) / r[a, b]
                            if scale_rows:
                                val = val / z[s, t]
                            out[row, a * n + b] = val

        @numba.njit(cache=True, fastmath=False)
        def _jtj_grad_kernel(jac, res):
            # JᵀJ / Jᵀr assembly for the Levenberg rescue.  The inner
            # products dispatch to BLAS from nopython mode (numba's
            # np.dot), fusing the transpose copy and both products in
            # one compiled call.
            jt = jac.T.copy()
            return np.dot(jt, jac), np.dot(jt, res)

        _NUMBA_KERNELS = (_jac_kernel, _jtj_grad_kernel)
    return _NUMBA_KERNELS


def transfer_jacobian(
    pinv: np.ndarray,
    r: np.ndarray,
    z: np.ndarray | None = None,
    backend: str = "numpy",
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Dense ``∂Z_st/∂θ_ab`` from the Laplacian pseudo-inverse.

    Rows index measurement pairs ``(s, t)`` row-major; columns index
    resistors ``(a, b)`` row-major.  With the transfer potential
    ``T = P[Hs,Ha] - P[Hs,Vb] - P[Vt,Ha] + P[Vt,Vb]`` each entry is
    ``T² / R_ab``; when ``z`` is given every row ``(s, t)`` is
    additionally divided by ``z[s, t]`` (the relative-residual scaling
    fused into assembly instead of a second full-matrix pass).

    Assembly is blocked over measurement-pair rows
    (:func:`jacobian_row_block`) so peak scratch stays bounded; the
    ``"compiled"`` backend runs the numba kernel over the same
    operation order, keeping both backends bit-identical.
    """
    m, n = r.shape
    hh = pinv[:m, :m]
    hv = pinv[:m, m:]
    vv = pinv[m:, m:]
    if out is None:
        out = np.empty((m * n, m * n), dtype=np.float64)
    if backend == "compiled" and numba_available():
        jac_kernel, _ = _get_numba_kernels()
        scale = z if z is not None else r  # dummy operand when unscaled
        jac_kernel(
            np.ascontiguousarray(hh),
            np.ascontiguousarray(hv),
            np.ascontiguousarray(vv),
            np.ascontiguousarray(r),
            np.ascontiguousarray(scale),
            out,
            z is not None,
        )
        return out
    hvt = hv.T
    block = jacobian_row_block(m, n)
    for s0 in range(0, m, block):
        s1 = min(s0 + block, m)
        t = (
            hh[s0:s1, None, :, None]
            - hv[s0:s1, None, None, :]
            - hvt[None, :, :, None]
            + vv[None, :, None, :]
        )
        np.multiply(t, t, out=t)
        t /= r[None, None, :, :]
        if z is not None:
            t /= z[s0:s1, :, None, None]
        out[s0 * n : s1 * n] = t.reshape((s1 - s0) * n, m * n)
    return out


def fused_jtj_grad(
    jac: np.ndarray, res: np.ndarray, backend: str = "numpy"
) -> tuple[np.ndarray, np.ndarray]:
    """``(JᵀJ, Jᵀres)`` for the Levenberg rescue path.

    Both backends use the contiguous-transpose-then-gemm formulation
    (the compiled one through a single numba call) so the products are
    computed by the same BLAS routine with the same operand layout —
    keeping the backends bit-identical on the Levenberg trajectory.
    Returned ``JᵀJ`` is freshly allocated and safe to mutate (the
    rescue loop adds its damping ridge to the diagonal in place).
    """
    if backend == "compiled" and numba_available():
        _, jtj_kernel = _get_numba_kernels()
        return jtj_kernel(jac, res)
    jt = jac.T.copy()
    return np.dot(jt, jac), np.dot(jt, res)
