"""Conditioning analysis of the inverse problem.

"How ill-posed is it?" — made quantitative.  The (log-scaled,
Z-normalized) Jacobian ``J = ∂[(Z̃−Z)/Z]/∂θ`` at the ground truth
controls noise amplification: measurement noise of relative size ε
maps to field error ~ ε/σ_min(J) in the worst direction, and the
condition number κ(J) = σ_max/σ_min summarizes the spread.

These diagnostics power device-design decisions (examples/
device_design.py): bigger devices measure more pairs but each pair
averages over more parallel paths, so κ grows with n — the paper's
ill-posedness citations ([13, 14]) in one curve.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.solver import nested_jacobian, predict_z
from repro.utils.validation import require_positive_array


@dataclass(frozen=True)
class ConditioningReport:
    """Spectral summary of the inverse problem at a given field."""

    n_rows: int
    n_cols: int
    sigma_max: float
    sigma_min: float
    condition_number: float
    worst_direction: np.ndarray  # field pattern hardest to recover

    @property
    def noise_amplification(self) -> float:
        """Worst-case relative-field-error per unit relative Z noise."""
        return 1.0 / self.sigma_min if self.sigma_min > 0 else float("inf")


def analyze_conditioning(resistance: np.ndarray) -> ConditioningReport:
    """SVD analysis of the normalized Jacobian at ``resistance``."""
    r = require_positive_array(resistance, "resistance")
    m, n = r.shape
    z = predict_z(r).ravel()
    jac = nested_jacobian(r) / z[:, None]
    u, s, vt = np.linalg.svd(jac)
    worst = vt[-1].reshape(m, n)
    return ConditioningReport(
        n_rows=m,
        n_cols=n,
        sigma_max=float(s[0]),
        sigma_min=float(s[-1]),
        condition_number=float(s[0] / s[-1]) if s[-1] > 0 else float("inf"),
        worst_direction=worst,
    )


def conditioning_vs_size(
    sizes: list[int], baseline_kohm: float = 3000.0
) -> list[ConditioningReport]:
    """κ(J) across device sizes for a uniform field (design curve)."""
    return [
        analyze_conditioning(np.full((n, n), baseline_kohm)) for n in sizes
    ]


def empirical_noise_amplification(
    resistance: np.ndarray,
    noise_rel: float = 1e-4,
    trials: int = 8,
    seed: int = 0,
) -> float:
    """Monte-Carlo check of the spectral bound.

    Perturbs Z multiplicatively, re-solves, and reports the mean ratio
    of relative field error to relative measurement noise.  Should sit
    between 1 and the worst-case ``1/σ_min``.
    """
    from repro.core.solver import solve_nested

    r = require_positive_array(resistance, "resistance")
    z = predict_z(r)
    rng = np.random.default_rng(seed)
    ratios = []
    for _ in range(trials):
        z_noisy = z * (1.0 + noise_rel * rng.standard_normal(z.shape))
        est = solve_nested(z_noisy, tol=1e-12, r0=r).r_estimate
        field_err = float(np.sqrt(np.mean(((est - r) / r) ** 2)))
        ratios.append(field_err / noise_rel)
    return float(np.mean(ratios))
