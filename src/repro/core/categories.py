"""The four constraint categories of the joint-constraint system.

§IV-A groups the ``2n`` per-pair Kirchhoff equations by the joint they
constrain:

* ``SOURCE`` — the equation at the driven horizontal wire ``i``
  (1-to-n flow), one per pair;
* ``DEST`` — the equation at the driven vertical wire ``j``
  (n-to-1 flow), one per pair;
* ``UA`` — the ``n - 1`` equations at intermediate vertical wires
  (source-side intermediates);
* ``UB`` — the ``n - 1`` equations at intermediate horizontal wires
  (destination-side intermediates).

The category sizes are what skews the *Parallel* baseline: per device
the intermediate categories hold ``n^2 (n-1)`` constraints each while
SOURCE/DEST hold ``n^2`` — the cubic-vs-quadratic gap §IV-C.1 calls
"two hefty tasks compared to others".
"""

from __future__ import annotations

from enum import IntEnum

from repro.utils.validation import require_positive_int


class Category(IntEnum):
    """Constraint category codes (stable: serialized into benchmarks)."""

    SOURCE = 0
    DEST = 1
    UA = 2
    UB = 3


#: Paper-facing labels.
CATEGORY_LABELS = {
    Category.SOURCE: "source (1-to-n)",
    Category.DEST: "destination (n-to-1)",
    Category.UA: "intermediate near source (Ua)",
    Category.UB: "intermediate near destination (Ub)",
}


def equations_per_pair(n: int) -> dict[Category, int]:
    """Per-pair equation counts: 1 + 1 + (n-1) + (n-1) = 2n."""
    n = require_positive_int(n, "n", minimum=2)
    return {
        Category.SOURCE: 1,
        Category.DEST: 1,
        Category.UA: n - 1,
        Category.UB: n - 1,
    }


def equations_per_device(n: int) -> dict[Category, int]:
    """Whole-device counts (``n^2`` pairs): totals ``2 n^3``."""
    per_pair = equations_per_pair(n)
    return {cat: count * n * n for cat, count in per_pair.items()}


def total_equations(n: int) -> int:
    """``2 n^3`` (paper §IV-A)."""
    n = require_positive_int(n, "n", minimum=2)
    return 2 * n**3


def total_unknowns(n: int) -> int:
    """``(2n - 1) n^2``: ``n^2`` R's + ``2 (n-1) n^2`` voltages."""
    n = require_positive_int(n, "n", minimum=2)
    return (2 * n - 1) * n**2


def terms_per_pair(n: int) -> int:
    """Every per-pair equation has exactly ``n`` flow terms: ``2 n^2``."""
    n = require_positive_int(n, "n", minimum=2)
    return 2 * n * n


def total_terms(n: int) -> int:
    """``2 n^4`` flow terms across the device — the memory driver."""
    n = require_positive_int(n, "n", minimum=2)
    return 2 * n**4


def category_costs(n: int) -> dict[Category, float]:
    """Relative formation cost per category (proportional to terms).

    Each equation carries ``n`` terms regardless of category, so cost
    is proportional to equation count; this is the cost vector the
    planners in :mod:`repro.core.partition` consume.
    """
    return {
        cat: float(count * n) for cat, count in equations_per_device(n).items()
    }
