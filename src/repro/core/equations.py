"""Formation of the joint-constraint equation system (paper §IV-A).

For endpoint pair ``(i, j)`` of an ``n x n`` device driven at voltage
``U`` with measured resistance ``Z_ij``, the unknowns are the global
resistances ``R`` plus per-pair intermediate wire voltages
``Ua_{k'}`` (vertical wires ``k != j``) and ``Ub_{m'}`` (horizontal
wires ``m != i``), and the ``2n`` equations are Kirchhoff current
balances::

    U/Z_ij = U/R_ij + Σ_k (U - Ua_k')/R_ik          # at i   (SOURCE)
    U/Z_ij = U/R_ij + Σ_m Ub_m'/R_mj                # at j   (DEST)
    (U - Ua_k')/R_ik = Σ_m (Ua_k' - Ub_m')/R_mk     # per k  (UA)
    Ub_m'/R_mj = Σ_k (Ua_k' - Ub_m')/R_mk           # per m  (UB)

(The sum subscripts follow the physics: from an intermediate vertical
wire ``k`` the current fans out to horizontal wires ``m != i``, and
vice versa — the paper's printed subscripts on the last two equation
families contain a typo that the worked 3x3 example disambiguates.)

Each equation has exactly ``n`` *flow terms* of the shape
``± (V_plus - V_minus) / R_row,col``.  A :class:`PairBlock` stores one
pair's equations as structure-of-arrays: five parallel numpy arrays
over the terms (equation id, sign, resistor row/col, voltage-node
codes), built with pure index arithmetic — no per-term Python objects.
This formation is the operation the paper's compute-time figures
measure, so its cost profile (array fills, O(n^2) per pair) matters as
much as its correctness.

Formation can be restricted to a subset of categories (the *Parallel*
strategy forms one category per worker), in which case the block holds
only those equations, with the same deterministic intra-category
layout.

Voltage-node codes (per pair): ``0`` = ground (wire ``V_j``),
``1`` = the drive ``U`` (wire ``H_i``), ``2 + k'`` = ``Ua_{k'}``,
``2 + (n-1) + m'`` = ``Ub_{m'}``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.core.categories import Category
from repro.utils.validation import require_positive, require_positive_int

#: Voltage-node codes.
NODE_GROUND = 0
NODE_DRIVE = 1
NODE_FIRST_UA = 2

ALL_CATEGORIES: tuple[Category, ...] = (
    Category.SOURCE,
    Category.DEST,
    Category.UA,
    Category.UB,
)


def node_code_ua(k_prime: int) -> int:
    return NODE_FIRST_UA + k_prime


def node_code_ub(m_prime: int, n: int) -> int:
    return NODE_FIRST_UA + (n - 1) + m_prime


@dataclass(frozen=True)
class PairBlock:
    """Joint-constraint equations of one endpoint pair (all or a
    category subset).

    Term arrays are parallel and term-major; ``eq_id`` maps each term
    to its local equation index.  ``rhs`` has one entry per equation
    (``U/Z`` for SOURCE/DEST, 0 otherwise) and ``category`` the
    per-equation category code.  For a full block the equation order is
    ``[SOURCE, DEST, UA_0.., UB_0..]`` (``2n`` equations, ``2 n^2``
    terms).
    """

    n: int
    row: int
    col: int
    voltage: float
    z: float
    eq_id: np.ndarray  # int32, term -> local equation index
    sign: np.ndarray  # int8, +1 / -1
    r_row: np.ndarray  # int32, resistor row of the term
    r_col: np.ndarray  # int32, resistor col
    v_plus: np.ndarray  # int16 voltage-node code
    v_minus: np.ndarray  # int16 voltage-node code
    rhs: np.ndarray  # float64, per equation
    category: np.ndarray  # int8, per equation

    @property
    def num_equations(self) -> int:
        return len(self.rhs)

    @property
    def num_terms(self) -> int:
        return len(self.eq_id)

    @property
    def pair_index(self) -> int:
        return self.row * self.n + self.col

    def nbytes(self) -> int:
        """Memory footprint of the term arrays (the Fig. 8 driver)."""
        return sum(
            a.nbytes
            for a in (
                self.eq_id,
                self.sign,
                self.r_row,
                self.r_col,
                self.v_plus,
                self.v_minus,
                self.rhs,
                self.category,
            )
        )

    # -- evaluation -----------------------------------------------------------

    def node_voltages(self, ua: np.ndarray, ub: np.ndarray) -> np.ndarray:
        """Assemble the per-pair voltage table indexed by node code."""
        n = self.n
        if ua.shape != (n - 1,) or ub.shape != (n - 1,):
            raise ValueError(f"ua/ub must have shape ({n - 1},)")
        table = np.empty(2 + 2 * (n - 1), dtype=np.float64)
        table[NODE_GROUND] = 0.0
        table[NODE_DRIVE] = self.voltage
        table[NODE_FIRST_UA : NODE_FIRST_UA + n - 1] = ua
        table[NODE_FIRST_UA + n - 1 :] = ub
        return table

    def residuals(
        self, resistance: np.ndarray, ua: np.ndarray, ub: np.ndarray
    ) -> np.ndarray:
        """Equation residuals (LHS - RHS) for a candidate solution.

        Fully vectorised: one gather per array plus a ``np.add.at``
        scatter into the equation slots.
        """
        r = np.asarray(resistance, dtype=np.float64)
        if r.shape != (self.n, self.n):
            raise ValueError(f"resistance must be ({self.n}, {self.n})")
        table = self.node_voltages(ua, ub)
        flows = (
            self.sign
            * (table[self.v_plus] - table[self.v_minus])
            / r[self.r_row, self.r_col]
        )
        out = -self.rhs.copy()
        np.add.at(out, self.eq_id, flows)
        return out

    def max_relative_residual(
        self, resistance: np.ndarray, ua: np.ndarray, ub: np.ndarray
    ) -> float:
        """Residuals normalised by the drive current ``U/Z``."""
        res = self.residuals(resistance, ua, ub)
        return float(np.max(np.abs(res)) / (self.voltage / self.z))

    def checksum(self) -> float:
        """Order-independent digest of the term arrays.

        Used by the parallel strategies to prove (in tests) that every
        worker formed exactly its share: checksums are additive across
        category sub-blocks of the same pair.
        """
        return float(
            (self.sign.astype(np.float64) * (self.r_row + 1) * (self.r_col + 1)
             * (self.v_plus + 1) * (self.v_minus + 3)).sum()
        )


def _section_source(n, row, col, ks, ua_codes):
    """SOURCE terms: U/R_ij + Σ_k (U - Ua_k')/R_ik."""
    eq = np.zeros(n, dtype=np.int32)
    sign = np.ones(n, dtype=np.int8)
    r_row = np.full(n, row, dtype=np.int32)
    r_col = np.empty(n, dtype=np.int32)
    r_col[0] = col
    r_col[1:] = ks
    v_plus = np.full(n, NODE_DRIVE, dtype=np.int16)
    v_minus = np.empty(n, dtype=np.int16)
    v_minus[0] = NODE_GROUND
    v_minus[1:] = ua_codes
    return eq, sign, r_row, r_col, v_plus, v_minus, 1


def _section_dest(n, row, col, ms, ub_codes):
    """DEST terms: U/R_ij + Σ_m Ub_m'/R_mj."""
    eq = np.zeros(n, dtype=np.int32)
    sign = np.ones(n, dtype=np.int8)
    r_row = np.empty(n, dtype=np.int32)
    r_row[0] = row
    r_row[1:] = ms
    r_col = np.full(n, col, dtype=np.int32)
    v_plus = np.empty(n, dtype=np.int16)
    v_plus[0] = NODE_DRIVE
    v_plus[1:] = ub_codes
    v_minus = np.full(n, NODE_GROUND, dtype=np.int16)
    return eq, sign, r_row, r_col, v_plus, v_minus, 1


def _section_ua(n, row, col, ks, ms, ua_codes, ub_codes):
    """UA terms: per k', +(U - Ua_k')/R_ik - Σ_m (Ua_k' - Ub_m')/R_mk."""
    kp = np.arange(n - 1)
    eq = np.repeat(kp, n).astype(np.int32)
    sign = np.empty((n - 1, n), dtype=np.int8)
    sign[:, 0] = 1
    sign[:, 1:] = -1
    r_row = np.empty((n - 1, n), dtype=np.int32)
    r_row[:, 0] = row
    r_row[:, 1:] = ms[None, :]
    r_col = np.repeat(ks, n).astype(np.int32)
    v_plus = np.empty((n - 1, n), dtype=np.int16)
    v_plus[:, 0] = NODE_DRIVE
    v_plus[:, 1:] = ua_codes[:, None]
    v_minus = np.empty((n - 1, n), dtype=np.int16)
    v_minus[:, 0] = ua_codes
    v_minus[:, 1:] = ub_codes[None, :]
    return (
        eq,
        sign.ravel(),
        r_row.ravel(),
        r_col,
        v_plus.ravel(),
        v_minus.ravel(),
        n - 1,
    )


def _section_ub(n, row, col, ks, ms, ua_codes, ub_codes):
    """UB terms: per m', +Σ_k (Ua_k' - Ub_m')/R_mk - Ub_m'/R_mj."""
    mp = np.arange(n - 1)
    eq = np.repeat(mp, n).astype(np.int32)
    sign = np.empty((n - 1, n), dtype=np.int8)
    sign[:, :-1] = 1
    sign[:, -1] = -1
    r_row = np.repeat(ms, n).astype(np.int32)
    r_col = np.empty((n - 1, n), dtype=np.int32)
    r_col[:, :-1] = ks[None, :]
    r_col[:, -1] = col
    v_plus = np.empty((n - 1, n), dtype=np.int16)
    v_plus[:, :-1] = ua_codes[None, :]
    v_plus[:, -1] = ub_codes
    v_minus = np.empty((n - 1, n), dtype=np.int16)
    v_minus[:, :-1] = ub_codes[:, None]
    v_minus[:, -1] = NODE_GROUND
    return (
        eq,
        sign.ravel(),
        r_row,
        r_col.ravel(),
        v_plus.ravel(),
        v_minus.ravel(),
        n - 1,
    )


def form_pair_block(
    n: int,
    row: int,
    col: int,
    z: float,
    voltage: float = 5.0,
    categories: Sequence[Category] = ALL_CATEGORIES,
) -> PairBlock:
    """Build the :class:`PairBlock` for pair ``(row, col)``.

    With the default ``categories`` the block holds all ``2n``
    equations in the canonical order ``[SOURCE, DEST, UA.., UB..]``;
    a subset builds only those sections (same per-section layout), so
    category-parallel workers each produce a disjoint share whose
    union is exactly the full block.
    """
    n = require_positive_int(n, "n", minimum=2)
    require_positive(z, "z")
    require_positive(voltage, "voltage")
    if not (0 <= row < n and 0 <= col < n):
        raise IndexError(f"pair ({row}, {col}) out of range for n={n}")
    cats = list(categories)
    if len(set(cats)) != len(cats):
        raise ValueError("duplicate categories")

    ks = np.delete(np.arange(n), col)  # vertical wires k != j
    ms = np.delete(np.arange(n), row)  # horizontal wires m != i
    ua_codes = (NODE_FIRST_UA + np.arange(n - 1)).astype(np.int16)
    ub_codes = (NODE_FIRST_UA + (n - 1) + np.arange(n - 1)).astype(np.int16)

    sections = []
    for cat in cats:
        if cat == Category.SOURCE:
            sec = _section_source(n, row, col, ks, ua_codes)
        elif cat == Category.DEST:
            sec = _section_dest(n, row, col, ms, ub_codes)
        elif cat == Category.UA:
            sec = _section_ua(n, row, col, ks, ms, ua_codes, ub_codes)
        elif cat == Category.UB:
            sec = _section_ub(n, row, col, ks, ms, ua_codes, ub_codes)
        else:  # pragma: no cover - enum is closed
            raise ValueError(f"unknown category {cat!r}")
        sections.append((cat, sec))

    eq_parts, sign_parts, rr_parts, rc_parts, vp_parts, vm_parts = (
        [], [], [], [], [], []
    )
    rhs_parts, cat_parts = [], []
    eq_offset = 0
    for cat, (eq, sign, r_row_a, r_col_a, v_plus, v_minus, n_eqs) in sections:
        eq_parts.append(eq + eq_offset)
        sign_parts.append(sign)
        rr_parts.append(r_row_a)
        rc_parts.append(r_col_a)
        vp_parts.append(v_plus)
        vm_parts.append(v_minus)
        rhs = np.zeros(n_eqs, dtype=np.float64)
        if cat in (Category.SOURCE, Category.DEST):
            rhs[:] = voltage / z
        rhs_parts.append(rhs)
        cat_parts.append(np.full(n_eqs, int(cat), dtype=np.int8))
        eq_offset += n_eqs

    return PairBlock(
        n=n,
        row=row,
        col=col,
        voltage=voltage,
        z=float(z),
        eq_id=np.concatenate(eq_parts),
        sign=np.concatenate(sign_parts),
        r_row=np.concatenate(rr_parts).astype(np.int32),
        r_col=np.concatenate(rc_parts).astype(np.int32),
        v_plus=np.concatenate(vp_parts),
        v_minus=np.concatenate(vm_parts),
        rhs=np.concatenate(rhs_parts),
        category=np.concatenate(cat_parts),
    )


def iter_pair_blocks(
    z: np.ndarray, voltage: float = 5.0
) -> Iterator[PairBlock]:
    """Stream the blocks of every pair (row-major), never holding all.

    Peak memory stays at one block (O(n^2)) regardless of device size —
    the streaming mode behind the n = 100 experiments.
    """
    z = np.asarray(z, dtype=np.float64)
    if z.ndim != 2 or z.shape[0] != z.shape[1]:
        raise ValueError("z must be square (n, n)")
    n = z.shape[0]
    for row in range(n):
        for col in range(n):
            yield form_pair_block(n, row, col, z[row, col], voltage=voltage)


@dataclass(frozen=True)
class SystemStats:
    """Closed-form size accounting of a device's joint system."""

    n: int
    num_pairs: int
    num_equations: int
    num_unknowns: int
    num_terms: int
    bytes_estimate: int

    @classmethod
    def for_device(cls, n: int) -> "SystemStats":
        n = require_positive_int(n, "n", minimum=2)
        terms = 2 * n**4
        # Per-term bytes follow PairBlock dtypes: i32 + i8 + i32 + i32 + i16 + i16.
        per_term = 4 + 1 + 4 + 4 + 2 + 2
        per_eq = 8 + 1  # rhs + category
        return cls(
            n=n,
            num_pairs=n * n,
            num_equations=2 * n**3,
            num_unknowns=(2 * n - 1) * n**2,
            num_terms=terms,
            bytes_estimate=terms * per_term + 2 * n**3 * per_eq,
        )


def form_all_blocks(z: np.ndarray, voltage: float = 5.0) -> list[PairBlock]:
    """Materialise every block (small n only — see :class:`SystemStats`)."""
    return list(iter_pair_blocks(z, voltage=voltage))
