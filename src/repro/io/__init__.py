"""Data ingestion and equation serialization.

* :mod:`repro.io.textformat` — the wet-lab measurement text format
  (the paper's Excel → text conversion step).
* :mod:`repro.io.equations_io` — binary/text serialization of formed
  equation blocks, the write path behind the I/O-cost experiments.
"""

from repro.io.equations_io import (
    load_blocks_binary,
    read_blocks_binary,
    save_blocks_binary,
    save_blocks_text,
    write_block_binary,
    write_block_text,
)
from repro.io.workbook import (
    WorkbookError,
    convert_workbook,
    export_workbook,
    load_workbook,
)
from repro.io.textformat import (
    FormatError,
    dump_measurement,
    dumps_measurement,
    load_campaign,
    load_measurement,
    loads_measurement,
    save_campaign,
    save_measurement,
)

__all__ = [
    "FormatError",
    "WorkbookError",
    "convert_workbook",
    "export_workbook",
    "load_workbook",
    "dump_measurement",
    "dumps_measurement",
    "load_blocks_binary",
    "load_campaign",
    "load_measurement",
    "loads_measurement",
    "read_blocks_binary",
    "save_blocks_binary",
    "save_blocks_text",
    "save_campaign",
    "save_measurement",
    "write_block_binary",
    "write_block_text",
]
