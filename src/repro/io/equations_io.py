"""Serialization of formed equation blocks to disk (Fig. 9's I/O).

The paper's end-to-end experiments *write the generated system of
equations to a file*; the I/O figure measures exactly that.  Two
formats are provided:

* **binary** (default for benchmarks): each :class:`PairBlock`'s term
  arrays are appended with a tiny header — a raw ``tofile`` per array,
  no encoding cost, so the benchmark measures disk I/O rather than
  string formatting;
* **text**: human-readable equations
  (``+ (U - Ua_1)/R[2,4] ... = 0.00625``), the form a user would
  inspect and the closest analogue of the paper's artifact.

Both round-trip: readers reconstruct blocks bit-exactly (binary) or to
float precision (text), and the writers are safe for the per-worker
"part file" pattern the parallel strategies use (each worker owns one
file; no locking needed).
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import BinaryIO, Iterator, TextIO

import numpy as np

from repro.core.categories import Category
from repro.core.equations import (
    NODE_DRIVE,
    NODE_FIRST_UA,
    NODE_GROUND,
    PairBlock,
)
from repro.resilience.atomio import atomic_open

_MAGIC = b"PMEQ1\x00"
_HEADER = struct.Struct("<iiidd q")  # n, row, col, voltage, z, num_terms


# -- binary format ---------------------------------------------------------


def write_block_binary(block: PairBlock, fh: BinaryIO) -> int:
    """Append one block; returns bytes written."""
    header = _HEADER.pack(
        block.n, block.row, block.col, block.voltage, block.z, block.num_terms
    )
    fh.write(_MAGIC)
    fh.write(header)
    written = len(_MAGIC) + len(header)
    for arr in (
        block.eq_id,
        block.sign,
        block.r_row,
        block.r_col,
        block.v_plus,
        block.v_minus,
    ):
        data = np.ascontiguousarray(arr).tobytes()
        fh.write(data)
        written += len(data)
    # Per-equation arrays, length-prefixed (category subsets vary).
    neq = np.int64(block.num_equations).tobytes()
    fh.write(neq)
    written += len(neq)
    for arr in (block.rhs, block.category):
        data = np.ascontiguousarray(arr).tobytes()
        fh.write(data)
        written += len(data)
    return written


def _read_exact(fh: BinaryIO, nbytes: int) -> bytes:
    """Read exactly ``nbytes`` or raise (truncation must not pass
    silently — a short ``np.frombuffer`` would otherwise yield a
    structurally broken block)."""
    data = fh.read(nbytes)
    if len(data) != nbytes:
        raise ValueError(
            f"corrupt equation file: expected {nbytes} bytes, "
            f"got {len(data)} (truncated?)"
        )
    return data


def read_blocks_binary(fh: BinaryIO) -> Iterator[PairBlock]:
    """Stream blocks back from a binary equation file."""
    while True:
        magic = fh.read(len(_MAGIC))
        if not magic:
            return
        if magic != _MAGIC:
            raise ValueError("corrupt equation file: bad magic")
        n, row, col, voltage, z, num_terms = _HEADER.unpack(
            _read_exact(fh, _HEADER.size)
        )
        arrays = []
        for dtype in (np.int32, np.int8, np.int32, np.int32, np.int16, np.int16):
            nbytes = num_terms * np.dtype(dtype).itemsize
            arrays.append(
                np.frombuffer(_read_exact(fh, nbytes), dtype=dtype).copy()
            )
        (neq,) = np.frombuffer(_read_exact(fh, 8), dtype=np.int64)
        rhs = np.frombuffer(
            _read_exact(fh, int(neq) * 8), dtype=np.float64
        ).copy()
        category = np.frombuffer(_read_exact(fh, int(neq)), dtype=np.int8).copy()
        yield PairBlock(
            n=n,
            row=row,
            col=col,
            voltage=voltage,
            z=z,
            eq_id=arrays[0],
            sign=arrays[1],
            r_row=arrays[2],
            r_col=arrays[3],
            v_plus=arrays[4],
            v_minus=arrays[5],
            rhs=rhs,
            category=category,
        )


def save_blocks_binary(
    blocks: "Iterator[PairBlock] | list[PairBlock]", path: str | Path
) -> int:
    """Write blocks to ``path`` atomically; returns total bytes.

    The file appears under ``path`` only after a complete, fsynced
    write (tmp+rename) — readers never observe a torn equation file.
    """
    total = 0
    with atomic_open(path, "wb") as fh:
        for block in blocks:
            total += write_block_binary(block, fh)
    return total


def load_blocks_binary(path: str | Path) -> list[PairBlock]:
    """Read every block from a binary equation file."""
    with open(path, "rb") as fh:
        return list(read_blocks_binary(fh))


# -- text format -------------------------------------------------------------


def _node_name(code: int, n: int) -> str:
    if code == NODE_GROUND:
        return "0"
    if code == NODE_DRIVE:
        return "U"
    if code < NODE_FIRST_UA + (n - 1):
        return f"Ua_{code - NODE_FIRST_UA + 1}"
    return f"Ub_{code - NODE_FIRST_UA - (n - 1) + 1}"


def write_block_text(block: PairBlock, fh: TextIO) -> int:
    """Append one block as human-readable equations; returns chars."""
    n = block.n
    written = 0
    head = (
        f"## pair i={block.row + 1} j={block.col + 1} "
        f"U={block.voltage:g} Z={block.z:.10g}\n"
    )
    fh.write(head)
    written += len(head)
    for eq in range(block.num_equations):
        cat = Category(int(block.category[eq])).name
        terms = np.flatnonzero(block.eq_id == eq)
        parts = []
        for t in terms:
            sign = "+" if block.sign[t] > 0 else "-"
            vp = _node_name(int(block.v_plus[t]), n)
            vm = _node_name(int(block.v_minus[t]), n)
            num = vp if vm == "0" else f"({vp} - {vm})"
            parts.append(
                f"{sign} {num}/R[{block.r_row[t] + 1},{block.r_col[t] + 1}]"
            )
        line = f"{cat}: {' '.join(parts)} = {block.rhs[eq]:.10g}\n"
        fh.write(line)
        written += len(line)
    return written


def save_blocks_text(
    blocks: "Iterator[PairBlock] | list[PairBlock]", path: str | Path
) -> int:
    """Write blocks as human-readable equations, atomically; returns
    characters."""
    total = 0
    with atomic_open(path, "w", encoding="utf-8") as fh:
        for block in blocks:
            total += write_block_text(block, fh)
    return total
