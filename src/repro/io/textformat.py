"""The wet-lab tabular text format (the paper's Excel → text step).

The paper's measurement pipeline exports Excel sheets and converts
them to text files before Parma ingests them.  This module defines
that text format for this repository: a self-describing, line-oriented
layout that a spreadsheet export could trivially produce —

::

    # parma-measurement v1
    # voltage_volts: 5.0
    # hour: 6.0
    # rows: 3
    # cols: 3
    # meta source: wetlab-sim
    1234.5 2345.6 3456.7
    ...

One matrix row per line, whitespace-separated kΩ values.  A campaign
file is several such sections separated by blank lines, ordered by
hour.  Readers are strict: malformed headers or ragged rows raise
:class:`FormatError` with line numbers.
"""

from __future__ import annotations

import io as _io
from pathlib import Path
from typing import TextIO

import numpy as np

from repro.mea.dataset import Measurement, MeasurementCampaign

MAGIC = "# parma-measurement v1"


class FormatError(ValueError):
    """Raised on malformed measurement text."""


def dump_measurement(meas: Measurement, fh: TextIO) -> None:
    """Write one measurement section to an open text stream."""
    m, n = meas.shape
    fh.write(f"{MAGIC}\n")
    fh.write(f"# voltage_volts: {meas.voltage!r}\n")
    fh.write(f"# hour: {meas.hour!r}\n")
    fh.write(f"# rows: {m}\n")
    fh.write(f"# cols: {n}\n")
    for key in sorted(meas.meta):
        value = str(meas.meta[key])
        if "\n" in value:
            raise FormatError(f"meta value for {key!r} contains a newline")
        fh.write(f"# meta {key}: {value}\n")
    for row in meas.z_kohm:
        fh.write(" ".join(f"{v:.10g}" for v in row))
        fh.write("\n")


def dumps_measurement(meas: Measurement) -> str:
    """Serialize one measurement section to a string."""
    buf = _io.StringIO()
    dump_measurement(meas, buf)
    return buf.getvalue()


def save_measurement(meas: Measurement, path: str | Path) -> None:
    """Write one measurement section to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        dump_measurement(meas, fh)


def save_campaign(campaign: MeasurementCampaign, path: str | Path) -> None:
    """Write a whole campaign (blank-line-separated sections)."""
    with open(path, "w", encoding="utf-8") as fh:
        for idx, meas in enumerate(campaign):
            if idx:
                fh.write("\n")
            dump_measurement(meas, fh)


def _parse_section(lines: list[tuple[int, str]]) -> Measurement:
    if not lines or lines[0][1] != MAGIC:
        lineno = lines[0][0] if lines else 0
        raise FormatError(f"line {lineno}: missing magic header {MAGIC!r}")
    header: dict[str, str] = {}
    meta: dict[str, str] = {}
    data_start = None
    for pos, (lineno, text) in enumerate(lines[1:], start=1):
        if not text.startswith("#"):
            data_start = pos
            break
        body = text[1:].strip()
        if body.startswith("meta "):
            key, _, value = body[5:].partition(":")
            meta[key.strip()] = value.strip()
            continue
        key, sep, value = body.partition(":")
        if not sep:
            raise FormatError(f"line {lineno}: malformed header {text!r}")
        header[key.strip()] = value.strip()
    if data_start is None:
        raise FormatError("section has headers but no data rows")
    try:
        rows = int(header["rows"])
        cols = int(header["cols"])
        voltage = float(header["voltage_volts"])
        hour = float(header["hour"])
    except KeyError as exc:
        raise FormatError(f"missing header field {exc}") from None
    except ValueError as exc:
        raise FormatError(f"bad header value: {exc}") from None
    data_lines = lines[data_start:]
    if len(data_lines) != rows:
        raise FormatError(
            f"expected {rows} data rows, found {len(data_lines)}"
        )
    z = np.empty((rows, cols), dtype=np.float64)
    for r, (lineno, text) in enumerate(data_lines):
        parts = text.split()
        if len(parts) != cols:
            raise FormatError(
                f"line {lineno}: expected {cols} values, found {len(parts)}"
            )
        try:
            z[r] = [float(p) for p in parts]
        except ValueError as exc:
            raise FormatError(f"line {lineno}: {exc}") from None
    return Measurement(z_kohm=z, voltage=voltage, hour=hour, meta=meta)


def load_measurement(path: str | Path) -> Measurement:
    """Read exactly one measurement section from ``path``."""
    sections = _split_sections(Path(path).read_text(encoding="utf-8"))
    if len(sections) != 1:
        raise FormatError(
            f"expected one measurement section, found {len(sections)}"
        )
    return _parse_section(sections[0])


def loads_measurement(text: str) -> Measurement:
    """Parse exactly one measurement section from a string."""
    sections = _split_sections(text)
    if len(sections) != 1:
        raise FormatError(
            f"expected one measurement section, found {len(sections)}"
        )
    return _parse_section(sections[0])


def load_campaign(path: str | Path) -> MeasurementCampaign:
    """Read a whole campaign (one or more sections) from ``path``."""
    sections = _split_sections(Path(path).read_text(encoding="utf-8"))
    if not sections:
        raise FormatError("file contains no measurement sections")
    return MeasurementCampaign(
        measurements=tuple(_parse_section(s) for s in sections)
    )


def _split_sections(text: str) -> list[list[tuple[int, str]]]:
    sections: list[list[tuple[int, str]]] = []
    current: list[tuple[int, str]] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip()
        if not line:
            if current:
                sections.append(current)
                current = []
            continue
        current.append((lineno, line))
    if current:
        sections.append(current)
    return sections
