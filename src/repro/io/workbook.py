"""Workbook ingestion — the paper's "Excel files converted into text".

§V-B: "The data are originally saved as Excel files and converted into
text files before being fed to the Parma system prototype."  The lab's
workbook layout is modelled here without any spreadsheet dependency:
a *workbook directory* holds one CSV sheet per timepoint plus a
metadata sheet —

::

    mydevice.workbook/
        meta.csv              # key,value rows: voltage_volts, device, ...
        sheet-0h.csv          # n x n comma-separated Z readings (kΩ)
        sheet-6h.csv
        sheet-12h.csv
        sheet-24h.csv

which is exactly what "Save as CSV" on a per-timepoint Excel workbook
produces.  :func:`convert_workbook` performs the paper's conversion
step: workbook directory → the Parma measurement text format
(:mod:`repro.io.textformat`); :func:`export_workbook` goes the other
way so the simulated lab can emit lab-shaped artifacts.
"""

from __future__ import annotations

import csv
import re
from pathlib import Path

import numpy as np

from repro.io.textformat import save_campaign
from repro.mea.dataset import Measurement, MeasurementCampaign

_SHEET_RE = re.compile(r"^sheet-(\d+(?:\.\d+)?)h\.csv$")


class WorkbookError(ValueError):
    """Raised on malformed workbook directories."""


def export_workbook(campaign: MeasurementCampaign, path: str | Path) -> Path:
    """Write ``campaign`` as a lab-style workbook directory."""
    root = Path(path)
    if root.suffix != ".workbook":
        root = root.with_suffix(".workbook")
    root.mkdir(parents=True, exist_ok=True)
    with open(root / "meta.csv", "w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(["key", "value"])
        writer.writerow(["voltage_volts", campaign.measurements[0].voltage])
        m, n = campaign.shape
        writer.writerow(["rows", m])
        writer.writerow(["cols", n])
        for key, value in sorted(campaign.measurements[0].meta.items()):
            writer.writerow([f"meta:{key}", value])
    for meas in campaign:
        name = f"sheet-{meas.hour:g}h.csv"
        with open(root / name, "w", newline="", encoding="utf-8") as fh:
            writer = csv.writer(fh)
            for row in meas.z_kohm:
                writer.writerow([f"{v:.10g}" for v in row])
    return root


def load_workbook(path: str | Path) -> MeasurementCampaign:
    """Parse a workbook directory into a campaign (strict)."""
    root = Path(path)
    if not root.is_dir():
        raise WorkbookError(f"{root} is not a workbook directory")
    meta_path = root / "meta.csv"
    if not meta_path.exists():
        raise WorkbookError(f"{root} has no meta.csv")
    header: dict[str, str] = {}
    meta: dict[str, str] = {}
    with open(meta_path, newline="", encoding="utf-8") as fh:
        reader = csv.reader(fh)
        rows = list(reader)
    if not rows or [c.strip() for c in rows[0]] != ["key", "value"]:
        raise WorkbookError("meta.csv must start with a 'key,value' header")
    for lineno, row in enumerate(rows[1:], start=2):
        if len(row) != 2:
            raise WorkbookError(f"meta.csv line {lineno}: expected 2 cells")
        key, value = row[0].strip(), row[1].strip()
        if key.startswith("meta:"):
            meta[key[5:]] = value
        else:
            header[key] = value
    try:
        voltage = float(header["voltage_volts"])
        rows_n = int(header["rows"])
        cols_n = int(header["cols"])
    except KeyError as exc:
        raise WorkbookError(f"meta.csv missing field {exc}") from None
    except ValueError as exc:
        raise WorkbookError(f"meta.csv bad value: {exc}") from None

    sheets: list[tuple[float, Path]] = []
    for child in root.iterdir():
        match = _SHEET_RE.match(child.name)
        if match:
            sheets.append((float(match.group(1)), child))
    if not sheets:
        raise WorkbookError(f"{root} contains no sheet-<hour>h.csv files")
    sheets.sort()

    measurements = []
    for hour, sheet in sheets:
        z = _read_sheet(sheet, rows_n, cols_n)
        measurements.append(
            Measurement(z_kohm=z, voltage=voltage, hour=hour, meta=meta)
        )
    return MeasurementCampaign(measurements=tuple(measurements))


def _read_sheet(path: Path, rows_n: int, cols_n: int) -> np.ndarray:
    with open(path, newline="", encoding="utf-8") as fh:
        reader = csv.reader(fh)
        rows = [r for r in reader if r and any(c.strip() for c in r)]
    if len(rows) != rows_n:
        raise WorkbookError(
            f"{path.name}: expected {rows_n} rows, found {len(rows)}"
        )
    z = np.empty((rows_n, cols_n), dtype=np.float64)
    for i, row in enumerate(rows):
        cells = [c for c in row if c.strip()]
        if len(cells) != cols_n:
            raise WorkbookError(
                f"{path.name} row {i + 1}: expected {cols_n} cells, "
                f"found {len(cells)}"
            )
        try:
            z[i] = [float(c) for c in cells]
        except ValueError as exc:
            raise WorkbookError(f"{path.name} row {i + 1}: {exc}") from None
    return z


def convert_workbook(
    workbook_path: str | Path, text_path: str | Path
) -> MeasurementCampaign:
    """The paper's conversion step: workbook dir → measurement text.

    Returns the parsed campaign (also written to ``text_path``).
    """
    campaign = load_workbook(workbook_path)
    save_campaign(campaign, text_path)
    return campaign
