"""Plain-text result tables for the benchmark harnesses.

Every benchmark prints its figure's data as an aligned text table (the
"same rows/series the paper reports"), via :class:`ResultTable`.  No
plotting dependency: the series are the artifact; EXPERIMENTS.md
records them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence


@dataclass
class ResultTable:
    """An aligned text table with a title and typed columns."""

    title: str
    columns: Sequence[str]
    rows: list[tuple] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values for {len(self.columns)} columns"
            )
        self.rows.append(tuple(values))

    def render(self) -> str:
        cells = [[_fmt(v) for v in row] for row in self.rows]
        widths = [
            max(len(str(c)), *(len(r[i]) for r in cells)) if cells else len(str(c))
            for i, c in enumerate(self.columns)
        ]
        lines = [f"== {self.title} =="]
        lines.append(
            "  ".join(str(c).ljust(w) for c, w in zip(self.columns, widths))
        )
        lines.append("  ".join("-" * w for w in widths))
        for row in cells:
            lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
        return "\n".join(lines)

    def print(self) -> None:
        print(self.render())


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def human_bytes(nbytes: float) -> str:
    """1536 -> '1.5 KiB' (for memory tables)."""
    units = ["B", "KiB", "MiB", "GiB", "TiB"]
    value = float(nbytes)
    for unit in units:
        if abs(value) < 1024 or unit == units[-1]:
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024
    return f"{value:.1f} TiB"  # pragma: no cover


def cache_stats_table(stats_list: Sequence[Any]) -> ResultTable:
    """Tabulate formation/Jacobian/Laplacian cache statistics.

    Accepts any objects exposing ``name``, ``entries``, ``hits``,
    ``misses``, ``bytes_resident`` and ``build_seconds`` (the shape of
    :func:`repro.core.templates.cache_stats`,
    :func:`repro.core.residual.jacobian_cache_stats` and
    :func:`repro.kirchhoff.forward.laplacian_cache_stats`).
    """
    table = ResultTable(
        title="formation/assembly caches",
        columns=("cache", "entries", "hits", "misses", "resident", "build"),
    )
    for stats in stats_list:
        table.add_row(
            stats.name,
            stats.entries,
            stats.hits,
            stats.misses,
            human_bytes(stats.bytes_resident),
            human_seconds(stats.build_seconds),
        )
    return table


def ladder_table(results: Sequence[Any]) -> ResultTable:
    """Tabulate which degradation rung each parametrization used.

    Accepts :class:`repro.core.engine.ParmaResult`-shaped objects
    (``measurement.hour``, ``solve``, optional ``degradation`` and
    ``events``); rows show the rung, the ladder path walked, and any
    resilience events — the §II-C monitoring operator's view of how
    degraded the day's answers are.
    """
    table = ResultTable(
        title="solver degradation / resilience events",
        columns=("hour", "solver", "converged", "rung", "path", "events"),
    )
    for r in results:
        deg = getattr(r, "degradation", None)
        table.add_row(
            f"{float(r.measurement.hour):g}",
            r.solve.method,
            bool(r.solve.converged),
            deg.rung_used if deg is not None else "-",
            deg.describe() if deg is not None and deg.degraded else "-",
            "; ".join(getattr(r, "events", ())) or "-",
        )
    return table


def human_seconds(seconds: float) -> str:
    """Pretty duration: µs/ms/s/min ranges; '0 s' for zero, sign-safe."""
    if seconds == 0:
        return "0 s"
    if seconds < 0:
        return "-" + human_seconds(-seconds)
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} µs"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f} ms"
    if seconds < 120:
        return f"{seconds:.2f} s"
    return f"{seconds / 60:.1f} min"


def _phase_field(entry: dict, *keys: str) -> float:
    """First present key: tolerates rollup ('self') and manifest
    ('self_seconds') spellings of the same phase dict."""
    for key in keys:
        if key in entry:
            return float(entry[key])
    return 0.0


def trace_phase_table(phases: dict) -> ResultTable:
    """Tabulate a phase rollup, heaviest self-time first.

    Accepts either :func:`repro.observe.tracing.phase_rollup` output
    (``count``/``total``/``self``) or the ``phases`` object of a run
    manifest (``count``/``total_seconds``/``self_seconds``).
    """
    table = ResultTable(
        title="trace phases (self-time ordered)",
        columns=("phase", "count", "total", "self"),
    )
    ordered = sorted(
        phases.items(),
        key=lambda kv: -_phase_field(kv[1], "self", "self_seconds"),
    )
    for name, entry in ordered:
        table.add_row(
            name,
            int(_phase_field(entry, "count")),
            human_seconds(_phase_field(entry, "total", "total_seconds")),
            human_seconds(_phase_field(entry, "self", "self_seconds")),
        )
    return table


def metrics_table(snapshot: dict) -> ResultTable:
    """Tabulate a :meth:`MetricsRegistry.snapshot` dict.

    Counters and gauges show their value; histograms collapse to
    ``n=<count> mean=<mean>`` (the buckets stay in the manifest JSON).
    """
    table = ResultTable(title="metrics", columns=("metric", "type", "value"))
    for name in sorted(snapshot):
        entry = snapshot[name]
        kind = entry.get("type", "?")
        if kind == "histogram":
            count = int(entry.get("count", 0))
            mean = entry.get("sum", 0.0) / count if count else 0.0
            value = f"n={count} mean={human_seconds(float(mean))}"
        else:
            value = entry.get("value", "?")
        table.add_row(name, kind, value)
    return table
