"""Memory-footprint sampling for the Fig. 8 CDF experiment.

The paper characterizes memory as a *CDF of usage over time*: what
fraction of the run is spent below each footprint level, per scale
``n`` and parallelism ``k``.  :class:`MemorySampler` polls the
process's resident set (``/proc/self/status`` VmRSS on Linux, with a
``tracemalloc`` fallback elsewhere) on demand — the formation loops
call :meth:`sample` between work items, which avoids a sampler thread
perturbing the measurement.

:func:`usage_cdf` turns a sample trace into the plotted CDF, and
:func:`fraction_below` extracts the paper's headline statistic ("two
threads incur a low memory footprint in about 60 % of time, four
threads only ~30 %").
"""

from __future__ import annotations

import os
import tracemalloc
from dataclasses import dataclass, field

import numpy as np

_PAGE = os.sysconf("SC_PAGESIZE") if hasattr(os, "sysconf") else 4096


def rss_bytes() -> int:
    """Current resident set size in bytes (best effort)."""
    try:
        with open("/proc/self/statm", "r") as fh:
            fields = fh.read().split()
        return int(fields[1]) * _PAGE
    except (OSError, IndexError, ValueError):  # pragma: no cover - non-Linux
        if tracemalloc.is_tracing():
            current, _ = tracemalloc.get_traced_memory()
            return current
        return 0


@dataclass
class MemorySampler:
    """Collects (timestamp-ordered) RSS samples during a run."""

    samples: list[int] = field(default_factory=list)

    def sample(self) -> int:
        value = rss_bytes()
        self.samples.append(value)
        return value

    def as_array(self) -> np.ndarray:
        return np.asarray(self.samples, dtype=np.float64)

    @property
    def peak(self) -> int:
        return max(self.samples, default=0)

    def reset(self) -> None:
        self.samples.clear()


def usage_cdf(samples: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF ``(levels, fraction_of_time_below)``.

    Samples are assumed uniformly spaced in time (the formation loop
    samples once per work item, which is near-uniform because items
    within one run have equal cost).
    """
    s = np.sort(np.asarray(samples, dtype=np.float64))
    if s.size == 0:
        return np.empty(0), np.empty(0)
    frac = np.arange(1, s.size + 1) / s.size
    return s, frac


def fraction_below(samples: np.ndarray, level: float) -> float:
    """Fraction of the run spent at or below ``level`` bytes."""
    s = np.asarray(samples, dtype=np.float64)
    if s.size == 0:
        return 0.0
    return float(np.mean(s <= level))


def peak_and_quantiles(samples: np.ndarray) -> dict[str, float]:
    """Summary used by the memory benchmark's table output."""
    s = np.asarray(samples, dtype=np.float64)
    if s.size == 0:
        return {"peak": 0.0, "p50": 0.0, "p90": 0.0}
    return {
        "peak": float(s.max()),
        "p50": float(np.percentile(s, 50)),
        "p90": float(np.percentile(s, 90)),
    }
