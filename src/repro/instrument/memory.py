"""Memory-footprint sampling for the Fig. 8 CDF experiment.

The paper characterizes memory as a *CDF of usage over time*: what
fraction of the run is spent below each footprint level, per scale
``n`` and parallelism ``k``.  :class:`MemorySampler` polls the
process's resident set (``/proc/self/status`` VmRSS on Linux, with a
``tracemalloc`` fallback elsewhere) on demand — the formation loops
call :meth:`sample` between work items, which avoids a sampler thread
perturbing the measurement.

:func:`usage_cdf` turns a sample trace into the plotted CDF, and
:func:`fraction_below` extracts the paper's headline statistic ("two
threads incur a low memory footprint in about 60 % of time, four
threads only ~30 %").
"""

from __future__ import annotations

import os
import threading
import tracemalloc
from dataclasses import dataclass, field

import numpy as np

_PAGE = os.sysconf("SC_PAGESIZE") if hasattr(os, "sysconf") else 4096


def rss_bytes() -> int:
    """Current resident set size in bytes (best effort)."""
    try:
        with open("/proc/self/statm", "r") as fh:
            fields = fh.read().split()
        return int(fields[1]) * _PAGE
    except (OSError, IndexError, ValueError):  # pragma: no cover - non-Linux
        if tracemalloc.is_tracing():
            current, _ = tracemalloc.get_traced_memory()
            return current
        return 0


@dataclass
class MemorySampler:
    """Collects (timestamp-ordered) RSS samples during a run.

    Usable as a context manager.  With ``interval`` set (seconds), a
    daemon thread polls RSS in the background for the duration of the
    ``with`` block — for code that has no natural between-items hook,
    like a whole traced CLI run; without it, entry/exit each take one
    sample and the caller drives the rest via :meth:`sample`.  The
    sampler thread is **always joined on exit, including when the body
    raised** — a straggler thread appending to ``samples`` while the
    caller reads them would corrupt the CDF.
    """

    samples: list[int] = field(default_factory=list)
    interval: float | None = None
    _thread: threading.Thread | None = field(
        default=None, repr=False, compare=False
    )
    _stop: threading.Event | None = field(default=None, repr=False, compare=False)

    def sample(self) -> int:
        value = rss_bytes()
        self.samples.append(value)
        return value

    def __enter__(self) -> "MemorySampler":
        self.sample()
        if self.interval is not None:
            if self.interval <= 0:
                raise ValueError("interval must be positive seconds")
            self._stop = threading.Event()
            self._thread = threading.Thread(
                target=self._poll, name="parma-memory-sampler", daemon=True
            )
            self._thread.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._thread is not None:
            self._stop.set()
            self._thread.join()
            self._thread = None
            self._stop = None
        self.sample()

    def _poll(self) -> None:
        while not self._stop.wait(self.interval):
            self.sample()

    def as_array(self) -> np.ndarray:
        return np.asarray(self.samples, dtype=np.float64)

    @property
    def peak(self) -> int:
        return max(self.samples, default=0)

    def summary(self) -> dict[str, float]:
        """Peak/quantile dict in the shape the run manifest embeds."""
        return peak_and_quantiles(self.as_array())

    def reset(self) -> None:
        self.samples.clear()


def usage_cdf(samples: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF ``(levels, fraction_of_time_below)``.

    Samples are assumed uniformly spaced in time (the formation loop
    samples once per work item, which is near-uniform because items
    within one run have equal cost).
    """
    s = np.sort(np.asarray(samples, dtype=np.float64))
    if s.size == 0:
        return np.empty(0), np.empty(0)
    frac = np.arange(1, s.size + 1) / s.size
    return s, frac


def fraction_below(samples: np.ndarray, level: float) -> float:
    """Fraction of the run spent at or below ``level`` bytes."""
    s = np.asarray(samples, dtype=np.float64)
    if s.size == 0:
        return 0.0
    return float(np.mean(s <= level))


def peak_and_quantiles(samples: np.ndarray) -> dict[str, float]:
    """Summary used by the memory benchmark's table output."""
    s = np.asarray(samples, dtype=np.float64)
    if s.size == 0:
        return {"peak": 0.0, "p50": 0.0, "p90": 0.0}
    return {
        "peak": float(s.max()),
        "p50": float(np.percentile(s, 50)),
        "p90": float(np.percentile(s, 90)),
    }
