"""Measurement instrumentation: memory sampling and result tables."""

from repro.instrument.memory import (
    MemorySampler,
    fraction_below,
    peak_and_quantiles,
    rss_bytes,
    usage_cdf,
)
from repro.instrument.report import (
    ResultTable,
    cache_stats_table,
    human_bytes,
    human_seconds,
    ladder_table,
    metrics_table,
    trace_phase_table,
)

__all__ = [
    "MemorySampler",
    "ResultTable",
    "cache_stats_table",
    "fraction_below",
    "human_bytes",
    "human_seconds",
    "ladder_table",
    "metrics_table",
    "peak_and_quantiles",
    "rss_bytes",
    "trace_phase_table",
    "usage_cdf",
]
