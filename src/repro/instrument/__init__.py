"""Measurement instrumentation: memory sampling and result tables."""

from repro.instrument.memory import (
    MemorySampler,
    fraction_below,
    peak_and_quantiles,
    rss_bytes,
    usage_cdf,
)
from repro.instrument.report import ResultTable, human_bytes, human_seconds

__all__ = [
    "MemorySampler",
    "ResultTable",
    "fraction_below",
    "human_bytes",
    "human_seconds",
    "peak_and_quantiles",
    "rss_bytes",
    "usage_cdf",
]
