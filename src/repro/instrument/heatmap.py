"""Terminal rendering of device fields (ASCII heatmaps).

Parma is a CLI-first tool in this reproduction; operators inspecting a
recovered resistance field or an anomaly mask need a zero-dependency
way to *see* it.  :func:`render_field` maps a 2-D array onto a density
glyph ramp with an optional overlay of detected regions;
:func:`render_mask` shows boolean masks; both return plain strings
(printed by the CLI's ``--show`` flags and the examples).
"""

from __future__ import annotations

import numpy as np

#: Glyph ramp from low to high (space = minimum).
DEFAULT_RAMP = " .:-=+*#%@"


def render_field(
    field: np.ndarray,
    ramp: str = DEFAULT_RAMP,
    mask: np.ndarray | None = None,
    mask_glyph: str = "X",
    legend: bool = True,
    vmin: float | None = None,
    vmax: float | None = None,
) -> str:
    """Render a 2-D field as an ASCII heatmap.

    ``mask`` (optional boolean array of the same shape) overrides the
    glyph at flagged sites — used to overlay detections.  ``vmin`` /
    ``vmax`` pin the color scale (e.g. to compare timepoints); default
    is the field's own range.
    """
    f = np.asarray(field, dtype=np.float64)
    if f.ndim != 2:
        raise ValueError("field must be 2-D")
    if len(ramp) < 2:
        raise ValueError("ramp needs at least 2 glyphs")
    lo = float(f.min()) if vmin is None else float(vmin)
    hi = float(f.max()) if vmax is None else float(vmax)
    span = hi - lo
    if span <= 0:
        span = 1.0
    scaled = np.clip((f - lo) / span, 0.0, 1.0)
    idx = np.minimum((scaled * len(ramp)).astype(int), len(ramp) - 1)
    if mask is not None:
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != f.shape:
            raise ValueError("mask shape must match field shape")
    lines = []
    rows, cols = f.shape
    border = "+" + "-" * cols + "+"
    lines.append(border)
    for r in range(rows):
        cells = []
        for c in range(cols):
            if mask is not None and mask[r, c]:
                cells.append(mask_glyph)
            else:
                cells.append(ramp[idx[r, c]])
        lines.append("|" + "".join(cells) + "|")
    lines.append(border)
    if legend:
        lines.append(
            f"[{ramp[0]!r}={lo:.3g} .. {ramp[-1]!r}={hi:.3g}"
            + (f", {mask_glyph!r}=flagged" if mask is not None else "")
            + "]"
        )
    return "\n".join(lines)


def render_mask(mask: np.ndarray, on: str = "#", off: str = ".") -> str:
    """Render a boolean mask compactly."""
    m = np.asarray(mask, dtype=bool)
    if m.ndim != 2:
        raise ValueError("mask must be 2-D")
    return "\n".join("".join(on if v else off for v in row) for row in m)


def render_comparison(
    left: np.ndarray,
    right: np.ndarray,
    labels: tuple[str, str] = ("truth", "recovered"),
    gap: str = "   ",
) -> str:
    """Two same-shape fields side by side on a shared scale."""
    a = np.asarray(left, dtype=np.float64)
    b = np.asarray(right, dtype=np.float64)
    if a.shape != b.shape or a.ndim != 2:
        raise ValueError("fields must be 2-D and same shape")
    vmin = float(min(a.min(), b.min()))
    vmax = float(max(a.max(), b.max()))
    la = render_field(a, legend=False, vmin=vmin, vmax=vmax).splitlines()
    lb = render_field(b, legend=False, vmin=vmin, vmax=vmax).splitlines()
    width = len(la[0])
    header = labels[0].center(width) + gap + labels[1].center(width)
    body = "\n".join(x + gap + y for x, y in zip(la, lb))
    legend = f"[shared scale {vmin:.3g} .. {vmax:.3g}]"
    return header + "\n" + body + "\n" + legend
