"""Anomaly detection on recovered resistance fields and its scoring."""

from repro.anomaly.detect import (
    AnomalyRegion,
    DetectionResult,
    detect_anomalies,
    detect_drift_anomalies,
)
from repro.anomaly.tracking import Track, TrackingResult, track_regions
from repro.anomaly.metrics import (
    DetectionScore,
    field_relative_error,
    localization_errors,
    score_mask,
)

__all__ = [
    "AnomalyRegion",
    "Track",
    "TrackingResult",
    "track_regions",
    "DetectionResult",
    "DetectionScore",
    "detect_anomalies",
    "detect_drift_anomalies",
    "field_relative_error",
    "localization_errors",
    "score_mask",
]
