"""Anomaly detection on recovered resistance fields (§II-C's use case).

Once Parma recovers the ``R`` field, anomalies (tissue regions whose
local resistance "significantly increases") are localized by robust
thresholding plus connected-component grouping:

1. estimate the healthy baseline with the median and the spread with
   the MAD (robust to the anomalies themselves);
2. flag sites more than ``threshold_sigmas`` robust deviations above
   baseline (one-sided: anomalies only raise R);
3. group flagged sites 4-connectedly and drop groups smaller than
   ``min_size`` (isolated flickers are measurement noise).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import require_positive, require_shape


@dataclass(frozen=True)
class AnomalyRegion:
    """One detected connected anomaly region."""

    label: int
    sites: tuple[tuple[int, int], ...]
    mean_resistance: float
    peak_resistance: float
    centroid: tuple[float, float]

    @property
    def size(self) -> int:
        return len(self.sites)


@dataclass(frozen=True)
class DetectionResult:
    """Mask plus per-region structure."""

    mask: np.ndarray  # bool (n, n)
    regions: tuple[AnomalyRegion, ...]
    baseline: float
    spread: float
    threshold: float

    @property
    def num_regions(self) -> int:
        return len(self.regions)


def detect_anomalies(
    resistance: np.ndarray,
    threshold_sigmas: float = 4.0,
    min_size: int = 1,
) -> DetectionResult:
    """Detect elevated-R regions in a recovered field."""
    r = np.asarray(resistance, dtype=np.float64)
    if r.ndim != 2:
        raise ValueError("resistance field must be 2-D")
    require_positive(threshold_sigmas, "threshold_sigmas")
    if min_size < 1:
        raise ValueError("min_size must be >= 1")
    baseline = float(np.median(r))
    # MAD scaled to sigma-equivalent for a normal baseline.
    mad = float(np.median(np.abs(r - baseline)))
    spread = 1.4826 * mad
    if spread == 0.0:
        spread = 1e-12 * max(baseline, 1.0)
    threshold = baseline + threshold_sigmas * spread
    mask = r > threshold
    labels, count = _label_components(mask)
    regions: list[AnomalyRegion] = []
    for lbl in range(1, count + 1):
        coords = np.argwhere(labels == lbl)
        if len(coords) < min_size:
            mask[tuple(coords.T)] = False
            continue
        vals = r[tuple(coords.T)]
        regions.append(
            AnomalyRegion(
                label=len(regions) + 1,
                sites=tuple(map(tuple, coords.tolist())),
                mean_resistance=float(vals.mean()),
                peak_resistance=float(vals.max()),
                centroid=(float(coords[:, 0].mean()), float(coords[:, 1].mean())),
            )
        )
    return DetectionResult(
        mask=mask,
        regions=tuple(regions),
        baseline=baseline,
        spread=spread,
        threshold=threshold,
    )


def _label_components(mask: np.ndarray) -> tuple[np.ndarray, int]:
    """4-connected component labelling (iterative flood fill)."""
    labels = np.zeros(mask.shape, dtype=np.int32)
    current = 0
    rows, cols = mask.shape
    for r0 in range(rows):
        for c0 in range(cols):
            if not mask[r0, c0] or labels[r0, c0]:
                continue
            current += 1
            stack = [(r0, c0)]
            labels[r0, c0] = current
            while stack:
                r, c = stack.pop()
                for dr, dc in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                    rr, cc = r + dr, c + dc
                    if (
                        0 <= rr < rows
                        and 0 <= cc < cols
                        and mask[rr, cc]
                        and not labels[rr, cc]
                    ):
                        labels[rr, cc] = current
                        stack.append((rr, cc))
    return labels, current


def detect_drift_anomalies(
    r_early: np.ndarray,
    r_late: np.ndarray,
    growth_threshold: float = 0.25,
    min_size: int = 1,
) -> DetectionResult:
    """Detect regions whose R *grew* between two timepoints.

    The temporal variant of §II-C's monitoring workload: proliferating
    anomalies grow over the 0/6/12/24 h campaign while the healthy
    baseline stays flat, so relative growth separates them even when
    the absolute field is heterogeneous.
    """
    early = require_shape(np.asarray(r_early, dtype=np.float64), (None, None), "r_early")
    late = np.asarray(r_late, dtype=np.float64)
    if late.shape != early.shape:
        raise ValueError("timepoint fields must have the same shape")
    growth = (late - early) / early
    mask = growth > growth_threshold
    labels, count = _label_components(mask)
    regions: list[AnomalyRegion] = []
    for lbl in range(1, count + 1):
        coords = np.argwhere(labels == lbl)
        if len(coords) < min_size:
            mask[tuple(coords.T)] = False
            continue
        vals = late[tuple(coords.T)]
        regions.append(
            AnomalyRegion(
                label=len(regions) + 1,
                sites=tuple(map(tuple, coords.tolist())),
                mean_resistance=float(vals.mean()),
                peak_resistance=float(vals.max()),
                centroid=(float(coords[:, 0].mean()), float(coords[:, 1].mean())),
            )
        )
    return DetectionResult(
        mask=mask,
        regions=tuple(regions),
        baseline=float(np.median(early)),
        spread=float(np.median(np.abs(growth))),
        threshold=growth_threshold,
    )
