"""Tracking anomaly regions across campaign timepoints.

The §II-C monitoring workload is longitudinal: the clinician cares how
each lesion *evolves* over the 0/6/12/24 h readings, not just where
blobs are at one instant.  This module links per-timepoint
:class:`~repro.anomaly.detect.DetectionResult` region sets into tracks
by greedy nearest-centroid matching (gated by a max jump distance),
and derives per-track statistics: growth rate, drift velocity, and
whether the lesion is newly appeared or resolved.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.anomaly.detect import AnomalyRegion, DetectionResult


@dataclass
class Track:
    """One anomaly followed through time."""

    track_id: int
    hours: list[float] = field(default_factory=list)
    regions: list[AnomalyRegion] = field(default_factory=list)

    @property
    def first_seen(self) -> float:
        return self.hours[0]

    @property
    def last_seen(self) -> float:
        return self.hours[-1]

    @property
    def observations(self) -> int:
        return len(self.regions)

    def sizes(self) -> np.ndarray:
        return np.array([r.size for r in self.regions], dtype=np.float64)

    def peaks(self) -> np.ndarray:
        return np.array(
            [r.peak_resistance for r in self.regions], dtype=np.float64
        )

    def centroids(self) -> np.ndarray:
        return np.array([r.centroid for r in self.regions])

    def growth_rate_per_hour(self) -> float:
        """Log-linear fit of peak resistance vs time (0 if one point
        or no time span)."""
        if self.observations < 2:
            return 0.0
        hours = np.asarray(self.hours)
        span = hours[-1] - hours[0]
        if span <= 0:
            return 0.0
        logs = np.log(self.peaks())
        slope = np.polyfit(hours, logs, 1)[0]
        return float(np.expm1(slope))

    def drift_velocity(self) -> float:
        """Mean centroid displacement per hour (grid units)."""
        if self.observations < 2:
            return 0.0
        cents = self.centroids()
        hours = np.asarray(self.hours)
        dists = np.linalg.norm(np.diff(cents, axis=0), axis=1)
        dt = np.diff(hours)
        valid = dt > 0
        if not valid.any():
            return 0.0
        return float((dists[valid] / dt[valid]).mean())


@dataclass(frozen=True)
class TrackingResult:
    tracks: tuple[Track, ...]
    hours: tuple[float, ...]

    @property
    def num_tracks(self) -> int:
        return len(self.tracks)

    def persistent_tracks(self) -> list[Track]:
        """Tracks observed at every timepoint."""
        return [t for t in self.tracks if t.observations == len(self.hours)]

    def transient_tracks(self) -> list[Track]:
        return [t for t in self.tracks if t.observations < len(self.hours)]

    def fastest_growing(self) -> Track | None:
        growing = [t for t in self.tracks if t.observations >= 2]
        if not growing:
            return None
        return max(growing, key=lambda t: t.growth_rate_per_hour())


def track_regions(
    detections: list[DetectionResult],
    hours: list[float],
    max_jump: float = 3.0,
) -> TrackingResult:
    """Link detections across timepoints into tracks.

    Greedy nearest-centroid matching per consecutive timepoint pair:
    each region at time t+1 claims the closest unclaimed active track
    whose last centroid is within ``max_jump`` grid units; unmatched
    regions start new tracks; unmatched tracks go dormant (they keep
    their history and may NOT be resumed — a re-appearing lesion is a
    new track, which is the conservative clinical reading).
    """
    if len(detections) != len(hours):
        raise ValueError("detections and hours must align")
    if sorted(hours) != list(hours):
        raise ValueError("hours must be ascending")
    tracks: list[Track] = []
    active: list[Track] = []
    next_id = 1
    for det, hour in zip(detections, hours):
        regions = list(det.regions)
        # Distance matrix between active tracks and current regions.
        claimed_regions: set[int] = set()
        claimed_tracks: set[int] = set()
        pairs: list[tuple[float, int, int]] = []
        for ti, track in enumerate(active):
            last = track.regions[-1].centroid
            for ri, region in enumerate(regions):
                dist = float(
                    np.hypot(
                        last[0] - region.centroid[0],
                        last[1] - region.centroid[1],
                    )
                )
                if dist <= max_jump:
                    pairs.append((dist, ti, ri))
        for dist, ti, ri in sorted(pairs):
            if ti in claimed_tracks or ri in claimed_regions:
                continue
            active[ti].hours.append(hour)
            active[ti].regions.append(regions[ri])
            claimed_tracks.add(ti)
            claimed_regions.add(ri)
        survivors = [t for i, t in enumerate(active) if i in claimed_tracks]
        for ri, region in enumerate(regions):
            if ri in claimed_regions:
                continue
            track = Track(track_id=next_id, hours=[hour], regions=[region])
            next_id += 1
            tracks.append(track)
            survivors.append(track)
        active = survivors
    # `tracks` holds every track ever created, in creation order; the
    # ones created on the first timepoint appear first.
    all_tracks = sorted(tracks, key=lambda t: t.track_id)
    return TrackingResult(tracks=tuple(all_tracks), hours=tuple(hours))
