"""Scoring detected anomalies against ground truth.

Because the wet-lab substitute (:mod:`repro.mea.wetlab`) knows the
true anomaly mask, recovery experiments can report detection quality —
something the paper (working on unlabelled lab data) could not.  All
metrics are mask-level; region-level localization error is also
provided for the examples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class DetectionScore:
    """Pixel-level confusion summary of a detection mask."""

    true_positives: int
    false_positives: int
    false_negatives: int
    true_negatives: int

    @property
    def precision(self) -> float:
        denom = self.true_positives + self.false_positives
        return self.true_positives / denom if denom else 1.0

    @property
    def recall(self) -> float:
        denom = self.true_positives + self.false_negatives
        return self.true_positives / denom if denom else 1.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    @property
    def iou(self) -> float:
        denom = self.true_positives + self.false_positives + self.false_negatives
        return self.true_positives / denom if denom else 1.0


def score_mask(predicted: np.ndarray, truth: np.ndarray) -> DetectionScore:
    """Confusion counts of two boolean masks of equal shape."""
    pred = np.asarray(predicted, dtype=bool)
    true = np.asarray(truth, dtype=bool)
    if pred.shape != true.shape:
        raise ValueError(
            f"mask shapes differ: {pred.shape} vs {true.shape}"
        )
    return DetectionScore(
        true_positives=int(np.sum(pred & true)),
        false_positives=int(np.sum(pred & ~true)),
        false_negatives=int(np.sum(~pred & true)),
        true_negatives=int(np.sum(~pred & ~true)),
    )


def localization_errors(
    predicted_centroids: list[tuple[float, float]],
    true_centers: list[tuple[float, float]],
) -> list[float]:
    """Greedy nearest-match distance from each true center to a
    predicted centroid (inf if no prediction remains)."""
    remaining = list(predicted_centroids)
    errors: list[float] = []
    for tc in true_centers:
        if not remaining:
            errors.append(float("inf"))
            continue
        dists = [np.hypot(tc[0] - p[0], tc[1] - p[1]) for p in remaining]
        best = int(np.argmin(dists))
        errors.append(float(dists[best]))
        remaining.pop(best)
    return errors


def field_relative_error(estimate: np.ndarray, truth: np.ndarray) -> dict[str, float]:
    """Summary relative-error statistics of a recovered R field."""
    est = np.asarray(estimate, dtype=np.float64)
    tru = np.asarray(truth, dtype=np.float64)
    if est.shape != tru.shape:
        raise ValueError("field shapes differ")
    rel = np.abs(est - tru) / tru
    return {
        "mean": float(rel.mean()),
        "median": float(np.median(rel)),
        "max": float(rel.max()),
        "p95": float(np.percentile(rel, 95)),
    }
