"""Deterministic balanced scheduling (the paper's *Balanced Parallel*).

§IV-C.1: the four constraint categories are heavily skewed — two hold
O(n^3) constraints, two hold O(n^2) — so a thread-per-category split
(*Parallel*) leaves threads idle.  The paper balances the load with
*deterministic* work stealing: the assignment of work items to threads
is computed ahead of time from known costs rather than decided
stochastically at run time, trading flexibility for zero scheduling
overhead and reproducibility.

This module implements that planner plus an event-ordered simulation
of a classic *runtime* work-stealing scheduler, so the deterministic
vs. stochastic trade-off the paper discusses can be measured
(benchmarks/bench_ablations.py).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class Assignment:
    """A static schedule: ``worker_of[i]`` is the worker of task ``i``.

    ``loads`` is total assigned cost per worker; ``makespan`` its max —
    the parallel completion time when per-task costs are exact.
    """

    worker_of: np.ndarray
    loads: np.ndarray
    makespan: float

    @property
    def num_workers(self) -> int:
        return len(self.loads)

    def imbalance(self) -> float:
        """makespan / mean-load — 1.0 is perfect balance."""
        mean = float(self.loads.mean())
        if mean == 0.0:
            return 1.0
        return self.makespan / mean

    def tasks_of(self, worker: int) -> np.ndarray:
        return np.flatnonzero(self.worker_of == worker)


def lpt_schedule(costs: Sequence[float], num_workers: int) -> Assignment:
    """Longest-Processing-Time-first static schedule.

    Tasks are assigned in decreasing cost order to the currently
    least-loaded worker (ties broken by worker index, then task index —
    fully deterministic).  LPT is the standard 4/3-approximation for
    makespan and is what "deterministic work stealing" amounts to when
    costs are known ahead of time.
    """
    costs_arr = np.asarray(costs, dtype=np.float64)
    if num_workers < 1:
        raise ValueError("num_workers must be >= 1")
    if np.any(costs_arr < 0):
        raise ValueError("task costs must be non-negative")
    worker_of = np.empty(len(costs_arr), dtype=np.int64)
    loads = np.zeros(num_workers, dtype=np.float64)
    # Stable sort keeps equal-cost tasks in index order.
    order = np.argsort(-costs_arr, kind="stable")
    heap: list[tuple[float, int]] = [(0.0, w) for w in range(num_workers)]
    heapq.heapify(heap)
    for task in order:
        load, w = heapq.heappop(heap)
        worker_of[task] = w
        load += costs_arr[task]
        loads[w] = load
        heapq.heappush(heap, (load, w))
    return Assignment(
        worker_of=worker_of,
        loads=loads,
        makespan=float(loads.max(initial=0.0)),
    )


def contiguous_schedule(costs: Sequence[float], num_workers: int) -> Assignment:
    """Naive equal-count contiguous blocks (the unbalanced baseline)."""
    costs_arr = np.asarray(costs, dtype=np.float64)
    if num_workers < 1:
        raise ValueError("num_workers must be >= 1")
    n = len(costs_arr)
    worker_of = np.empty(n, dtype=np.int64)
    loads = np.zeros(num_workers, dtype=np.float64)
    per, extra = divmod(n, num_workers)
    lo = 0
    for w in range(num_workers):
        hi = lo + per + (1 if w < extra else 0)
        worker_of[lo:hi] = w
        loads[w] = costs_arr[lo:hi].sum()
        lo = hi
    return Assignment(
        worker_of=worker_of, loads=loads, makespan=float(loads.max(initial=0.0))
    )


def category_schedule(
    costs: Sequence[float], categories: Sequence[int], num_workers: int | None = None
) -> Assignment:
    """One worker per category — the paper's *Parallel* baseline.

    ``categories[i]`` in ``0..C-1``; worker count defaults to the
    category count (4 for the MEA constraint system).  Extra workers,
    if any, idle — exactly the limitation §IV-A points out.
    """
    costs_arr = np.asarray(costs, dtype=np.float64)
    cats = np.asarray(categories, dtype=np.int64)
    if cats.shape != costs_arr.shape:
        raise ValueError("categories and costs must align")
    ncat = int(cats.max(initial=-1)) + 1
    workers = ncat if num_workers is None else num_workers
    if workers < ncat:
        raise ValueError(
            f"category schedule needs >= {ncat} workers, got {workers}"
        )
    loads = np.zeros(workers, dtype=np.float64)
    for c in range(ncat):
        loads[c] = costs_arr[cats == c].sum()
    return Assignment(
        worker_of=cats.copy(),
        loads=loads,
        makespan=float(loads.max(initial=0.0)),
    )


@dataclass(frozen=True)
class StealingTrace:
    """Result of the runtime work-stealing simulation."""

    makespan: float
    steals: int
    finish_times: np.ndarray


def simulate_runtime_stealing(
    costs: Sequence[float],
    num_workers: int,
    steal_overhead: float = 0.0,
    initial: str = "contiguous",
) -> StealingTrace:
    """Event-ordered simulation of runtime (stochastic-style) stealing.

    Workers start from a static split (``contiguous`` or ``strided``);
    an idle worker steals the largest remaining task from the most
    loaded victim, paying ``steal_overhead`` per steal.  Deterministic
    given inputs (ties broken by index), but models the *runtime*
    decision cost the paper's deterministic planner avoids.
    """
    costs_arr = np.asarray(costs, dtype=np.float64)
    n = len(costs_arr)
    if num_workers < 1:
        raise ValueError("num_workers must be >= 1")
    queues: list[list[int]] = [[] for _ in range(num_workers)]
    if initial == "contiguous":
        base = contiguous_schedule(costs_arr, num_workers)
    elif initial == "strided":
        base = Assignment(
            worker_of=np.arange(n) % num_workers,
            loads=np.zeros(num_workers),
            makespan=0.0,
        )
    else:
        raise ValueError(f"unknown initial split {initial!r}")
    for i in range(n):
        queues[int(base.worker_of[i])].append(i)
    for q in queues:
        q.sort(key=lambda i: (-costs_arr[i], i))  # pop cheapest last

    clock = np.zeros(num_workers, dtype=np.float64)
    steals = 0
    remaining = n
    while remaining:
        w = int(np.argmin(clock))
        if queues[w]:
            task = queues[w].pop()
        else:
            # Steal the largest task from the victim with most queued work.
            victims = [
                (sum(costs_arr[t] for t in q), v)
                for v, q in enumerate(queues)
                if q
            ]
            if not victims:  # pragma: no cover - remaining>0 implies victims
                break
            _, victim = max(victims, key=lambda lv: (lv[0], -lv[1]))
            task = queues[victim].pop(0)  # largest (queues sorted desc)
            clock[w] += steal_overhead
            steals += 1
        clock[w] += costs_arr[task]
        remaining -= 1
    return StealingTrace(
        makespan=float(clock.max(initial=0.0)),
        steals=steals,
        finish_times=clock,
    )


@dataclass(frozen=True)
class FailoverTrace:
    """Result of a stealing simulation with worker deaths.

    ``lost_work_seconds`` is compute discarded on dead workers
    (partial executions that never reported); ``tasks_rerun`` counts
    tasks a dead worker had started that survivors re-executed.
    """

    makespan: float
    steals: int
    finish_times: np.ndarray
    failed_workers: tuple[int, ...]
    tasks_rerun: int
    redispatched_tasks: int
    lost_work_seconds: float

    def overhead_vs(self, baseline: StealingTrace) -> float:
        """Relative makespan inflation caused by the failures."""
        if baseline.makespan == 0.0:
            return 0.0
        return self.makespan / baseline.makespan - 1.0


def simulate_stealing_with_failures(
    costs: Sequence[float],
    num_workers: int,
    death_times: dict[int, float],
    steal_overhead: float = 0.0,
    detection_latency: float = 0.0,
    initial: str = "contiguous",
    observer=None,
) -> FailoverTrace:
    """Runtime stealing where some workers die mid-run.

    ``death_times`` maps worker index → wall-clock death instant.  A
    worker dying mid-task loses that partial execution (counted in
    ``lost_work_seconds``); the task and the worker's remaining queue
    become stealable by survivors only after
    ``death + detection_latency`` (heartbeat lag).  Fully
    deterministic, so failover overhead curves are reproducible.  With
    an ``observer`` the trace lands in the run manifest as a
    ``workstealing.failover`` event plus ``workstealing.steals`` /
    ``workstealing.tasks_rerun`` / ``workstealing.tasks_redispatched``
    counters.

    Raises ``RuntimeError`` if every worker dies with work remaining —
    the no-survivor case a real deployment must treat as a campaign
    abort, not a recoverable fault.
    """
    costs_arr = np.asarray(costs, dtype=np.float64)
    n = len(costs_arr)
    if num_workers < 1:
        raise ValueError("num_workers must be >= 1")
    for w in death_times:
        if not 0 <= w < num_workers:
            raise ValueError(f"death time for unknown worker {w}")
    queues: list[list[int]] = [[] for _ in range(num_workers)]
    if initial == "contiguous":
        base = contiguous_schedule(costs_arr, num_workers)
    elif initial == "strided":
        worker_of = np.arange(n) % num_workers
    else:
        raise ValueError(f"unknown initial split {initial!r}")
    if initial == "contiguous":
        worker_of = base.worker_of
    for i in range(n):
        queues[int(worker_of[i])].append(i)
    for q in queues:
        q.sort(key=lambda i: (-costs_arr[i], i))  # pop cheapest last

    clock = np.zeros(num_workers, dtype=np.float64)
    alive = [True] * num_workers
    # (task, available_at) pairs orphaned by a death, largest first.
    orphan_pool: list[tuple[int, float]] = []
    steals = 0
    tasks_rerun = 0
    redispatched = 0
    lost_work = 0.0
    done = 0

    def _kill(w: int, at: float) -> None:
        nonlocal redispatched
        alive[w] = False
        clock[w] = at
        release = at + detection_latency
        for t in queues[w]:
            orphan_pool.append((t, release))
        redispatched += len(queues[w])
        queues[w] = []
        orphan_pool.sort(key=lambda tr: (-costs_arr[tr[0]], tr[0]))

    while done < n:
        live = [w for w in range(num_workers) if alive[w]]
        if not live:
            raise RuntimeError(
                f"all workers died with {n - done} task(s) remaining"
            )
        w = min(live, key=lambda v: (clock[v], v))
        death = death_times.get(w, float("inf"))
        if clock[w] >= death:
            _kill(w, max(clock[w], death))
            continue
        start = clock[w]
        if queues[w]:
            task = queues[w].pop()
        else:
            victims = [
                (sum(costs_arr[t] for t in q), v)
                for v, q in enumerate(queues)
                if q and alive[v]
            ]
            ready_orphans = [
                (i, (t, avail))
                for i, (t, avail) in enumerate(orphan_pool)
            ]
            if victims:
                _, victim = max(victims, key=lambda lv: (lv[0], -lv[1]))
                task = queues[victim].pop(0)
                start += steal_overhead
                steals += 1
            elif ready_orphans:
                # Take the soonest-available largest orphan; waiting
                # for release is idle time, not compute.
                idx, (task, avail) = min(
                    ready_orphans, key=lambda ia: (ia[1][1], ia[0])
                )
                orphan_pool.pop(idx)
                start = max(start, avail) + steal_overhead
                steals += 1
            else:
                # Nothing visible yet: everything pending belongs to
                # workers that are not yet dead — advance this worker
                # to the next death it must outlive.
                pending_deaths = [
                    death_times.get(v, float("inf"))
                    for v in range(num_workers)
                    if alive[v] and queues[v] and v != w
                ]
                horizon = min(pending_deaths, default=float("inf"))
                if horizon == float("inf"):  # pragma: no cover - defensive
                    raise RuntimeError("stealing simulation deadlocked")
                clock[w] = max(clock[w], horizon + detection_latency)
                continue
        end = start + costs_arr[task]
        if end > death:
            # Died mid-task: partial work wasted, task re-enters pool.
            lost_work += max(0.0, death - start)
            tasks_rerun += 1
            orphan_pool.append((task, death + detection_latency))
            orphan_pool.sort(key=lambda tr: (-costs_arr[tr[0]], tr[0]))
            _kill(w, death)
            continue
        clock[w] = end
        done += 1
    failed = tuple(sorted(w for w in death_times if not alive[w]))
    # Imported here: repro.observe sits above this scheduling layer.
    from repro.observe.observer import as_observer

    obs = as_observer(observer)
    obs.event(
        "workstealing.failover",
        num_workers=num_workers,
        failed_workers=list(failed),
        steals=steals,
        tasks_rerun=tasks_rerun,
        tasks_redispatched=redispatched,
        lost_work_seconds=round(float(lost_work), 9),
    )
    if steals:
        obs.count("workstealing.steals", steals)
    if tasks_rerun:
        obs.count("workstealing.tasks_rerun", tasks_rerun)
    if redispatched:
        obs.count("workstealing.tasks_redispatched", redispatched)
    return FailoverTrace(
        makespan=float(clock[alive].max(initial=0.0)) if any(alive) else 0.0,
        steals=steals,
        finish_times=clock,
        failed_workers=failed,
        tasks_rerun=tasks_rerun,
        redispatched_tasks=redispatched,
        lost_work_seconds=float(lost_work),
    )
