"""Deterministic simulated-cluster clock for strong-scaling studies.

The paper's Figures 7, 9 and 10 need 32-core servers and a 1,024-core
InfiniBand cluster.  This container has one physical core, so measured
wall-clock speedups are impossible; what *is* reproducible is the
mechanism that produces the paper's curves — the ratio of per-rank
compute share to fixed per-rank overhead — given honest single-core
measurements of the per-task work.

:class:`ClusterModel` is a LogGP-flavoured analytic machine:

* per-rank **startup** cost (process spawn / MPI init),
* **alpha** seconds latency per message and **beta** seconds per byte
  (one aggregated result message per rank, tree-reduced),
* per-task costs replayed onto ranks via a pluggable static schedule
  (the same planners the real strategies use), and an optional
  **serial fraction** for the unparallelisable prologue.

Defaults for the two test beds are calibrated to the hardware classes
the paper names (Gigabit-class IPC on the Z820 SMP; FDR InfiniBand on
the HPC cluster) and are plain dataclass fields — every benchmark
prints them, and EXPERIMENTS.md discusses sensitivity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Callable, Sequence

import numpy as np

from repro.observe.observer import as_observer
from repro.parallel.workstealing import (
    Assignment,
    contiguous_schedule,
    lpt_schedule,
)


@dataclass(frozen=True)
class ClusterModel:
    """Analytic machine parameters.

    Attributes
    ----------
    startup_per_rank:
        One-time cost to bring up a rank (fork / MPI launch), seconds.
        Amortised log2-tree style: total startup = startup * log2(p)+1.
    alpha:
        Per-message latency, seconds.
    beta:
        Per-byte transfer cost, seconds (1/bandwidth).
    serial_fraction:
        Fraction of the total workload that cannot be distributed
        (equation indexing prologue, result assembly).
    result_bytes_per_task:
        Bytes each task contributes to the gathered result.
    """

    name: str
    startup_per_rank: float
    alpha: float
    beta: float
    serial_fraction: float = 0.01
    result_bytes_per_task: float = 64.0

    def with_overrides(self, **kw) -> "ClusterModel":
        return replace(self, **kw)


#: The paper's on-premises SMP (HP Z820, 32 cores): fork startup in the
#: ~10 ms range, shared-memory "messages".
Z820_SMP = ClusterModel(
    name="z820-smp",
    startup_per_rank=12e-3,
    alpha=5e-6,
    beta=1e-9,
    serial_fraction=0.01,
)

#: The paper's HPC cluster (58 nodes, FDR InfiniBand): ~1.5 µs message
#: latency, ~56 Gb/s links.  Startup here models per-rank *in-program*
#: initialization only (communicator setup, input broadcast) — the
#: mpiexec job launch is outside the measured region, matching how the
#: paper reports compute time; the serial fraction is tiny because
#: equation formation is embarrassingly parallel across pairs.
HPC_FDR = ClusterModel(
    name="hpc-fdr-ib",
    startup_per_rank=2e-3,
    alpha=1.5e-6,
    beta=1.5e-10,
    serial_fraction=1e-4,
)


@dataclass(frozen=True)
class ScalingPoint:
    """One (ranks, time) sample of a strong-scaling sweep."""

    ranks: int
    compute_time: float
    startup_time: float
    comm_time: float
    serial_time: float

    @property
    def total(self) -> float:
        return self.compute_time + self.startup_time + self.comm_time + self.serial_time


Scheduler = Callable[[Sequence[float], int], Assignment]


def simulate_strong_scaling(
    task_costs: Sequence[float],
    ranks: int,
    model: ClusterModel,
    scheduler: Scheduler = lpt_schedule,
) -> ScalingPoint:
    """Makespan of ``task_costs`` on ``ranks`` simulated ranks.

    ``task_costs`` are *measured* per-task seconds from the real
    machine (see the benchmark harnesses).  Compute time is the
    schedule's makespan over the parallelisable part; startup grows
    with ``log2(ranks)`` (tree launch); the result gather is a
    ``log2(ranks)``-depth reduction of per-rank messages.
    """
    costs = np.asarray(task_costs, dtype=np.float64)
    if ranks < 1:
        raise ValueError("ranks must be >= 1")
    if np.any(costs < 0):
        raise ValueError("task costs must be non-negative")
    total = float(costs.sum())
    serial = model.serial_fraction * total
    parallel_costs = costs * (1.0 - model.serial_fraction)
    if ranks == 1:
        return ScalingPoint(
            ranks=1,
            compute_time=float(parallel_costs.sum()),
            startup_time=0.0,
            comm_time=0.0,
            serial_time=serial,
        )
    schedule = scheduler(parallel_costs, ranks)
    depth = math.ceil(math.log2(ranks)) if ranks > 1 else 0
    startup = model.startup_per_rank * (depth + 1)
    per_rank_bytes = model.result_bytes_per_task * len(costs) / ranks
    comm = depth * (model.alpha + model.beta * per_rank_bytes)
    return ScalingPoint(
        ranks=ranks,
        compute_time=schedule.makespan,
        startup_time=startup,
        comm_time=comm,
        serial_time=serial,
    )


def scaling_sweep(
    task_costs: Sequence[float],
    rank_counts: Sequence[int],
    model: ClusterModel,
    scheduler: Scheduler = lpt_schedule,
) -> list[ScalingPoint]:
    """Strong-scaling sweep over ``rank_counts`` (Fig. 10 driver)."""
    return [
        simulate_strong_scaling(task_costs, p, model, scheduler)
        for p in rank_counts
    ]


def speedup_curve(points: Sequence[ScalingPoint]) -> np.ndarray:
    """Speedups relative to the first (usually 1-rank) point."""
    if not points:
        raise ValueError(
            "speedup_curve needs at least one scaling point "
            "(an empty sweep has no baseline)"
        )
    base = points[0].total
    return np.array([base / p.total for p in points])


def parallel_efficiency(points: Sequence[ScalingPoint]) -> np.ndarray:
    """Speedup / ranks, relative to the first point's rank count."""
    if not points:
        raise ValueError(
            "parallel_efficiency needs at least one scaling point "
            "(an empty sweep has no baseline rank count)"
        )
    sp = speedup_curve(points)
    base_ranks = points[0].ranks
    return np.array([s * base_ranks / p.ranks for s, p in zip(sp, points)])


def crossover_rank(
    task_costs: Sequence[float],
    model: ClusterModel,
    max_ranks: int = 1024,
    scheduler: Scheduler = lpt_schedule,
) -> int:
    """Largest power-of-two rank count that still improves total time.

    Reproduces the paper's qualitative finding: small workloads stop
    scaling early (inter-node parallelism "not effective" for 10x10 /
    20x20), large ones scale to 1,024.
    """
    best_rank, best_time = 1, simulate_strong_scaling(task_costs, 1, model).total
    p = 2
    while p <= max_ranks:
        t = simulate_strong_scaling(task_costs, p, model, scheduler).total
        if t < best_time:
            best_rank, best_time = p, t
        p *= 2
    return best_rank


@dataclass(frozen=True)
class RecoveryPoint:
    """Makespan of a run that loses ranks mid-compute and re-dispatches.

    ``lost_work`` is compute the dead ranks performed before dying
    (wasted — their partial results never report); ``redispatch_time``
    is the LPT makespan of re-running their *entire* task share on the
    survivors; ``detect_time`` is the heartbeat lag before survivors
    learn of the death.
    """

    ranks: int
    failed_ranks: tuple[int, ...]
    baseline_total: float
    compute_time: float
    detect_time: float
    redispatch_time: float
    startup_time: float
    comm_time: float
    serial_time: float
    lost_work: float
    tasks_redispatched: int

    @property
    def total(self) -> float:
        return (
            self.compute_time
            + self.detect_time
            + self.redispatch_time
            + self.startup_time
            + self.comm_time
            + self.serial_time
        )

    @property
    def failure_overhead(self) -> float:
        """Relative slowdown versus the fault-free run."""
        if self.baseline_total == 0.0:
            return 0.0
        return self.total / self.baseline_total - 1.0


def simulate_with_failures(
    task_costs: Sequence[float],
    ranks: int,
    model: ClusterModel,
    failed_ranks: Sequence[int],
    failure_fraction: float = 0.5,
    detection_latency: float | None = None,
    scheduler: Scheduler = lpt_schedule,
    observer=None,
) -> RecoveryPoint:
    """Strong-scaling makespan when ``failed_ranks`` die mid-compute.

    Each failed rank dies after completing ``failure_fraction`` of its
    assigned share; everything it was assigned is re-scheduled (LPT)
    over the survivors, who begin the re-dispatch once their own share
    *and* the failure detection (default: one 100·alpha heartbeat
    period) are behind them.  Deterministic — the failover curves in
    the chaos benchmarks are exactly reproducible.  With an
    ``observer`` the re-dispatch lands in the run manifest as a
    ``simcluster.redispatch`` event plus ``simcluster.failures`` /
    ``simcluster.tasks_redispatched`` counters.
    """
    costs = np.asarray(task_costs, dtype=np.float64)
    if ranks < 2:
        raise ValueError("failure simulation needs >= 2 ranks")
    failed = tuple(sorted(set(int(r) for r in failed_ranks)))
    for r in failed:
        if not 0 <= r < ranks:
            raise ValueError(f"failed rank {r} out of range for {ranks} ranks")
    if len(failed) >= ranks:
        raise ValueError("at least one rank must survive")
    if not 0.0 <= failure_fraction <= 1.0:
        raise ValueError("failure_fraction must be in [0, 1]")
    if detection_latency is None:
        detection_latency = 100.0 * model.alpha

    baseline = simulate_strong_scaling(costs, ranks, model, scheduler)
    if not failed:
        return RecoveryPoint(
            ranks=ranks,
            failed_ranks=(),
            baseline_total=baseline.total,
            compute_time=baseline.compute_time,
            detect_time=0.0,
            redispatch_time=0.0,
            startup_time=baseline.startup_time,
            comm_time=baseline.comm_time,
            serial_time=baseline.serial_time,
            lost_work=0.0,
            tasks_redispatched=0,
        )

    parallel_costs = costs * (1.0 - model.serial_fraction)
    schedule = scheduler(parallel_costs, ranks)
    survivors = [r for r in range(ranks) if r not in failed]
    # Work assigned to the dead: all of it reruns; the fraction they
    # finished before dying is wasted compute.
    orphan_tasks = np.concatenate(
        [schedule.tasks_of(r) for r in failed]
    ).astype(np.int64)
    orphan_costs = parallel_costs[orphan_tasks]
    lost_work = float(
        sum(failure_fraction * schedule.loads[r] for r in failed)
    )
    death_time = float(
        max(failure_fraction * schedule.loads[r] for r in failed)
    )
    survivor_makespan = float(max(schedule.loads[r] for r in survivors))
    redispatch = lpt_schedule(orphan_costs, len(survivors))
    # Survivors drain their own share first; re-dispatch starts once
    # the last death is detected and they are free.
    redispatch_start = max(survivor_makespan, death_time + detection_latency)
    detect = redispatch_start - survivor_makespan
    depth = math.ceil(math.log2(ranks))
    # One extra gather round for the re-dispatched results.
    per_rank_bytes = model.result_bytes_per_task * len(costs) / ranks
    comm = (depth + 1) * (model.alpha + model.beta * per_rank_bytes)
    obs = as_observer(observer)
    obs.event(
        "simcluster.redispatch",
        ranks=ranks,
        failed_ranks=list(failed),
        tasks_redispatched=int(len(orphan_tasks)),
        lost_work_seconds=round(lost_work, 9),
        detect_seconds=round(detect, 9),
        redispatch_seconds=round(redispatch.makespan, 9),
    )
    obs.count("simcluster.failures", len(failed))
    obs.count("simcluster.tasks_redispatched", int(len(orphan_tasks)))
    return RecoveryPoint(
        ranks=ranks,
        failed_ranks=failed,
        baseline_total=baseline.total,
        compute_time=survivor_makespan,
        detect_time=detect,
        redispatch_time=redispatch.makespan,
        startup_time=baseline.startup_time,
        comm_time=comm,
        serial_time=baseline.serial_time,
        lost_work=lost_work,
        tasks_redispatched=int(len(orphan_tasks)),
    )


def amdahl_bound(serial_fraction: float, ranks: int) -> float:
    """Classical Amdahl speedup bound, for benchmark annotations."""
    if not 0.0 <= serial_fraction <= 1.0:
        raise ValueError("serial_fraction must be in [0, 1]")
    if ranks < 1:
        raise ValueError("ranks must be >= 1")
    return 1.0 / (serial_fraction + (1.0 - serial_fraction) / ranks)


__all__ = [
    "ClusterModel",
    "HPC_FDR",
    "RecoveryPoint",
    "ScalingPoint",
    "Z820_SMP",
    "amdahl_bound",
    "contiguous_schedule",
    "crossover_rank",
    "parallel_efficiency",
    "scaling_sweep",
    "simulate_strong_scaling",
    "simulate_with_failures",
    "speedup_curve",
]
