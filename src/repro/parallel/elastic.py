"""Elastic campaign dispatch: work leases, live pool resize, churn sweeps.

The paper's §IV headline is strong-scaling to 1,024 processes, but a
wall-clock-day campaign on shared hardware never keeps a fixed worker
set that long: ranks die (OOM, node loss), hang, straggle, and — on an
elastic allocation — *join and leave* mid-run.  Every parallel path in
this repo so far fixes pool membership at fork time.  This module is
the supervision layer's answer to membership churn:

* :class:`WorkLedger` — lease-based chunk ownership.  Formation work
  is cut into :class:`WorkChunk` slices (:func:`plan_chunks`), each
  carrying its *expected* term count and checksum from the O(1)
  template checksum table
  (:attr:`repro.core.templates.PairTemplate.checksum_table`).  A chunk
  is leased to exactly one worker at a time; a lost or expired lease
  is re-enqueued exactly once per loss (``forfeit`` is idempotent),
  and every completion is verified against the table before it is
  accepted — so the surviving output is bit-identical no matter how
  many times a chunk bounced between workers.
* :class:`ElasticPool` — a forked worker set that can *grow and
  shrink mid-campaign*.  New workers register fresh rows on a growable
  :class:`repro.resilience.supervise.HeartbeatBoard`; removed workers
  drain their current lease at a chunk (checkpoint) boundary before
  exiting; a worker whose lease expires on the heartbeat watchdog is
  killed *first* and re-enqueued *second* (never two writers on one
  chunk file); repeat-offender slots are quarantined after
  ``quarantine_after`` lease losses with an ``elastic.quarantined``
  event.
* :func:`run_elastic_formation` — a churn-tolerant formation campaign
  on top of the two, writing one atomically-committed part file per
  chunk so a quiet run and a churn run produce byte-identical output.
* :func:`sweep_scaling_curves` — the simulated strategy × rank-count
  sweep behind ``BENCH_scaling.json`` (real processes up to the host's
  cores; the :mod:`repro.parallel.simcluster` clock beyond, to 1,024).

Observability: the pool emits ``elastic.*`` events and counters
(``elastic.lease_reassigned``, ``elastic.pool_resized``,
``elastic.quarantined``, ``elastic.workers_respawned``, ...) through
whatever :class:`repro.observe.Observer` is passed in, so churn shows
up in run manifests and the catalog (docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import math
import os
import pickle
import select
import signal
import struct
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from repro.core.partition import hole_of_pair, make_items
from repro.core.templates import (
    form_worker_share,
    get_template,
    warm_template_cache,
)
from repro.io.equations_io import write_block_binary
from repro.observe.observer import as_observer
from repro.parallel import pymp
from repro.parallel.simcluster import (
    HPC_FDR,
    ClusterModel,
    parallel_efficiency,
    scaling_sweep,
    speedup_curve,
)
from repro.parallel.workstealing import (
    Assignment,
    category_schedule,
    contiguous_schedule,
    lpt_schedule,
)
from repro.resilience.atomio import AtomicFile
from repro.resilience.faults import as_injector
from repro.resilience.supervise import Deadline, HeartbeatBoard, kill_process

__all__ = [
    "ElasticError",
    "LeaseVerificationError",
    "WorkChunk",
    "WorkLedger",
    "WorkerContext",
    "ElasticPool",
    "ElasticReport",
    "StrategyCurve",
    "plan_chunks",
    "run_elastic_formation",
    "part_files_identical",
    "scaling_strategy_schedulers",
    "sweep_scaling_curves",
]

#: Tolerances for checksum verification; same convention as the
#: salvage path in :mod:`repro.core.strategies`.
_REL_TOL = 1e-9
_ABS_TOL = 1e-6


class ElasticError(RuntimeError):
    """The elastic pool cannot make progress (e.g. every slot quarantined)."""


class LeaseVerificationError(ElasticError):
    """A completed chunk disagreed with the template checksum table."""


# -- chunks and the ledger ----------------------------------------------------


@dataclass(frozen=True)
class WorkChunk:
    """One leaseable slice of the formation item list.

    ``expected_terms`` / ``expected_checksum`` come from the O(1)
    template checksum table at planning time, so any worker's result
    can be verified without re-forming anything.
    """

    chunk_id: int
    item_lo: int
    item_hi: int  # exclusive
    expected_terms: int
    expected_checksum: float

    @property
    def num_items(self) -> int:
        return self.item_hi - self.item_lo


def plan_chunks(
    n: int, chunk_items: int = 32, items: Sequence | None = None
) -> tuple[WorkChunk, ...]:
    """Cut the ``4 n^2`` formation items into contiguous lease chunks.

    Expectations are read from the per-category template checksum
    tables — O(1) per item, no formation happens here.
    """
    if chunk_items < 1:
        raise ValueError(f"chunk_items must be >= 1, got {chunk_items}")
    if items is None:
        items = make_items(n)
    tables = {
        cat: get_template(n, (cat,)).checksum_table
        for cat in sorted({it.category for it in items})
    }
    chunks: list[WorkChunk] = []
    for lo in range(0, len(items), chunk_items):
        hi = min(lo + chunk_items, len(items))
        terms = 0
        checksum = 0.0
        for i in range(lo, hi):
            item = items[i]
            terms += int(item.cost)
            checksum += float(tables[item.category][item.row, item.col])
        chunks.append(
            WorkChunk(
                chunk_id=len(chunks),
                item_lo=lo,
                item_hi=hi,
                expected_terms=terms,
                expected_checksum=checksum,
            )
        )
    return tuple(chunks)


class WorkLedger:
    """Lease-based ownership of work chunks.

    Invariants (the hypothesis suite in
    ``tests/parallel/test_elastic_ledger_property.py`` drives these
    under arbitrary interleavings):

    * a chunk is held by at most one worker at a time;
    * a worker holds at most one lease at a time;
    * :meth:`forfeit` re-enqueues a lost lease exactly once per loss
      (it is idempotent — a watchdog expiry and a crash reap racing on
      the same worker cannot double-enqueue);
    * a chunk completes exactly once — late duplicates are detected by
      owner mismatch and discarded;
    * every accepted completion matched the template checksum table.
    """

    def __init__(self, chunks: Sequence[WorkChunk]) -> None:
        self._chunks: dict[int, WorkChunk] = {c.chunk_id: c for c in chunks}
        if len(self._chunks) != len(chunks):
            raise ValueError("duplicate chunk ids")
        self._pending: deque[int] = deque(c.chunk_id for c in chunks)
        self._state: dict[int, str] = {
            c.chunk_id: "pending" for c in chunks
        }
        self._owner_of_chunk: dict[int, int] = {}
        self._chunk_of_worker: dict[int, int] = {}
        self.requeues: dict[int, int] = {}
        self.completions = 0
        self.stale_results = 0

    # -- queries -------------------------------------------------------------

    @property
    def total(self) -> int:
        return len(self._chunks)

    @property
    def completed_count(self) -> int:
        return self.completions

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    @property
    def leased_count(self) -> int:
        return len(self._owner_of_chunk)

    @property
    def done(self) -> bool:
        return self.completions == len(self._chunks)

    def lease_of(self, worker: int) -> int | None:
        """The chunk id ``worker`` currently holds, if any."""
        return self._chunk_of_worker.get(worker)

    def chunk(self, chunk_id: int) -> WorkChunk:
        return self._chunks[chunk_id]

    # -- transitions ---------------------------------------------------------

    def lease(self, worker: int) -> WorkChunk | None:
        """Grant the next pending chunk to ``worker`` (None = nothing
        pending right now; the pool parks the worker idle)."""
        if worker in self._chunk_of_worker:
            raise ElasticError(
                f"worker {worker} already holds chunk "
                f"{self._chunk_of_worker[worker]}"
            )
        if not self._pending:
            return None
        chunk_id = self._pending.popleft()
        self._state[chunk_id] = "leased"
        self._owner_of_chunk[chunk_id] = worker
        self._chunk_of_worker[worker] = chunk_id
        return self._chunks[chunk_id]

    def complete(
        self, worker: int, chunk_id: int, terms: int, checksum: float
    ) -> bool:
        """Record a finished chunk; returns False for stale duplicates.

        Raises :class:`LeaseVerificationError` when the reported totals
        disagree with the template checksum table — the lease stays
        held so the caller can kill the worker and :meth:`forfeit`.
        """
        if self._owner_of_chunk.get(chunk_id) != worker:
            self.stale_results += 1
            return False
        chunk = self._chunks[chunk_id]
        if int(terms) != chunk.expected_terms or not math.isclose(
            float(checksum),
            chunk.expected_checksum,
            rel_tol=_REL_TOL,
            abs_tol=_ABS_TOL,
        ):
            raise LeaseVerificationError(
                f"chunk {chunk_id} from worker {worker} failed "
                f"verification: terms {terms} vs {chunk.expected_terms}, "
                f"checksum {checksum!r} vs {chunk.expected_checksum!r}"
            )
        del self._owner_of_chunk[chunk_id]
        del self._chunk_of_worker[worker]
        self._state[chunk_id] = "done"
        self.completions += 1
        return True

    def forfeit(self, worker: int) -> int | None:
        """Return ``worker``'s lease (if any) to the *front* of the
        queue; returns the chunk id, or None when it held nothing.

        Idempotent: a second forfeit of the same loss is a no-op, so a
        lease is re-enqueued exactly once however many failure paths
        observe the same death.
        """
        chunk_id = self._chunk_of_worker.pop(worker, None)
        if chunk_id is None:
            return None
        del self._owner_of_chunk[chunk_id]
        self._state[chunk_id] = "pending"
        self._pending.appendleft(chunk_id)
        self.requeues[chunk_id] = self.requeues.get(chunk_id, 0) + 1
        return chunk_id


# -- pipe protocol ------------------------------------------------------------

_LEN = struct.Struct(">I")


def _send_msg(fd: int, obj) -> None:
    data = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    os.write(fd, _LEN.pack(len(data)) + data)


def _read_exact(fd: int, count: int) -> bytes:
    parts: list[bytes] = []
    while count:
        part = os.read(fd, count)
        if not part:
            raise EOFError("pipe closed mid-message")
        parts.append(part)
        count -= len(part)
    return b"".join(parts)


def _recv_msg(fd: int):
    (length,) = _LEN.unpack(_read_exact(fd, _LEN.size))
    return pickle.loads(_read_exact(fd, length))


# -- the elastic pool ---------------------------------------------------------


@dataclass
class WorkerContext:
    """What a chunk runner sees inside a forked worker."""

    worker_id: int
    board: HeartbeatBoard
    row: int
    injector: object | None = None
    items_done: int = 0
    items_assigned: int = 0

    def tick(self, advance: int = 1) -> None:
        """Per-item heartbeat + fault hook (hang/slow injection)."""
        self.items_done += int(advance)
        self.board.tick(self.row, advance)
        if self.injector is not None:
            self.injector.on_progress(self.worker_id, self.items_done)


@dataclass
class _Worker:
    worker_id: int
    pid: int
    slot: int
    row: int
    req_w: int  # parent -> child commands
    res_r: int  # child -> parent results
    draining: bool = False
    exiting: bool = False


@dataclass
class _Slot:
    index: int
    active: bool = True
    quarantined: bool = False
    losses: int = 0
    handle: _Worker | None = None


class ElasticPool:
    """A forked worker pool whose membership can change mid-campaign.

    ``runner(chunk, ctx)`` executes inside the child and returns
    ``(terms, checksum, bytes_written)`` for ledger verification.
    Workers get monotonically increasing ids starting at 1 (0 is the
    parent, per the :mod:`repro.resilience.faults` convention) and one
    :class:`HeartbeatBoard` row each — respawns and joins get *fresh*
    ids and fresh rows via :meth:`HeartbeatBoard.grow`, always
    allocated in the parent before the fork.
    """

    def __init__(
        self,
        workers: int,
        runner: Callable[[WorkChunk, WorkerContext], tuple[int, float, int]],
        *,
        lease_timeout: float | None = 30.0,
        quarantine_after: int = 3,
        term_grace: float = 1.0,
        poll_interval: float = 0.02,
        idle_wait: float = 0.01,
        faults=None,
        observer=None,
        deadline: Deadline | float | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if lease_timeout is not None and not lease_timeout > 0:
            raise ValueError("lease_timeout must be positive (or None)")
        if quarantine_after < 1:
            raise ValueError("quarantine_after must be >= 1")
        if not pymp.fork_available():  # pragma: no cover - posix-only repo
            raise ElasticError("elastic pools need os.fork")
        self.runner = runner
        self.lease_timeout = lease_timeout
        self.quarantine_after = int(quarantine_after)
        self.term_grace = float(term_grace)
        self.poll_interval = float(poll_interval)
        self.idle_wait = float(idle_wait)
        self.injector = as_injector(faults)
        self.observer = observer
        self.deadline = Deadline.coerce(deadline)
        self.board = HeartbeatBoard(workers)
        self._next_row = 0
        self._next_worker_id = 1
        self._slots: list[_Slot] = [_Slot(index=i) for i in range(workers)]
        self._live: list[_Worker] = []
        self._running = False
        self._ran = False
        # lifetime stats (the report and the manifest read these)
        self.leases_reassigned = 0
        self.pool_resizes = 0
        self.quarantined_slots = 0
        self.workers_spawned = 0
        self.workers_respawned = 0

    # -- sizing --------------------------------------------------------------

    @property
    def size(self) -> int:
        """Target pool size: active, non-quarantined slots."""
        return sum(1 for s in self._slots if s.active and not s.quarantined)

    @property
    def live_workers(self) -> int:
        return sum(1 for w in self._live if not w.draining)

    def resize(self, new_size: int) -> None:
        """Grow or shrink the pool; safe to call mid-campaign.

        Growth spawns workers into fresh (or vacated, non-quarantined)
        slots with new board rows.  Shrinkage marks the highest-index
        live workers *draining*: each finishes its current lease, then
        exits cleanly at the next chunk boundary.
        """
        if new_size < 0:
            raise ValueError(f"new_size must be >= 0, got {new_size}")
        old = self.size
        if new_size == old:
            return
        obs = as_observer(self.observer)
        obs.event("elastic.pool_resized", old_size=old, new_size=new_size)
        obs.count("elastic.pool_resized")
        self.pool_resizes += 1
        if new_size > old:
            for _ in range(new_size - old):
                slot = self._vacant_slot()
                slot.active = True
                if self._running:
                    self._spawn(slot)
                    obs.event(
                        "elastic.worker_joined",
                        worker=slot.handle.worker_id,
                        slot=slot.index,
                    )
                    obs.count("elastic.worker_joined")
        else:
            victims = [
                s
                for s in self._slots
                if s.active and not s.quarantined
            ][new_size:]
            for slot in victims:
                slot.active = False
                if slot.handle is not None:
                    slot.handle.draining = True

    def _vacant_slot(self) -> _Slot:
        for slot in self._slots:
            if not slot.active and not slot.quarantined:
                return slot
        slot = _Slot(index=len(self._slots), active=False)
        self._slots.append(slot)
        return slot

    # -- spawning ------------------------------------------------------------

    def _alloc_row(self) -> int:
        if self._next_row < self.board.workers:
            row = self._next_row
        else:
            row = self.board.grow(1)
        self._next_row = row + 1
        return row

    def _spawn(self, slot: _Slot) -> _Worker:
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        row = self._alloc_row()  # pre-fork: the child inherits the mapping
        req_r, req_w = os.pipe()
        res_r, res_w = os.pipe()
        pid = os.fork()
        if pid == 0:  # pragma: no cover - child process, exits via os._exit
            os.close(req_w)
            os.close(res_r)
            for other in self._live:
                for fd in (other.req_w, other.res_r):
                    try:
                        os.close(fd)
                    except OSError:
                        pass
            self._child_main(worker_id, row, req_r, res_w)
            os._exit(0)  # unreachable; _child_main always exits
        os.close(req_r)
        os.close(res_w)
        worker = _Worker(
            worker_id=worker_id,
            pid=pid,
            slot=slot.index,
            row=row,
            req_w=req_w,
            res_r=res_r,
        )
        slot.handle = worker
        self._live.append(worker)
        self.workers_spawned += 1
        return worker

    def _child_main(
        self, worker_id: int, row: int, req_r: int, res_w: int
    ) -> None:  # pragma: no cover - runs in the forked child
        signal.signal(signal.SIGPIPE, signal.SIG_IGN)
        ctx = WorkerContext(
            worker_id=worker_id,
            board=self.board,
            row=row,
            injector=self.injector,
        )
        try:
            _send_msg(res_w, ("ready", worker_id))
            while True:
                msg = _recv_msg(req_r)
                kind = msg[0]
                if kind == "exit":
                    self.board.mark_done(row)
                    os._exit(0)
                elif kind == "idle":
                    self.board.tick(row, 0)
                    time.sleep(float(msg[1]))
                    _send_msg(res_w, ("ready", worker_id))
                elif kind == "lease":
                    chunk: WorkChunk = msg[1]
                    ctx.items_assigned += chunk.num_items
                    self.board.assign(row, ctx.items_assigned)
                    if self.injector is not None:
                        self.injector.maybe_kill_worker(worker_id)
                    terms, checksum, nbytes = self.runner(chunk, ctx)
                    self.board.tick(row, 0)
                    _send_msg(
                        res_w,
                        ("done", worker_id, chunk.chunk_id, terms, checksum, nbytes),
                    )
                    _send_msg(res_w, ("ready", worker_id))
                else:
                    raise ElasticError(f"unknown command {kind!r}")
        except (EOFError, BrokenPipeError):
            os._exit(0)
        except BaseException:
            traceback.print_exc()
            os._exit(1)

    # -- the campaign loop ---------------------------------------------------

    def run(
        self,
        ledger: WorkLedger,
        on_chunk: Callable[["ElasticPool", int], None] | None = None,
    ) -> tuple[int, float, int]:
        """Drive ``ledger`` to completion; returns total
        ``(terms, checksum, bytes_written)`` across all chunks.

        ``on_chunk(pool, completed_count)`` fires after each accepted
        completion — the hook resize schedules hang off.
        """
        if self._ran:
            raise ElasticError("an ElasticPool is single-use")
        self._ran = True
        self._running = True
        obs = as_observer(self.observer)
        totals = [0, 0.0, 0]
        try:
            for slot in self._slots:
                if slot.active and slot.handle is None:
                    self._spawn(slot)
            while not ledger.done:
                if self.deadline is not None:
                    self.deadline.check("elastic campaign")
                self._pump(ledger, obs, totals, on_chunk)
                self._reap(ledger, obs)
                self._watchdog(ledger, obs)
                if not ledger.done and not self._live and self.size == 0:
                    raise ElasticError(
                        f"no live workers and no spawnable slots with "
                        f"{ledger.pending_count + ledger.leased_count} "
                        "chunk(s) left"
                    )
        finally:
            self._running = False
            self._shutdown()
        return int(totals[0]), float(totals[1]), int(totals[2])

    def _pump(self, ledger, obs, totals, on_chunk) -> None:
        fds = {w.res_r: w for w in self._live}
        if not fds:
            time.sleep(self.poll_interval)
            return
        readable, _, _ = select.select(list(fds), [], [], self.poll_interval)
        for fd in readable:
            worker = fds[fd]
            if worker not in self._live:
                continue  # retired earlier in this same sweep
            try:
                msg = _recv_msg(fd)
            except (EOFError, OSError):
                continue  # death; the reap pass owns this transition
            kind = msg[0]
            if kind == "ready":
                self._handle_ready(worker, ledger, obs)
            elif kind == "done":
                self._handle_done(worker, msg, ledger, obs, totals, on_chunk)

    def _handle_ready(self, worker: _Worker, ledger, obs) -> None:
        if worker.exiting:
            return
        if worker.draining or ledger.done:
            worker.exiting = True
            if worker.draining:
                obs.event(
                    "elastic.worker_left",
                    worker=worker.worker_id,
                    slot=worker.slot,
                )
                obs.count("elastic.worker_left")
            self._send(worker, ("exit",))
            return
        chunk = ledger.lease(worker.worker_id)
        if chunk is None:
            self._send(worker, ("idle", self.idle_wait))
        else:
            obs.count("elastic.leases_granted")
            self._send(worker, ("lease", chunk))

    def _handle_done(
        self, worker: _Worker, msg, ledger, obs, totals, on_chunk
    ) -> None:
        _, wid, chunk_id, terms, checksum, nbytes = msg
        try:
            accepted = ledger.complete(wid, chunk_id, terms, checksum)
        except LeaseVerificationError as exc:
            obs.event(
                "elastic.verification_failed",
                worker=wid,
                chunk=chunk_id,
                error=str(exc),
            )
            obs.count("elastic.verification_failures")
            self._lose_worker(worker, ledger, obs, reason="verification")
            return
        if not accepted:
            return
        totals[0] += int(terms)
        totals[1] += float(checksum)
        totals[2] += int(nbytes)
        obs.count("elastic.chunks_completed")
        if on_chunk is not None:
            on_chunk(self, ledger.completed_count)

    def _reap(self, ledger, obs) -> None:
        for worker in list(self._live):
            try:
                wpid, status = os.waitpid(worker.pid, os.WNOHANG)
            except ChildProcessError:  # pragma: no cover - stolen reap
                wpid, status = worker.pid, 9
            if wpid == 0:
                continue
            code = os.waitstatus_to_exitcode(status)
            self._retire(worker)
            if worker.exiting and code == 0:
                continue  # clean drain/shutdown exit
            obs.event(
                "elastic.worker_died",
                worker=worker.worker_id,
                slot=worker.slot,
                exit_code=code,
            )
            obs.count("elastic.workers_died")
            self._after_loss(worker, ledger, obs, reason="death")

    def _watchdog(self, ledger, obs) -> None:
        if self.lease_timeout is None:
            return
        now = time.monotonic()
        for worker in list(self._live):
            if ledger.lease_of(worker.worker_id) is None:
                continue
            age = self.board.age(worker.row, now)
            if age <= self.lease_timeout:
                continue
            obs.event(
                "elastic.lease_expired",
                worker=worker.worker_id,
                chunk=ledger.lease_of(worker.worker_id),
                age_seconds=round(age, 4),
            )
            obs.count("elastic.leases_expired")
            self._lose_worker(worker, ledger, obs, reason="expired")

    def _lose_worker(self, worker: _Worker, ledger, obs, reason: str) -> None:
        """Kill first, forfeit second: the dead writer is reaped before
        its chunk can be re-leased, so no two workers ever hold the
        same chunk (or its part file) concurrently."""
        kill_process(
            worker.pid,
            term_grace=self.term_grace,
            poll_interval=self.poll_interval,
        )
        self._retire(worker)
        self._after_loss(worker, ledger, obs, reason=reason)

    def _after_loss(self, worker: _Worker, ledger, obs, reason: str) -> None:
        slot = self._slots[worker.slot]
        chunk_id = ledger.forfeit(worker.worker_id)
        if chunk_id is not None:
            slot.losses += 1
            self.leases_reassigned += 1
            obs.event(
                "elastic.lease_reassigned",
                chunk=chunk_id,
                worker=worker.worker_id,
                slot=slot.index,
                reason=reason,
                losses=slot.losses,
            )
            obs.count("elastic.lease_reassigned")
        if not slot.active or slot.quarantined or ledger.done:
            return
        if slot.losses >= self.quarantine_after:
            slot.quarantined = True
            self.quarantined_slots += 1
            obs.event(
                "elastic.quarantined",
                slot=slot.index,
                worker=worker.worker_id,
                losses=slot.losses,
            )
            obs.count("elastic.quarantined")
            return
        replacement = self._spawn(slot)
        self.workers_respawned += 1
        obs.event(
            "elastic.worker_respawned",
            worker=replacement.worker_id,
            slot=slot.index,
            replaces=worker.worker_id,
        )
        obs.count("elastic.workers_respawned")

    # -- plumbing ------------------------------------------------------------

    def _send(self, worker: _Worker, msg) -> None:
        try:
            _send_msg(worker.req_w, msg)
        except (BrokenPipeError, OSError):
            pass  # dead child; the reap pass owns the fallout

    def _retire(self, worker: _Worker) -> None:
        for fd in (worker.req_w, worker.res_r):
            try:
                os.close(fd)
            except OSError:  # pragma: no cover - already closed
                pass
        if worker in self._live:
            self._live.remove(worker)
        slot = self._slots[worker.slot]
        if slot.handle is worker:
            slot.handle = None

    def _shutdown(self) -> None:
        for worker in list(self._live):
            self._send(worker, ("exit",))
        t_end = time.monotonic() + max(self.term_grace, 0.25)
        while self._live and time.monotonic() < t_end:
            for worker in list(self._live):
                try:
                    wpid, _ = os.waitpid(worker.pid, os.WNOHANG)
                except ChildProcessError:  # pragma: no cover
                    wpid = worker.pid
                if wpid != 0:
                    self._retire(worker)
            if self._live:
                time.sleep(0.005)
        for worker in list(self._live):
            kill_process(
                worker.pid,
                term_grace=self.term_grace,
                poll_interval=self.poll_interval,
            )
            self._retire(worker)


# -- the formation campaign ---------------------------------------------------


@dataclass(frozen=True)
class ElasticReport:
    """What :func:`run_elastic_formation` hands back."""

    n: int
    chunks_total: int
    chunks_completed: int
    terms_formed: int
    checksum: float
    bytes_written: int
    elapsed_seconds: float
    leases_reassigned: int
    pool_resizes: int
    quarantined_slots: int
    workers_spawned: int
    workers_respawned: int
    part_files: tuple[str, ...]


def run_elastic_formation(
    z: np.ndarray,
    *,
    workers: int = 3,
    chunk_items: int = 32,
    voltage: float = 5.0,
    output_dir: str | Path,
    lease_timeout: float | None = 30.0,
    quarantine_after: int = 3,
    term_grace: float = 0.5,
    idle_wait: float = 0.01,
    faults=None,
    observer=None,
    deadline: Deadline | float | None = None,
    resize_schedule: Sequence[tuple[int, int]] = (),
) -> ElasticReport:
    """Form the full constraint system under elastic dispatch.

    Each chunk is formed independently and committed to its own
    ``equations-chunk<NNNNN>.bin`` part file via
    :class:`repro.resilience.atomio.AtomicFile`, so chunk content is a
    pure function of ``(z, voltage, chunk)`` — a churn run and a quiet
    run produce byte-identical part files (``parma chaos --include
    elastic`` and the CI ``elastic`` job assert exactly this).

    ``resize_schedule`` is ``[(after_chunks, new_size), ...]``: once
    ``after_chunks`` completions have been accepted the pool is resized
    to ``new_size``.
    """
    z = np.asarray(z, dtype=np.float64)
    n = z.shape[0]
    out = Path(output_dir)
    out.mkdir(parents=True, exist_ok=True)
    items = make_items(n)
    categories = sorted({it.category for it in items})
    warm_template_cache(n, [(cat,) for cat in categories])
    chunks = plan_chunks(n, chunk_items=chunk_items, items=items)
    ledger = WorkLedger(chunks)

    def runner(chunk: WorkChunk, ctx: WorkerContext) -> tuple[int, float, int]:
        indices = np.arange(chunk.item_lo, chunk.item_hi)
        batches, placement = form_worker_share(n, items, indices, z, voltage)
        sink = AtomicFile(out / f"equations-chunk{chunk.chunk_id:05d}.bin")
        try:
            terms = 0
            checksum = 0.0
            nbytes = 0
            for i in indices:  # original item order: byte-stable output
                cat, pos = placement[int(i)]
                block = batches[cat].block(pos)
                nbytes += write_block_binary(block, sink)
                terms += int(block.num_terms)
                checksum += block.checksum()
                ctx.tick(1)
            sink.commit()
        except BaseException:
            sink.abort()
            raise
        return terms, checksum, nbytes

    pool = ElasticPool(
        workers,
        runner,
        lease_timeout=lease_timeout,
        quarantine_after=quarantine_after,
        term_grace=term_grace,
        idle_wait=idle_wait,
        faults=faults,
        observer=observer,
        deadline=deadline,
    )
    schedule = sorted(
        (int(after), int(size)) for after, size in resize_schedule
    )
    fired = [0]

    def on_chunk(p: ElasticPool, completed: int) -> None:
        while fired[0] < len(schedule) and completed >= schedule[fired[0]][0]:
            p.resize(schedule[fired[0]][1])
            fired[0] += 1

    start = time.perf_counter()
    terms, checksum, nbytes = pool.run(ledger, on_chunk=on_chunk)
    elapsed = time.perf_counter() - start
    part_files = tuple(
        sorted(p.name for p in out.glob("equations-chunk*.bin"))
    )
    return ElasticReport(
        n=n,
        chunks_total=ledger.total,
        chunks_completed=ledger.completed_count,
        terms_formed=terms,
        checksum=checksum,
        bytes_written=nbytes,
        elapsed_seconds=elapsed,
        leases_reassigned=pool.leases_reassigned,
        pool_resizes=pool.pool_resizes,
        quarantined_slots=pool.quarantined_slots,
        workers_spawned=pool.workers_spawned,
        workers_respawned=pool.workers_respawned,
        part_files=part_files,
    )


def part_files_identical(
    dir_a: str | Path, dir_b: str | Path
) -> tuple[bool, str]:
    """Byte-compare the committed chunk part files of two campaigns.

    Only ``equations-chunk*.bin`` files participate — ``*.tmp``
    orphans a killed worker left behind are in-flight garbage by
    contract (:mod:`repro.resilience.atomio`) and never count.
    """
    a, b = Path(dir_a), Path(dir_b)
    names_a = sorted(p.name for p in a.glob("equations-chunk*.bin"))
    names_b = sorted(p.name for p in b.glob("equations-chunk*.bin"))
    if names_a != names_b:
        return False, (
            f"part-file sets differ: {len(names_a)} vs {len(names_b)} files"
        )
    if not names_a:
        return False, "no part files on either side"
    for name in names_a:
        if (a / name).read_bytes() != (b / name).read_bytes():
            return False, f"{name} differs"
    return True, f"{len(names_a)} part files identical"


# -- the simulated strategy x rank sweep --------------------------------------


@dataclass(frozen=True)
class StrategyCurve:
    """One strategy's strong-scaling curve from the simulated clock."""

    strategy: str
    rank_counts: tuple[int, ...]
    total_seconds: tuple[float, ...]
    speedup: tuple[float, ...]
    efficiency: tuple[float, ...]


def scaling_strategy_schedulers(n: int) -> dict[str, Callable]:
    """The paper's four partitioning strategies as simcluster schedulers.

    Each value is a ``scheduler(costs, ranks) -> Assignment`` closure
    over the canonical :func:`repro.core.partition.make_items` order.
    ``category`` needs at least 4 ranks (one per constraint category).
    """
    items = make_items(n)
    cat_codes = [int(it.category) for it in items]
    holes = np.array(
        [hole_of_pair(it.row, it.col, n) for it in items], dtype=np.int64
    )

    def betti_schedule(costs: Sequence[float], ranks: int) -> Assignment:
        costs_arr = np.asarray(costs, dtype=np.float64)
        worker_of = (holes[: len(costs_arr)] % ranks).astype(np.int64)
        loads = np.bincount(worker_of, weights=costs_arr, minlength=ranks)
        return Assignment(
            worker_of=worker_of,
            loads=loads,
            makespan=float(loads.max(initial=0.0)),
        )

    def category(costs: Sequence[float], ranks: int) -> Assignment:
        return category_schedule(costs, cat_codes[: len(costs)], ranks)

    return {
        "contiguous": contiguous_schedule,
        "balanced": lpt_schedule,
        "betti": betti_schedule,
        "category": category,
    }


def sweep_scaling_curves(
    n: int,
    rank_counts: Sequence[int],
    *,
    model: ClusterModel = HPC_FDR,
    sec_per_term: float | None = None,
) -> dict[str, StrategyCurve]:
    """Strategy × rank-count strong-scaling sweep on the simulated clock.

    ``sec_per_term`` defaults to a live calibration on this machine
    (:func:`repro.core.strategies.calibrate_sec_per_term`), so the
    simulated curves are anchored to measured per-term cost — the same
    convention as ``benchmarks/bench_fig10_mpi_scaling.py``.
    """
    if not rank_counts:
        raise ValueError("rank_counts must be non-empty")
    if sec_per_term is None:
        from repro.core.strategies import calibrate_sec_per_term

        sec_per_term = calibrate_sec_per_term(n)
    items = make_items(n)
    costs = np.array([it.cost for it in items], dtype=np.float64)
    costs = costs * float(sec_per_term)
    curves: dict[str, StrategyCurve] = {}
    for name, scheduler in scaling_strategy_schedulers(n).items():
        ranks = [int(r) for r in rank_counts]
        if name == "category":
            ranks = [r for r in ranks if r >= 4]
            if not ranks:
                continue
        points = scaling_sweep(costs, ranks, model, scheduler)
        curves[name] = StrategyCurve(
            strategy=name,
            rank_counts=tuple(ranks),
            total_seconds=tuple(float(p.total) for p in points),
            speedup=tuple(float(s) for s in speedup_curve(points)),
            efficiency=tuple(float(e) for e in parallel_efficiency(points)),
        )
    return curves
