"""A from-scratch re-implementation of the PyMP fork/join model.

The paper parallelizes equation formation with `PyMP
<https://github.com/classner/pymp>`_, an OpenMP-flavoured library in
which a ``with Parallel(k)`` block forks ``k - 1`` child processes
that all execute the block body, share work via ``p.range`` (static
chunking) / ``p.xrange`` (dynamic, shared-counter), and join at block
exit.  PyMP is not installable here, so this module provides the same
surface on plain ``os.fork``:

* **fork at entry** — children inherit every numpy array that existed
  before the block by copy-on-write, so read-mostly inputs cost
  nothing;
* **shared writes** — :func:`shared_array` returns an array backed by
  an anonymous ``MAP_SHARED`` mapping, visible to all region members
  (see also :mod:`repro.parallel.sharedmem` for named segments);
* **join at exit** — children ``os._exit``; the parent reaps them and
  re-raises if any child failed.

Like OpenMP, the block body must be written to be executed by *every*
member.  Nested regions raise (matching PyMP's default).  With
``num_threads=1`` or in an environment that forbids fork, the region
degrades to serial execution of the same code path.
"""

from __future__ import annotations

import mmap
import multiprocessing
import os
import sys
import traceback
from typing import Iterator, Sequence

import numpy as np

_ACTIVE_REGION: "Parallel | None" = None


class ParallelError(RuntimeError):
    """Raised in the parent when a region member fails.

    ``failed_ranks`` / ``exit_codes`` identify which members died and
    how (negative codes are signal numbers, per
    ``os.waitstatus_to_exitcode``), so retry layers can report — and
    chaos tests assert — exactly which worker was lost.
    """

    def __init__(
        self,
        message: str,
        failed_ranks: tuple[int, ...] = (),
        exit_codes: tuple[int, ...] = (),
    ) -> None:
        super().__init__(message)
        self.failed_ranks = tuple(failed_ranks)
        self.exit_codes = tuple(exit_codes)


class Parallel:
    """An OpenMP-style parallel region over forked processes.

    Usage::

        out = shared_array((n,), dtype=np.float64)
        with Parallel(4) as p:
            for i in p.range(n):
                out[i] = expensive(i)

    Attributes inside the block: ``thread_num`` (0 = parent),
    ``num_threads``, ``lock`` (a cross-process mutex).
    """

    def __init__(self, num_threads: int) -> None:
        if num_threads < 1:
            raise ValueError(f"num_threads must be >= 1, got {num_threads}")
        self.num_threads = int(num_threads)
        self.thread_num = 0
        self.lock = multiprocessing.Lock()
        self._counter = multiprocessing.Value("l", 0, lock=True)
        self._children: list[int] = []
        self._entered = False

    # -- region lifecycle --------------------------------------------------

    def __enter__(self) -> "Parallel":
        global _ACTIVE_REGION
        if _ACTIVE_REGION is not None:
            raise ParallelError("nested parallel regions are not supported")
        _ACTIVE_REGION = self
        self._entered = True
        self._counter.value = 0
        for child_rank in range(1, self.num_threads):
            pid = os.fork()
            if pid == 0:
                # Child: adopt rank, forget siblings, run the body.
                self.thread_num = child_rank
                self._children = []
                return self
            self._children.append(pid)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        global _ACTIVE_REGION
        if self.thread_num != 0:
            # Child: report failure via exit status, never unwind into
            # the parent's stack (we share its code and fds).
            code = 0
            if exc_type is not None:
                traceback.print_exception(exc_type, exc, tb, file=sys.stderr)
                code = 1
            sys.stderr.flush()
            sys.stdout.flush()
            os._exit(code)
        # Parent: reap children, then clear the region.  Child pids
        # were appended in rank order 1..k, so rank = index + 1.
        failures: list[tuple[int, int]] = []
        for rank_minus_1, pid in enumerate(self._children):
            _, status = os.waitpid(pid, 0)
            code = os.waitstatus_to_exitcode(status)
            if code != 0:
                failures.append((rank_minus_1 + 1, code))
        self._children = []
        _ACTIVE_REGION = None
        self._entered = False
        if exc_type is not None:
            return False  # propagate the parent's own exception
        if failures:
            ranks = tuple(rank for rank, _ in failures)
            codes = tuple(code for _, code in failures)
            raise ParallelError(
                f"{len(failures)} region member(s) failed "
                f"(ranks {ranks}); see stderr",
                failed_ranks=ranks,
                exit_codes=codes,
            )
        return False

    # -- work sharing --------------------------------------------------------

    def range(self, *args: int) -> Iterator[int]:
        """Statically chunked indices, OpenMP ``schedule(static)``.

        ``p.range(stop)`` or ``p.range(start, stop[, step])``.  Member
        ``t`` gets indices ``start + (t + r*num_threads)*step`` —
        round-robin striding, which balances cost gradients across
        members better than contiguous blocks.
        """
        start, stop, step = _parse_range(args)
        self._require_entered()
        return iter(range(start + self.thread_num * step, stop, step * self.num_threads))

    def block_range(self, *args: int) -> Iterator[int]:
        """Statically chunked indices in contiguous blocks.

        The chunking used by the paper's *Parallel* baseline: member
        ``t`` owns one contiguous slice.  Exposes imbalance when costs
        are skewed — which is the point of the Balanced/PyMP variants.
        """
        start, stop, step = _parse_range(args)
        self._require_entered()
        indices = range(start, stop, step)
        n = len(indices)
        per, extra = divmod(n, self.num_threads)
        lo = self.thread_num * per + min(self.thread_num, extra)
        hi = lo + per + (1 if self.thread_num < extra else 0)
        return iter(indices[lo:hi])

    def xrange(self, *args: int) -> Iterator[int]:
        """Dynamically scheduled indices, OpenMP ``schedule(dynamic)``.

        Members pull the next index from a shared atomic counter, so
        fast members automatically take more work (PyMP's ``xrange``).
        """
        start, stop, step = _parse_range(args)
        self._require_entered()
        indices = range(start, stop, step)

        def _gen() -> Iterator[int]:
            while True:
                with self._counter.get_lock():
                    k = self._counter.value
                    self._counter.value = k + 1
                if k >= len(indices):
                    return
                yield indices[k]

        return _gen()

    def iterate(self, items: Sequence) -> Iterator:
        """Static round-robin over an arbitrary sequence."""
        for i in self.range(len(items)):
            yield items[i]

    def _require_entered(self) -> None:
        if not self._entered:
            raise ParallelError("work-sharing outside an active region")

    def __repr__(self) -> str:
        return (
            f"Parallel(num_threads={self.num_threads}, "
            f"thread_num={self.thread_num})"
        )


def _parse_range(args: tuple[int, ...]) -> tuple[int, int, int]:
    if len(args) == 1:
        return 0, int(args[0]), 1
    if len(args) == 2:
        return int(args[0]), int(args[1]), 1
    if len(args) == 3:
        start, stop, step = map(int, args)
        if step <= 0:
            raise ValueError("step must be positive")
        return start, stop, step
    raise TypeError(f"range expects 1-3 integer arguments, got {len(args)}")


def shared_array(
    shape: Sequence[int], dtype: np.dtype | str = np.float64
) -> np.ndarray:
    """A numpy array in anonymous shared memory (PyMP's ``shared.array``).

    Backed by ``MAP_SHARED | MAP_ANONYMOUS``, so any process forked
    *after* creation sees the same physical pages: writes by region
    members are visible to the parent with zero copies.  The mapping
    lives as long as the returned array does.
    """
    shape = tuple(int(s) for s in shape)
    dtype = np.dtype(dtype)
    nbytes = max(1, int(np.prod(shape)) * dtype.itemsize)
    buf = mmap.mmap(-1, nbytes)
    arr = np.frombuffer(buf, dtype=dtype, count=int(np.prod(shape))).reshape(shape)
    arr.fill(0)
    return arr


def fork_available() -> bool:
    """Whether os.fork is usable on this platform."""
    return hasattr(os, "fork")
