"""A from-scratch re-implementation of the PyMP fork/join model.

The paper parallelizes equation formation with `PyMP
<https://github.com/classner/pymp>`_, an OpenMP-flavoured library in
which a ``with Parallel(k)`` block forks ``k - 1`` child processes
that all execute the block body, share work via ``p.range`` (static
chunking) / ``p.xrange`` (dynamic, shared-counter), and join at block
exit.  PyMP is not installable here, so this module provides the same
surface on plain ``os.fork``:

* **fork at entry** — children inherit every numpy array that existed
  before the block by copy-on-write, so read-mostly inputs cost
  nothing;
* **shared writes** — :func:`shared_array` returns an array backed by
  an anonymous ``MAP_SHARED`` mapping, visible to all region members
  (see also :mod:`repro.parallel.sharedmem` for named segments);
* **join at exit** — children ``os._exit``; the parent reaps them and
  re-raises if any child failed.

Like OpenMP, the block body must be written to be executed by *every*
member.  Nested regions raise (matching PyMP's default).  With
``num_threads=1`` or in an environment that forbids fork, the region
degrades to serial execution of the same code path.
"""

from __future__ import annotations

import mmap
import multiprocessing
import os
import sys
import time
import traceback
from typing import Iterator, Sequence

import numpy as np

_ACTIVE_REGION: "Parallel | None" = None

#: Reap-poll sleep bounds for the non-blocking join (seconds).  The
#: poll starts short (children usually finish just after the parent)
#: and backs off so a long-running region does not busy-wait.
_REAP_SLEEP_MIN = 0.001
_REAP_SLEEP_MAX = 0.05


class ParallelError(RuntimeError):
    """Raised in the parent when a region member fails.

    ``failed_ranks`` / ``exit_codes`` identify which members died and
    how (negative codes are signal numbers, per
    ``os.waitstatus_to_exitcode``), so retry layers can report — and
    chaos tests assert — exactly which worker was lost.
    """

    def __init__(
        self,
        message: str,
        failed_ranks: tuple[int, ...] = (),
        exit_codes: tuple[int, ...] = (),
    ) -> None:
        super().__init__(message)
        self.failed_ranks = tuple(failed_ranks)
        self.exit_codes = tuple(exit_codes)


class WorkerStalled(ParallelError):
    """A region member stopped heartbeating and was killed.

    Raised by a supervised join (see
    :class:`repro.resilience.supervise.Supervisor`).  On top of the
    :class:`ParallelError` rank/exit-code diagnostics,
    ``last_progress`` maps each watchdog-killed rank to its final
    heartbeat snapshot (items done, heartbeat age), so traces and
    salvage reports show exactly where the worker froze.
    """

    def __init__(
        self,
        message: str,
        failed_ranks: tuple[int, ...] = (),
        exit_codes: tuple[int, ...] = (),
        last_progress: dict | None = None,
    ) -> None:
        super().__init__(message, failed_ranks, exit_codes)
        self.last_progress = dict(last_progress or {})


class Parallel:
    """An OpenMP-style parallel region over forked processes.

    Usage::

        out = shared_array((n,), dtype=np.float64)
        with Parallel(4) as p:
            for i in p.range(n):
                out[i] = expensive(i)

    Attributes inside the block: ``thread_num`` (0 = parent),
    ``num_threads``, ``lock`` (a cross-process mutex).
    """

    def __init__(self, num_threads: int, supervisor=None) -> None:
        if num_threads < 1:
            raise ValueError(f"num_threads must be >= 1, got {num_threads}")
        self.num_threads = int(num_threads)
        self.thread_num = 0
        self.lock = multiprocessing.Lock()
        self._counter = multiprocessing.Value("l", 0, lock=True)
        self._children: list[int] = []
        self._entered = False
        # Duck-typed repro.resilience.supervise.Supervisor (kept loose
        # so this module never imports the resilience layer).  When
        # set, work-sharing iterators heartbeat per pulled item and the
        # join is the supervisor's watchdog loop instead of the plain
        # WNOHANG sweep.
        self._supervisor = supervisor

    # -- region lifecycle --------------------------------------------------

    def __enter__(self) -> "Parallel":
        global _ACTIVE_REGION
        if _ACTIVE_REGION is not None:
            raise ParallelError("nested parallel regions are not supported")
        _ACTIVE_REGION = self
        self._entered = True
        self._counter.value = 0
        sup = self._supervisor
        if sup is not None and not sup.region_armed_for(self.num_threads):
            # The heartbeat board is shared memory, so it must exist
            # before the first fork.
            sup.begin_region(self.num_threads)
        for child_rank in range(1, self.num_threads):
            pid = os.fork()
            if pid == 0:
                # Child: adopt rank, forget siblings, run the body.
                self.thread_num = child_rank
                self._children = []
                return self
            self._children.append(pid)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        global _ACTIVE_REGION
        if self.thread_num != 0:
            # Child: report failure via exit status, never unwind into
            # the parent's stack (we share its code and fds).
            code = 0
            if exc_type is not None:
                traceback.print_exception(exc_type, exc, tb, file=sys.stderr)
                code = 1
            elif self._supervisor is not None:
                self._supervisor.mark_done(self.thread_num)
            sys.stderr.flush()
            sys.stdout.flush()
            os._exit(code)
        # Parent: reap children, then clear the region.  Child pids
        # were appended in rank order 1..k, so rank = index + 1.
        stalled: dict = {}
        try:
            if self._supervisor is not None:
                self._supervisor.mark_done(0)
                failures, stalled = self._supervisor.reap_region(
                    self._children, parent_failed=exc_type is not None
                )
            else:
                failures = self._reap_nonblocking()
        finally:
            self._children = []
            _ACTIVE_REGION = None
            self._entered = False
        if exc_type is not None:
            return False  # propagate the parent's own exception
        if failures:
            ranks = tuple(rank for rank, _ in failures)
            codes = tuple(code for _, code in failures)
            message = (
                f"{len(failures)} region member(s) failed "
                f"(ranks {ranks}, exit codes {codes}); see stderr"
            )
            if stalled:
                raise WorkerStalled(
                    message
                    + f"; rank(s) {tuple(sorted(stalled))} killed by "
                    "the heartbeat watchdog",
                    failed_ranks=ranks,
                    exit_codes=codes,
                    last_progress=stalled,
                )
            raise ParallelError(message, failed_ranks=ranks, exit_codes=codes)
        return False

    def _reap_nonblocking(self) -> list[tuple[int, int]]:
        """Reap children in *completion* order (WNOHANG + backoff poll).

        The original join waited for rank 1, then rank 2, ... with
        blocking ``waitpid``: a hung rank 1 masked rank 3's crash
        diagnostics forever.  Failures are returned sorted by rank so
        ``failed_ranks``/``exit_codes`` ordering stays stable for
        callers regardless of which child exited first.
        """
        pending = {rank + 1: pid for rank, pid in enumerate(self._children)}
        failures: list[tuple[int, int]] = []
        sleep = _REAP_SLEEP_MIN
        while pending:
            progressed = False
            for rank in sorted(pending):
                try:
                    wpid, status = os.waitpid(pending[rank], os.WNOHANG)
                except ChildProcessError:  # pragma: no cover - stolen reap
                    pending.pop(rank)
                    progressed = True
                    continue
                if wpid == 0:
                    continue
                pending.pop(rank)
                progressed = True
                code = os.waitstatus_to_exitcode(status)
                if code != 0:
                    failures.append((rank, code))
            if progressed:
                sleep = _REAP_SLEEP_MIN
            elif pending:
                time.sleep(sleep)
                sleep = min(sleep * 2, _REAP_SLEEP_MAX)
        failures.sort(key=lambda rc: rc[0])
        return failures

    # -- work sharing --------------------------------------------------------

    def range(self, *args: int) -> Iterator[int]:
        """Statically chunked indices, OpenMP ``schedule(static)``.

        ``p.range(stop)`` or ``p.range(start, stop[, step])``.  Member
        ``t`` gets indices ``start + (t + r*num_threads)*step`` —
        round-robin striding, which balances cost gradients across
        members better than contiguous blocks.
        """
        start, stop, step = _parse_range(args)
        self._require_entered()
        return self._ticked(
            range(start + self.thread_num * step, stop, step * self.num_threads)
        )

    def block_range(self, *args: int) -> Iterator[int]:
        """Statically chunked indices in contiguous blocks.

        The chunking used by the paper's *Parallel* baseline: member
        ``t`` owns one contiguous slice.  Exposes imbalance when costs
        are skewed — which is the point of the Balanced/PyMP variants.
        """
        start, stop, step = _parse_range(args)
        self._require_entered()
        indices = range(start, stop, step)
        n = len(indices)
        per, extra = divmod(n, self.num_threads)
        lo = self.thread_num * per + min(self.thread_num, extra)
        hi = lo + per + (1 if self.thread_num < extra else 0)
        return self._ticked(indices[lo:hi])

    def xrange(self, *args: int) -> Iterator[int]:
        """Dynamically scheduled indices, OpenMP ``schedule(dynamic)``.

        Members pull the next index from a shared atomic counter, so
        fast members automatically take more work (PyMP's ``xrange``).
        """
        start, stop, step = _parse_range(args)
        self._require_entered()
        indices = range(start, stop, step)

        def _gen() -> Iterator[int]:
            while True:
                with self._counter.get_lock():
                    k = self._counter.value
                    self._counter.value = k + 1
                if k >= len(indices):
                    return
                yield indices[k]

        return self._ticked(_gen())

    def iterate(self, items: Sequence) -> Iterator:
        """Static round-robin over an arbitrary sequence."""
        for i in self.range(len(items)):
            yield items[i]

    def _ticked(self, it) -> Iterator[int]:
        """Heartbeat once per pulled item when a supervisor is attached."""
        sup = self._supervisor
        if sup is None:
            return iter(it)

        def _gen() -> Iterator[int]:
            me = self.thread_num
            for item in it:
                sup.tick(me)
                yield item

        return _gen()

    def _require_entered(self) -> None:
        if not self._entered:
            raise ParallelError("work-sharing outside an active region")

    def __repr__(self) -> str:
        return (
            f"Parallel(num_threads={self.num_threads}, "
            f"thread_num={self.thread_num})"
        )


def _parse_range(args: tuple[int, ...]) -> tuple[int, int, int]:
    if len(args) == 1:
        return 0, int(args[0]), 1
    if len(args) == 2:
        return int(args[0]), int(args[1]), 1
    if len(args) == 3:
        start, stop, step = map(int, args)
        if step <= 0:
            raise ValueError("step must be positive")
        return start, stop, step
    raise TypeError(f"range expects 1-3 integer arguments, got {len(args)}")


def shared_array(
    shape: Sequence[int], dtype: np.dtype | str = np.float64
) -> np.ndarray:
    """A numpy array in anonymous shared memory (PyMP's ``shared.array``).

    Backed by ``MAP_SHARED | MAP_ANONYMOUS``, so any process forked
    *after* creation sees the same physical pages: writes by region
    members are visible to the parent with zero copies.  The mapping
    lives as long as the returned array does.
    """
    shape = tuple(int(s) for s in shape)
    dtype = np.dtype(dtype)
    nbytes = max(1, int(np.prod(shape)) * dtype.itemsize)
    buf = mmap.mmap(-1, nbytes)
    arr = np.frombuffer(buf, dtype=dtype, count=int(np.prod(shape))).reshape(shape)
    arr.fill(0)
    return arr


def fork_available() -> bool:
    """Whether os.fork is usable on this platform."""
    return hasattr(os, "fork")
