"""Parallel-execution substrate.

* :mod:`repro.parallel.pymp` — OpenMP-style fork/join regions (a
  re-implementation of the PyMP API the paper uses).
* :mod:`repro.parallel.sharedmem` — named shared-memory numpy arrays.
* :mod:`repro.parallel.workstealing` — deterministic balanced
  scheduling (§IV-C.1) plus a runtime-stealing simulator.
* :mod:`repro.parallel.mpi` — an mpi4py-like message-passing runtime
  over forked processes.
* :mod:`repro.parallel.simcluster` — the deterministic LogGP-style
  cluster clock behind the 1,024-core scaling figures (see DESIGN.md
  §2 for why scaling is simulated on this machine).
* :mod:`repro.parallel.elastic` — churn-tolerant campaign dispatch:
  lease-based work chunks, a grow/shrink-able forked pool, and the
  strategy × rank scaling sweep behind ``BENCH_scaling.json``.

``elastic`` sits *above* the resilience layer (it uses the growable
``HeartbeatBoard`` and fault injection), so its names are exported
lazily — importing :mod:`repro.parallel` alone never pulls it in.
"""

from repro.parallel.heterogeneous import (
    HeterogeneousCluster,
    lpt_schedule_speeds,
)
from repro.parallel.mpi import ANY_TAG, Comm, MPIError, run_mpi
from repro.parallel.pymp import Parallel, ParallelError, shared_array
from repro.parallel.sharedmem import SharedArray, shared_zeros
from repro.parallel.simcluster import (
    HPC_FDR,
    Z820_SMP,
    ClusterModel,
    ScalingPoint,
    amdahl_bound,
    crossover_rank,
    scaling_sweep,
    simulate_strong_scaling,
    speedup_curve,
)
from repro.parallel.workstealing import (
    Assignment,
    StealingTrace,
    category_schedule,
    contiguous_schedule,
    lpt_schedule,
    simulate_runtime_stealing,
)

# Lazily exported from repro.parallel.elastic (PEP 562): the module
# imports repro.resilience.supervise, which imports this package —
# eager import here would deadlock that cycle at startup.
_ELASTIC_EXPORTS = frozenset(
    {
        "ElasticError",
        "ElasticPool",
        "ElasticReport",
        "LeaseVerificationError",
        "StrategyCurve",
        "WorkChunk",
        "WorkLedger",
        "WorkerContext",
        "part_files_identical",
        "plan_chunks",
        "run_elastic_formation",
        "scaling_strategy_schedulers",
        "sweep_scaling_curves",
    }
)

__all__ = [
    "ANY_TAG",
    "HeterogeneousCluster",
    "lpt_schedule_speeds",
    "Assignment",
    "ClusterModel",
    "Comm",
    "HPC_FDR",
    "MPIError",
    "Parallel",
    "ParallelError",
    "ScalingPoint",
    "SharedArray",
    "StealingTrace",
    "Z820_SMP",
    "amdahl_bound",
    "category_schedule",
    "contiguous_schedule",
    "crossover_rank",
    "lpt_schedule",
    "run_mpi",
    "scaling_sweep",
    "shared_array",
    "shared_zeros",
    "simulate_runtime_stealing",
    "simulate_strong_scaling",
    "speedup_curve",
    *sorted(_ELASTIC_EXPORTS),
]


def __getattr__(name: str):
    if name in _ELASTIC_EXPORTS:
        from repro.parallel import elastic

        value = getattr(elastic, name)
        globals()[name] = value  # cache for the next access
        return value
    raise AttributeError(
        f"module 'repro.parallel' has no attribute {name!r}"
    )
