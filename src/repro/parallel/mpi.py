"""A small message-passing runtime with an mpi4py-like surface.

The paper's largest experiments run Parma over MPI (mpi4py + mpich).
Neither is installable here, so this module provides a functional
stand-in for the subset the Parma decomposition needs: SPMD rank
programs, point-to-point ``send``/``recv``, and the collectives
``Bcast``/``Scatter``/``Gather``/``Allreduce``/``Barrier``/
``allgather``, all over a full mesh of socketpairs between forked
local processes.

Semantics follow mpi4py's tutorial conventions (see the bundled HPC
guide): lowercase methods pickle arbitrary objects; uppercase methods
move numpy arrays (here also via pickle — correctness, not zero-copy,
is the goal, since *performance* at scale is measured by the
deterministic model in :mod:`repro.parallel.simcluster`).

Usage::

    def program(comm):
        rank, size = comm.Get_rank(), comm.Get_size()
        data = comm.bcast({"n": 40} if rank == 0 else None, root=0)
        part = compute(rank, size, data)
        return comm.gather(part, root=0)

    results = run_mpi(program, size=4)   # per-rank return values

Real concurrency is bounded by the machine (1 core here ⇒ interleaved
execution), but message semantics, deadlocks, and decomposition
correctness are all real.
"""

from __future__ import annotations

import os
import pickle
import signal
import socket
import struct
import sys
import time
import traceback
from typing import Any, Callable, Sequence

import numpy as np

_LEN = struct.Struct("!Q")

#: Wildcard tag for :meth:`Comm.recv`.
ANY_TAG = -1


class MPIError(RuntimeError):
    """Raised for invalid communicator usage or failed ranks."""


class MPITimeout(MPIError):
    """The launcher's timeout expired before every rank reported.

    All remaining ranks were killed (SIGTERM → SIGKILL) and reaped
    before this is raised — an expired launch never leaves orphans.
    """


class Comm:
    """Communicator of one rank over a socket full mesh."""

    def __init__(self, rank: int, size: int, peers: dict[int, socket.socket]) -> None:
        self._rank = rank
        self._size = size
        self._peers = peers
        # Out-of-order delivery buffer: peer -> list[(tag, payload)].
        self._pending: dict[int, list[tuple[int, Any]]] = {p: [] for p in peers}

    def Get_rank(self) -> int:
        return self._rank

    def Get_size(self) -> int:
        return self._size

    # -- point to point -----------------------------------------------------

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        if dest == self._rank:
            raise MPIError("send to self is not supported")
        sock = self._sock(dest)
        payload = pickle.dumps((tag, obj), protocol=pickle.HIGHEST_PROTOCOL)
        sock.sendall(_LEN.pack(len(payload)) + payload)

    def recv(self, source: int, tag: int = ANY_TAG) -> Any:
        buf = self._pending[self._sock_key(source)]
        for i, (mtag, obj) in enumerate(buf):
            if tag in (ANY_TAG, mtag):
                buf.pop(i)
                return obj
        sock = self._sock(source)
        while True:
            mtag, obj = self._read_message(sock)
            if tag in (ANY_TAG, mtag):
                return obj
            buf.append((mtag, obj))

    def Send(self, array: np.ndarray, dest: int, tag: int = 0) -> None:
        """Buffer-style send of a numpy array."""
        self.send(np.ascontiguousarray(array), dest, tag)

    def Recv(self, array: np.ndarray, source: int, tag: int = ANY_TAG) -> None:
        """Buffer-style receive *into* ``array`` (shape/dtype must match)."""
        got = self.recv(source, tag)
        got = np.asarray(got)
        if got.shape != array.shape or got.dtype != array.dtype:
            raise MPIError(
                f"Recv buffer mismatch: got {got.dtype}{got.shape}, "
                f"buffer is {array.dtype}{array.shape}"
            )
        array[...] = got

    # -- collectives -----------------------------------------------------------

    def barrier(self) -> None:
        """Two-phase flush through rank 0."""
        if self._rank == 0:
            for r in range(1, self._size):
                self.recv(r, tag=_TAG_BARRIER)
            for r in range(1, self._size):
                self.send(None, r, tag=_TAG_BARRIER)
        else:
            self.send(None, 0, tag=_TAG_BARRIER)
            self.recv(0, tag=_TAG_BARRIER)

    Barrier = barrier

    def bcast(self, obj: Any, root: int = 0) -> Any:
        if self._rank == root:
            for r in range(self._size):
                if r != root:
                    self.send(obj, r, tag=_TAG_COLL)
            return obj
        return self.recv(root, tag=_TAG_COLL)

    def Bcast(self, array: np.ndarray, root: int = 0) -> None:
        """In-place broadcast of a numpy buffer."""
        if self._rank == root:
            self.bcast(np.ascontiguousarray(array), root=root)
        else:
            got = np.asarray(self.bcast(None, root=root))
            if got.shape != array.shape or got.dtype != array.dtype:
                raise MPIError("Bcast buffer mismatch")
            array[...] = got

    def scatter(self, chunks: Sequence[Any] | None, root: int = 0) -> Any:
        if self._rank == root:
            if chunks is None or len(chunks) != self._size:
                raise MPIError(
                    f"scatter needs exactly {self._size} chunks at the root"
                )
            for r in range(self._size):
                if r != root:
                    self.send(chunks[r], r, tag=_TAG_COLL)
            return chunks[root]
        return self.recv(root, tag=_TAG_COLL)

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        if self._rank == root:
            out: list[Any] = [None] * self._size
            out[root] = obj
            for r in range(self._size):
                if r != root:
                    out[r] = self.recv(r, tag=_TAG_COLL)
            return out
        self.send(obj, root, tag=_TAG_COLL)
        return None

    def allgather(self, obj: Any) -> list[Any]:
        gathered = self.gather(obj, root=0)
        return self.bcast(gathered, root=0)

    def reduce(
        self, obj: Any, op: Callable[[Any, Any], Any] = np.add, root: int = 0
    ) -> Any | None:
        gathered = self.gather(obj, root=root)
        if self._rank != root:
            return None
        acc = gathered[0]
        for item in gathered[1:]:
            acc = op(acc, item)
        return acc

    def allreduce(self, obj: Any, op: Callable[[Any, Any], Any] = np.add) -> Any:
        return self.bcast(self.reduce(obj, op=op, root=0), root=0)

    def Allreduce(
        self,
        sendbuf: np.ndarray,
        recvbuf: np.ndarray,
        op: Callable[[Any, Any], Any] = np.add,
    ) -> None:
        result = np.asarray(self.allreduce(np.ascontiguousarray(sendbuf), op=op))
        if result.shape != recvbuf.shape or result.dtype != recvbuf.dtype:
            raise MPIError("Allreduce buffer mismatch")
        recvbuf[...] = result

    # -- internals ----------------------------------------------------------

    def _sock_key(self, peer: int) -> int:
        if peer == self._rank or not 0 <= peer < self._size:
            raise MPIError(f"invalid peer rank {peer} (self={self._rank})")
        return peer

    def _sock(self, peer: int) -> socket.socket:
        return self._peers[self._sock_key(peer)]

    @staticmethod
    def _read_message(sock: socket.socket) -> tuple[int, Any]:
        header = _recv_exact(sock, _LEN.size)
        (length,) = _LEN.unpack(header)
        return pickle.loads(_recv_exact(sock, length))

    def close(self) -> None:
        for sock in self._peers.values():
            try:
                sock.close()
            except OSError:  # pragma: no cover
                pass


_TAG_COLL = -1001
_TAG_BARRIER = -1002


def _recv_exact(sock: socket.socket, nbytes: int) -> bytes:
    chunks = []
    got = 0
    while got < nbytes:
        chunk = sock.recv(min(1 << 20, nbytes - got))
        if not chunk:
            raise MPIError("peer closed connection mid-message")
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def run_mpi(
    program: Callable[..., Any],
    size: int,
    args: tuple = (),
    timeout: float | None = None,
) -> list[Any]:
    """Run ``program(comm, *args)`` on ``size`` forked ranks.

    Returns the per-rank return values (pickled back to the caller).
    Raises :class:`MPIError` if any rank raised; rank tracebacks go to
    stderr.  The caller process is the launcher, not a rank.

    ``timeout`` bounds the whole launch in wall-clock seconds (also
    accepts any object with a ``remaining()`` method, e.g. a
    :class:`repro.resilience.supervise.Deadline`).  When it expires,
    every still-running rank is killed (SIGTERM, then SIGKILL after a
    short grace), all children are reaped, and :class:`MPITimeout`
    is raised — no orphan rank processes survive the call.
    """
    if size < 1:
        raise ValueError("size must be >= 1")
    t_end = None
    if timeout is not None:
        seconds = (
            timeout.remaining()
            if hasattr(timeout, "remaining")
            else float(timeout)
        )
        t_end = time.monotonic() + max(0.0, seconds)
    # Full mesh of socketpairs, created before forking.
    mesh: dict[tuple[int, int], tuple[socket.socket, socket.socket]] = {}
    for a in range(size):
        for b in range(a + 1, size):
            mesh[(a, b)] = socket.socketpair()
    # One result pipe per rank.
    result_pipes = [socket.socketpair() for _ in range(size)]

    pids = []
    for rank in range(size):
        pid = os.fork()
        if pid == 0:
            code = 1
            try:
                peers: dict[int, socket.socket] = {}
                for (a, b), (sa, sb) in mesh.items():
                    if a == rank:
                        peers[b] = sa
                        sb.close()
                    elif b == rank:
                        peers[a] = sb
                        sa.close()
                    else:
                        sa.close()
                        sb.close()
                for r, (pr, pw) in enumerate(result_pipes):
                    if r != rank:
                        pr.close()
                        pw.close()
                result_pipes[rank][0].close()
                comm = Comm(rank, size, peers)
                value = program(comm, *args)
                payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
                wsock = result_pipes[rank][1]
                wsock.sendall(_LEN.pack(len(payload)) + payload)
                wsock.close()
                comm.close()
                code = 0
            except BaseException:
                traceback.print_exc(file=sys.stderr)
                sys.stderr.flush()
            finally:
                sys.stdout.flush()
                os._exit(code)
        pids.append(pid)

    # Launcher: close child ends, read results, reap.
    for (sa, sb) in mesh.values():
        sa.close()
        sb.close()
    results: list[Any] = [None] * size
    errors: list[int] = []
    timed_out: list[int] = []
    for rank, (pr, pw) in enumerate(result_pipes):
        pw.close()
    for rank, (pr, _) in enumerate(result_pipes):
        try:
            if t_end is not None:
                remaining = t_end - time.monotonic()
                if remaining <= 0 or timed_out:
                    timed_out.append(rank)
                    continue
                pr.settimeout(remaining)
            header = _recv_exact(pr, _LEN.size)
            (length,) = _LEN.unpack(header)
            results[rank] = pickle.loads(_recv_exact(pr, length))
        except (TimeoutError, socket.timeout):
            timed_out.append(rank)
        except (MPIError, OSError):
            errors.append(rank)
        finally:
            pr.close()
    if timed_out:
        _kill_ranks(pids)
    for rank, pid in enumerate(pids):
        _, status = os.waitpid(pid, 0)
        if (
            os.waitstatus_to_exitcode(status) != 0
            and rank not in errors
            and rank not in timed_out
        ):
            errors.append(rank)
    if timed_out:
        raise MPITimeout(
            f"MPI launch timed out waiting for rank(s) {sorted(timed_out)}; "
            "all ranks killed and reaped"
        )
    if errors:
        raise MPIError(f"rank(s) {sorted(errors)} failed; see stderr")
    return results


def _kill_ranks(pids: list[int], term_grace: float = 0.5) -> None:
    """SIGTERM every pid, then SIGKILL after a grace period.

    Deliberately does *not* reap: the caller's blocking ``waitpid``
    sweep owns that, and a SIGKILL'd child is guaranteed to exit, so
    that sweep terminates promptly.
    """
    for pid in pids:
        try:
            os.kill(pid, signal.SIGTERM)
        except ProcessLookupError:
            pass
    time.sleep(term_grace)
    for pid in pids:
        try:
            os.kill(pid, signal.SIGKILL)
        except ProcessLookupError:
            pass
