"""Shared-memory NumPy arrays for fork-based parallel regions.

The PyMP-style regions in :mod:`repro.parallel.pymp` fork the current
process; children must write results somewhere the parent can see.
:class:`SharedArray` wraps :class:`multiprocessing.shared_memory.
SharedMemory` with numpy views and with the create/attach/unlink
lifecycle handled: the creating process owns the segment and unlinks it
on close, forked children inherit the mapping for free (fork keeps the
file descriptor and mapping), and unrelated processes can attach by
name.

Following the HPC guides, views are used throughout — a
:class:`SharedArray` hands out *the same* buffer to every process, so
a worker writing its slice performs zero copies.
"""

from __future__ import annotations

from multiprocessing import shared_memory
from typing import Sequence

import numpy as np


class SharedArray:
    """A numpy array backed by a named shared-memory segment.

    Create with :meth:`create` (owner) or :meth:`attach` (other
    processes).  ``arr`` is the live numpy view.  The owner should call
    :meth:`close` (or use the instance as a context manager) when done;
    non-owners just drop their reference or call :meth:`close`.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        shape: tuple[int, ...],
        dtype: np.dtype,
        owner: bool,
    ) -> None:
        self._shm = shm
        self._owner = owner
        self.shape = shape
        self.dtype = np.dtype(dtype)
        self.arr: np.ndarray = np.ndarray(shape, dtype=self.dtype, buffer=shm.buf)

    # -- lifecycle ---------------------------------------------------------

    @classmethod
    def create(
        cls, shape: Sequence[int], dtype: np.dtype | str = np.float64
    ) -> "SharedArray":
        shape = tuple(int(s) for s in shape)
        dtype = np.dtype(dtype)
        nbytes = max(1, int(np.prod(shape)) * dtype.itemsize)
        shm = shared_memory.SharedMemory(create=True, size=nbytes)
        out = cls(shm, shape, dtype, owner=True)
        out.arr.fill(0)
        return out

    @classmethod
    def attach(
        cls, name: str, shape: Sequence[int], dtype: np.dtype | str
    ) -> "SharedArray":
        shm = shared_memory.SharedMemory(name=name)
        return cls(shm, tuple(int(s) for s in shape), np.dtype(dtype), owner=False)

    @classmethod
    def from_array(cls, source: np.ndarray) -> "SharedArray":
        """Create a segment initialised with a copy of ``source``."""
        out = cls.create(source.shape, source.dtype)
        out.arr[...] = source
        return out

    @property
    def name(self) -> str:
        return self._shm.name

    def close(self) -> None:
        """Release the mapping; the owner also unlinks the segment."""
        # Drop the numpy view first: SharedMemory.close() invalidates
        # the buffer, and an outstanding view would raise BufferError.
        self.arr = None  # type: ignore[assignment]
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - platform dependent
            pass
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __enter__(self) -> "SharedArray":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"SharedArray(name={self._shm.name!r}, shape={self.shape}, "
            f"dtype={self.dtype}, owner={self._owner})"
        )


def shared_zeros(shape: Sequence[int], dtype: np.dtype | str = np.float64) -> SharedArray:
    """Convenience alias for :meth:`SharedArray.create`."""
    return SharedArray.create(shape, dtype)
