"""Heterogeneous-cluster scheduling and simulation (paper §VII).

The paper's first future-work item is extending Parma to "a cluster of
heterogeneous nodes".  This module does that for the scheduling layer:

* :func:`lpt_schedule_speeds` — speed-aware LPT: tasks go to the
  worker that would *finish them earliest* given per-worker speed
  factors (the natural generalization of the deterministic plan of
  §IV-C.1; for uniform speeds it reduces exactly to
  :func:`~repro.parallel.workstealing.lpt_schedule`);
* :class:`HeterogeneousCluster` — a rank pool with mixed speed
  classes (e.g. old 2.0 GHz nodes next to new 3.5 GHz ones), strong-
  scaling simulation on it, and the *naive-vs-aware* comparison that
  quantifies what speed-blind scheduling loses.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.parallel.simcluster import ClusterModel
from repro.parallel.workstealing import Assignment
from repro.utils.validation import require_positive


def lpt_schedule_speeds(
    costs: Sequence[float], speeds: Sequence[float]
) -> Assignment:
    """Speed-aware deterministic LPT over heterogeneous workers.

    ``speeds[w]`` is worker w's relative throughput (1.0 = reference).
    Tasks are taken in decreasing cost order; each goes to the worker
    whose current finish time *plus this task's scaled cost* is
    smallest (ties: lower worker index).  Loads are reported in
    reference-time units (wall-clock on that worker).
    """
    costs_arr = np.asarray(costs, dtype=np.float64)
    speeds_arr = np.asarray(speeds, dtype=np.float64)
    if np.any(costs_arr < 0):
        raise ValueError("task costs must be non-negative")
    if len(speeds_arr) < 1 or np.any(speeds_arr <= 0):
        raise ValueError("speeds must be positive and non-empty")
    workers = len(speeds_arr)
    worker_of = np.empty(len(costs_arr), dtype=np.int64)
    finish = np.zeros(workers, dtype=np.float64)
    order = np.argsort(-costs_arr, kind="stable")
    for task in order:
        candidate_finish = finish + costs_arr[task] / speeds_arr
        w = int(np.argmin(candidate_finish))
        worker_of[task] = w
        finish[w] = candidate_finish[w]
    return Assignment(
        worker_of=worker_of,
        loads=finish,
        makespan=float(finish.max(initial=0.0)),
    )


def blind_schedule_speeds(
    costs: Sequence[float], speeds: Sequence[float]
) -> Assignment:
    """Speed-*blind* LPT executed on heterogeneous workers.

    The plan assumes uniform workers (classic LPT by load), then the
    wall-clock is what the mixed-speed machines actually deliver — the
    baseline a heterogeneity-aware planner is judged against.
    """
    from repro.parallel.workstealing import lpt_schedule

    speeds_arr = np.asarray(speeds, dtype=np.float64)
    plan = lpt_schedule(costs, len(speeds_arr))
    finish = plan.loads / speeds_arr
    return Assignment(
        worker_of=plan.worker_of,
        loads=finish,
        makespan=float(finish.max(initial=0.0)),
    )


@dataclass(frozen=True)
class HeterogeneousCluster:
    """A pool of ranks drawn from named speed classes.

    ``classes`` maps a label to ``(count, speed)``; e.g.
    ``{"old": (16, 1.0), "new": (16, 1.8)}``.
    """

    classes: dict[str, tuple[int, float]]
    model: ClusterModel

    def __post_init__(self) -> None:
        if not self.classes:
            raise ValueError("cluster needs at least one speed class")
        for label, (count, speed) in self.classes.items():
            if count < 1:
                raise ValueError(f"class {label!r} has no ranks")
            require_positive(speed, f"speed of class {label!r}")

    def speeds(self) -> np.ndarray:
        out: list[float] = []
        for label in sorted(self.classes):
            count, speed = self.classes[label]
            out.extend([speed] * count)
        return np.asarray(out)

    @property
    def num_ranks(self) -> int:
        return int(sum(c for c, _ in self.classes.values()))

    def total_speed(self) -> float:
        return float(sum(c * s for c, s in self.classes.values()))

    def simulate(
        self, task_costs: Sequence[float], aware: bool = True
    ) -> "HeterogeneousPoint":
        """Makespan of the workload on this cluster.

        ``aware=False`` uses the speed-blind plan.  Startup and the
        result reduction follow the homogeneous model (they are
        latency-bound, not speed-bound).
        """
        costs = np.asarray(task_costs, dtype=np.float64)
        serial = self.model.serial_fraction * float(costs.sum())
        par = costs * (1.0 - self.model.serial_fraction)
        speeds = self.speeds()
        plan = (
            lpt_schedule_speeds(par, speeds)
            if aware
            else blind_schedule_speeds(par, speeds)
        )
        p = self.num_ranks
        depth = math.ceil(math.log2(p)) if p > 1 else 0
        startup = self.model.startup_per_rank * (depth + 1) if p > 1 else 0.0
        per_rank_bytes = self.model.result_bytes_per_task * len(costs) / p
        comm = depth * (self.model.alpha + self.model.beta * per_rank_bytes)
        return HeterogeneousPoint(
            compute_time=plan.makespan,
            startup_time=startup,
            comm_time=comm,
            serial_time=serial,
            plan=plan,
        )

    def awareness_gain(self, task_costs: Sequence[float]) -> float:
        """Speed-blind makespan / aware makespan (>= ~1)."""
        blind = self.simulate(task_costs, aware=False).total
        aware = self.simulate(task_costs, aware=True).total
        return blind / aware


@dataclass(frozen=True)
class HeterogeneousPoint:
    compute_time: float
    startup_time: float
    comm_time: float
    serial_time: float
    plan: Assignment

    @property
    def total(self) -> float:
        return (
            self.compute_time
            + self.startup_time
            + self.comm_time
            + self.serial_time
        )


def ideal_heterogeneous_time(
    task_costs: Sequence[float], speeds: Sequence[float]
) -> float:
    """Lower bound: total work / total speed (perfect divisibility)."""
    costs = np.asarray(task_costs, dtype=np.float64)
    speeds_arr = np.asarray(speeds, dtype=np.float64)
    return float(costs.sum() / speeds_arr.sum())
