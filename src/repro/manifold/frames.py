"""Local frames and Jacobian change-of-frame (paper §IV-B).

The paper notes that real MEAs need not be equidistant orthogonal
grids: with a chart map ``φ: lattice -> R^2`` describing where each
sensor physically sits, calculus can still be done per-cell by pulling
derivatives back through the Jacobian of ``φ`` — "convert any
arbitrary MEA into a locally orthogonal frame".

:class:`ChartMap` represents the deformation; :func:`local_jacobians`
estimates the per-cell Jacobian by central/forward differences;
:func:`pullback_gradient` maps a physical-space gradient into lattice
coordinates (``∇_lattice = J^T ∇_phys``) and back.  Degenerate cells
(non-invertible Jacobians, i.e. a folded or torn device) are detected
and reported.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np


@dataclass(frozen=True)
class ChartMap:
    """Physical positions of an ``n x n`` lattice of sensors.

    ``x``/``y`` are ``(n, n)`` arrays of physical coordinates.  Build
    from a callable with :meth:`from_function` or use :meth:`identity`
    for the equidistant device.
    """

    x: np.ndarray
    y: np.ndarray

    def __post_init__(self) -> None:
        x = np.asarray(self.x, dtype=np.float64)
        y = np.asarray(self.y, dtype=np.float64)
        if x.ndim != 2 or x.shape != y.shape:
            raise ValueError("x and y must be equal-shape 2-D arrays")
        object.__setattr__(self, "x", x)
        object.__setattr__(self, "y", y)

    @property
    def shape(self) -> tuple[int, int]:
        return self.x.shape  # type: ignore[return-value]

    @classmethod
    def identity(cls, n: int) -> "ChartMap":
        rows, cols = np.mgrid[0:n, 0:n].astype(np.float64)
        return cls(x=rows, y=cols)

    @classmethod
    def from_function(
        cls, n: int, fn: Callable[[np.ndarray, np.ndarray], tuple[np.ndarray, np.ndarray]]
    ) -> "ChartMap":
        """``fn(rows, cols) -> (x, y)`` applied to the integer lattice."""
        rows, cols = np.mgrid[0:n, 0:n].astype(np.float64)
        x, y = fn(rows, cols)
        return cls(x=np.asarray(x, dtype=np.float64), y=np.asarray(y, dtype=np.float64))


def local_jacobians(chart: ChartMap) -> np.ndarray:
    """Per-cell Jacobians ``J[a, b] = d(x, y)/d(row, col)``.

    Estimated with forward differences on each unit cell (cell grid is
    ``(n-1, n-1)``); entry layout ``[[dx/dr, dx/dc], [dy/dr, dy/dc]]``.
    """
    x, y = chart.x, chart.y
    dxdr = np.diff(x, axis=0)[:, :-1]
    dxdc = np.diff(x, axis=1)[:-1, :]
    dydr = np.diff(y, axis=0)[:, :-1]
    dydc = np.diff(y, axis=1)[:-1, :]
    jac = np.empty(dxdr.shape + (2, 2), dtype=np.float64)
    jac[..., 0, 0] = dxdr
    jac[..., 0, 1] = dxdc
    jac[..., 1, 0] = dydr
    jac[..., 1, 1] = dydc
    return jac


def jacobian_determinants(chart: ChartMap) -> np.ndarray:
    """Per-cell det J; ≈ cell area, sign flips where the device folds."""
    jac = local_jacobians(chart)
    return np.linalg.det(jac)


def degenerate_cells(chart: ChartMap, tol: float = 1e-12) -> np.ndarray:
    """Boolean mask of cells whose frame is not invertible."""
    return np.abs(jacobian_determinants(chart)) < tol


def pullback_gradient(
    chart: ChartMap, grad_phys: np.ndarray
) -> np.ndarray:
    """Physical-space gradients → lattice-coordinate gradients.

    ``grad_phys`` has shape ``(n-1, n-1, 2)`` (per cell, (d/dx, d/dy));
    returns the same shape in (d/drow, d/dcol): the chain rule
    ``∇_lattice = J^T ∇_phys``.
    """
    jac = local_jacobians(chart)
    grad_phys = np.asarray(grad_phys, dtype=np.float64)
    if grad_phys.shape != jac.shape[:2] + (2,):
        raise ValueError(
            f"grad_phys must have shape {jac.shape[:2] + (2,)}"
        )
    return np.einsum("abji,abj->abi", jac, grad_phys)


def pushforward_gradient(
    chart: ChartMap, grad_lattice: np.ndarray
) -> np.ndarray:
    """Lattice gradients → physical gradients: ``∇_phys = J^{-T} ∇_lat``.

    Raises on degenerate cells (the device geometry is invalid there).
    """
    jac = local_jacobians(chart)
    if degenerate_cells(chart).any():
        raise ValueError("chart has degenerate (non-invertible) cells")
    grad_lattice = np.asarray(grad_lattice, dtype=np.float64)
    if grad_lattice.shape != jac.shape[:2] + (2,):
        raise ValueError(
            f"grad_lattice must have shape {jac.shape[:2] + (2,)}"
        )
    inv_t = np.linalg.inv(jac).transpose(0, 1, 3, 2)
    return np.einsum("abij,abj->abi", inv_t, grad_lattice)


def orthogonality_defect(chart: ChartMap) -> np.ndarray:
    """Per-cell |cos angle| between the two frame vectors.

    0 for a perfectly orthogonal device; benchmark ablations deform a
    device and track how far Parma's equidistant assumptions stretch.
    """
    jac = local_jacobians(chart)
    e1 = jac[..., :, 0]
    e2 = jac[..., :, 1]
    dot = np.einsum("abi,abi->ab", e1, e2)
    norms = np.linalg.norm(e1, axis=-1) * np.linalg.norm(e2, axis=-1)
    with np.errstate(invalid="ignore", divide="ignore"):
        out = np.abs(dot) / norms
    return np.nan_to_num(out, nan=1.0)
