"""Discrete Stokes' theorem on the MEA lattice (paper §IV-B).

The paper's manifold argument rests on ``∫_boundary U = ∬_patch D(U)``:
the circulation of a field along a patch boundary equals the summed
local "curl" inside — so each hole's Kirchhoff work only needs local
data.  On the lattice this is *exact*, not approximate:

    circulation(edge field, boundary of region) =
        Σ_{cells in region} curl(edge field)[cell]

for every axis-aligned rectangular region.  :func:`verify_stokes`
checks the identity for a given field and region;
:func:`exactness_defect` measures how far an edge field is from being
a gradient (zero for voltage fields of any drive — precisely
Kirchhoff's second law).
"""

from __future__ import annotations

import numpy as np

from repro.manifold.vectorfield import circulation, curl, grad


def rectangle_boundary(
    top: int, left: int, height: int, width: int
) -> list[tuple[int, int]]:
    """Site loop around a rectangle of unit cells, in curl orientation.

    The region covers cells ``[top, top+height) x [left, left+width)``;
    the loop visits its ``2 (height + width)`` boundary sites starting
    at ``(top, left)`` and proceeding along the top edge first
    (column-increasing), matching the per-cell traversal used by
    :func:`repro.manifold.vectorfield.curl`, so circulation equals the
    patch sum with a *plus* sign.
    """
    if height < 1 or width < 1:
        raise ValueError("rectangle must span at least one cell")
    loop: list[tuple[int, int]] = []
    for c in range(left, left + width):
        loop.append((top, c))
    for r in range(top, top + height):
        loop.append((r, left + width))
    for c in range(left + width, left, -1):
        loop.append((top + height, c))
    for r in range(top + height, top, -1):
        loop.append((r, left))
    return loop


def patch_sum(
    gx: np.ndarray, gy: np.ndarray, top: int, left: int, height: int, width: int
) -> float:
    """``Σ curl`` over the rectangular patch of cells."""
    cells = curl(gx, gy)
    if top < 0 or left < 0 or top + height > cells.shape[0] or left + width > cells.shape[1]:
        raise ValueError("patch exceeds the cell grid")
    return float(cells[top : top + height, left : left + width].sum())


def stokes_gap(
    gx: np.ndarray, gy: np.ndarray, top: int, left: int, height: int, width: int
) -> float:
    """|circulation - patch sum| for the rectangle (0 to round-off)."""
    loop = rectangle_boundary(top, left, height, width)
    circ = circulation(gx, gy, loop)
    return abs(circ - patch_sum(gx, gy, top, left, height, width))


def verify_stokes(
    gx: np.ndarray,
    gy: np.ndarray,
    top: int,
    left: int,
    height: int,
    width: int,
    rtol: float = 1e-9,
) -> bool:
    """True iff the discrete Stokes identity holds for the rectangle."""
    loop = rectangle_boundary(top, left, height, width)
    circ = circulation(gx, gy, loop)
    patch = patch_sum(gx, gy, top, left, height, width)
    scale = max(abs(circ), abs(patch), 1e-30)
    return abs(circ - patch) <= rtol * scale


def exactness_defect(gx: np.ndarray, gy: np.ndarray) -> float:
    """Max |curl| over all unit cells — 0 iff the field is a gradient.

    For the voltage field of *any* drive of *any* resistance field this
    is zero: voltages are a potential, so their differences around any
    loop cancel — Kirchhoff's second law in homological clothing.
    """
    return float(np.max(np.abs(curl(gx, gy)), initial=0.0))


def potential_circulations(field: np.ndarray) -> np.ndarray:
    """All unit-cell circulations of ``grad(field)`` (≈ 0 everywhere)."""
    gx, gy = grad(field)
    return curl(gx, gy)
