"""Discrete scalar/vector fields on the MEA lattice (paper §IV-B).

§IV-B views a dense MEA as a manifold carrying the voltage field
``U`` and parallelizes calculus locally.  The discrete analogue used
here: scalar fields live on lattice sites ``(n, n)``; the gradient is
a staggered 1-form (values on edges); divergence and scalar curl are
the adjoint difference operators.  These operators satisfy the exact
discrete identities the smooth theory promises —

* ``curl(grad f) = 0`` identically (mixed partials commute), and
* circulation of ``grad f`` around every closed lattice loop is zero

— which is what makes the per-hole decomposition of the Kirchhoff
work legitimate.  :mod:`repro.manifold.stokes` builds the
circulation/patch identity on top of these operators.
"""

from __future__ import annotations

import numpy as np


def grad(field: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Forward-difference gradient of a site field.

    Returns ``(gx, gy)``: ``gx[i, j] = f[i+1, j] - f[i, j]`` lives on
    vertical edges (shape ``(n-1, n)``), ``gy`` on horizontal edges
    (shape ``(n, n-1)``).
    """
    f = np.asarray(field, dtype=np.float64)
    if f.ndim != 2:
        raise ValueError("field must be 2-D")
    return np.diff(f, axis=0), np.diff(f, axis=1)


def div(gx: np.ndarray, gy: np.ndarray) -> np.ndarray:
    """Adjoint divergence of an edge field back onto sites.

    Zero-flux boundary convention (no current leaves the device edge),
    matching the electrical model.
    """
    gx = np.asarray(gx, dtype=np.float64)
    gy = np.asarray(gy, dtype=np.float64)
    n0 = gx.shape[0] + 1
    n1 = gy.shape[1] + 1
    if gx.shape != (n0 - 1, n1) or gy.shape != (n0, n1 - 1):
        raise ValueError("gx/gy shapes are inconsistent")
    out = np.zeros((n0, n1), dtype=np.float64)
    out[:-1, :] += gx
    out[1:, :] -= gx
    out[:, :-1] += gy
    out[:, 1:] -= gy
    return out


def curl(gx: np.ndarray, gy: np.ndarray) -> np.ndarray:
    """Discrete scalar curl on unit cells (shape ``(n-1, n-1)``).

    Circulation of the edge field around each unit cell, traversed
    counter-clockwise: bottom, right, top (reversed), left (reversed).
    ``curl(grad f)`` is identically zero.
    """
    gx = np.asarray(gx, dtype=np.float64)
    gy = np.asarray(gy, dtype=np.float64)
    # Cell (a, b): edges gy[a, b] (bottom), gx[a, b+1] (right),
    # gy[a+1, b] (top, reversed), gx[a, b] (left, reversed).
    return gy[:-1, :] + gx[:, 1:] - gy[1:, :] - gx[:, :-1]


def laplacian(field: np.ndarray) -> np.ndarray:
    """``div(grad(field))`` — the 5-point Laplacian with Neumann edges."""
    gx, gy = grad(field)
    return -div(gx, gy)


def circulation(
    gx: np.ndarray, gy: np.ndarray, loop: list[tuple[int, int]]
) -> float:
    """Line integral of the edge field along a closed site loop.

    ``loop`` is a list of lattice sites; consecutive sites must be
    4-neighbours and the last must neighbour the first.
    """
    gx = np.asarray(gx, dtype=np.float64)
    gy = np.asarray(gy, dtype=np.float64)
    if len(loop) < 3:
        raise ValueError("a loop needs at least 3 sites")
    total = 0.0
    closed = list(loop) + [loop[0]]
    for (r0, c0), (r1, c1) in zip(closed, closed[1:]):
        dr, dc = r1 - r0, c1 - c0
        if (abs(dr), abs(dc)) not in ((1, 0), (0, 1)):
            raise ValueError(
                f"sites ({r0},{c0}) -> ({r1},{c1}) are not 4-neighbours"
            )
        if dr == 1:
            total += gx[r0, c0]
        elif dr == -1:
            total -= gx[r1, c1]
        elif dc == 1:
            total += gy[r0, c0]
        else:
            total -= gy[r0, c1]
    return float(total)


def voltage_field_from_drive(resistance: np.ndarray, row: int, col: int,
                             voltage: float = 5.0) -> np.ndarray:
    """The §IV-B site field: voltage midway across each resistor.

    Under drive ``(row, col)``, resistor ``(a, b)`` sees horizontal
    wire voltage ``h_a`` on one side and vertical wire voltage ``v_b``
    on the other; its site value is the average — a smooth proxy field
    on the resistor lattice whose structure the manifold machinery
    analyses.
    """
    from repro.kirchhoff.forward import solve_drive

    sol = solve_drive(resistance, row, col, voltage=voltage)
    return 0.5 * (sol.h_voltages[:, None] + sol.v_voltages[None, :])
