"""Smoothness of MEA fields and repeated-measurement manifolds.

§IV-B's parallel-calculus argument assumes the voltage field is
*continuous* — no abrupt jumps between neighbouring sensors.  The
paper suggests two practical handles, both implemented here:

* a quantitative smoothness check (:func:`smoothness_index`,
  :func:`is_smooth`): the largest second difference relative to the
  field's dynamic range — small for dense healthy devices, spiking at
  anomaly edges;
* the repeated-measurement manifold (:class:`RepeatedMeasurement`):
  averaging ``k`` noisy measurement replicas shrinks instrument noise
  like ``1/sqrt(k)``, recovering the differentiability the single
  snapshot lacks ("repeat the measurement and consider the vector of
  repeated measurements as a more realistic manifold").

Plus the mixed-partial symmetry check the paper quotes
(``∂²U/∂x∂y = ∂²U/∂y∂x``), exact for the discrete operators.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def second_differences(field: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Axis-wise second differences (∂²/∂x², ∂²/∂y² analogues)."""
    f = np.asarray(field, dtype=np.float64)
    if f.ndim != 2:
        raise ValueError("field must be 2-D")
    return np.diff(f, n=2, axis=0), np.diff(f, n=2, axis=1)


def mixed_partials(field: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Both orders of the discrete mixed partial (identical arrays)."""
    f = np.asarray(field, dtype=np.float64)
    dxy = np.diff(np.diff(f, axis=0), axis=1)
    dyx = np.diff(np.diff(f, axis=1), axis=0)
    return dxy, dyx


def mixed_partial_gap(field: np.ndarray) -> float:
    """Max |∂²U/∂x∂y - ∂²U/∂y∂x| — zero exactly (finite differences
    commute), mirroring the paper's Euclidean identity."""
    dxy, dyx = mixed_partials(field)
    return float(np.max(np.abs(dxy - dyx), initial=0.0))


def smoothness_index(field: np.ndarray) -> float:
    """Largest second difference over the field's dynamic range.

    0 for affine fields; O(1) when neighbouring sites jump by the full
    range.  Dimensionless, comparable across devices and units.
    """
    f = np.asarray(field, dtype=np.float64)
    if f.ndim != 2:
        raise ValueError("field must be 2-D")
    span = float(f.max() - f.min())
    if span == 0.0:
        return 0.0
    d2x, d2y = second_differences(f)
    worst = max(
        float(np.max(np.abs(d2x), initial=0.0)),
        float(np.max(np.abs(d2y), initial=0.0)),
    )
    return worst / span


def is_smooth(field: np.ndarray, threshold: float = 0.5) -> bool:
    """Whether the §IV-B continuity assumption plausibly holds."""
    return smoothness_index(field) <= threshold


@dataclass(frozen=True)
class RepeatedMeasurement:
    """A stack of measurement replicas of the same quantity.

    ``replicas`` has shape ``(k, n, n)``; the mean is the manifold
    estimate, and :meth:`noise_scale` tracks the residual replica
    spread of the mean (shrinking like ``1/sqrt(k)``).
    """

    replicas: np.ndarray

    def __post_init__(self) -> None:
        reps = np.asarray(self.replicas, dtype=np.float64)
        if reps.ndim != 3 or reps.shape[0] < 1:
            raise ValueError("replicas must be a (k, n, n) stack, k >= 1")
        object.__setattr__(self, "replicas", reps)

    @property
    def count(self) -> int:
        return self.replicas.shape[0]

    def mean_field(self) -> np.ndarray:
        return self.replicas.mean(axis=0)

    def noise_scale(self) -> float:
        """Std of the replica mean, averaged over sites."""
        if self.count == 1:
            return 0.0
        per_site = self.replicas.std(axis=0, ddof=1) / np.sqrt(self.count)
        return float(per_site.mean())

    def smoothness_gain(self) -> float:
        """Smoothness index ratio: single replica / averaged manifold.

        > 1 whenever averaging helped (it does for i.i.d. noise).
        """
        single = smoothness_index(self.replicas[0])
        averaged = smoothness_index(self.mean_field())
        if averaged == 0.0:
            return float("inf") if single > 0 else 1.0
        return single / averaged
