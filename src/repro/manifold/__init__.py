"""Differential-geometric view of MEAs (paper §IV-B).

* :mod:`repro.manifold.vectorfield` — discrete gradient/divergence/
  curl and circulation on the lattice.
* :mod:`repro.manifold.frames` — chart maps, per-cell Jacobians,
  pullback/pushforward between physical and lattice frames.
* :mod:`repro.manifold.stokes` — the discrete Stokes identity behind
  the per-hole locality argument.
* :mod:`repro.manifold.smooth` — smoothness checks and the repeated-
  measurement manifold.
"""

from repro.manifold.frames import (
    ChartMap,
    degenerate_cells,
    jacobian_determinants,
    local_jacobians,
    orthogonality_defect,
    pullback_gradient,
    pushforward_gradient,
)
from repro.manifold.smooth import (
    RepeatedMeasurement,
    is_smooth,
    mixed_partial_gap,
    smoothness_index,
)
from repro.manifold.stokes import (
    exactness_defect,
    rectangle_boundary,
    stokes_gap,
    verify_stokes,
)
from repro.manifold.vectorfield import (
    circulation,
    curl,
    div,
    grad,
    laplacian,
    voltage_field_from_drive,
)

__all__ = [
    "ChartMap",
    "RepeatedMeasurement",
    "circulation",
    "curl",
    "degenerate_cells",
    "div",
    "exactness_defect",
    "grad",
    "is_smooth",
    "jacobian_determinants",
    "laplacian",
    "local_jacobians",
    "mixed_partial_gap",
    "orthogonality_defect",
    "pullback_gradient",
    "pushforward_gradient",
    "rectangle_boundary",
    "smoothness_index",
    "stokes_gap",
    "verify_stokes",
    "voltage_field_from_drive",
]
