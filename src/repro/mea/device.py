"""Physical model of a microelectrode-array (MEA) device.

An ``m x n`` MEA (paper Fig. 1; square ``n x n`` in practice) has:

* ``m`` horizontal wires, named ``A, B, C, ...``;
* ``n`` vertical wires, named with Roman numerals ``I, II, III, ...``;
* one point resistor ``R_ij`` where horizontal wire ``i`` crosses
  vertical wire ``j`` (1-based in the paper, 0-based internally);
* two *joints* per resistor — the paper's ``2 n^2`` joints — one on the
  horizontal wire and one on the vertical wire.  Figure 1's numbering
  is reproduced exactly: resistor ``(i, j)`` owns joints
  ``2*(i*n + j)`` (horizontal side) and ``2*(i*n + j) + 1``
  (vertical side), so the 3x3 device has joints 0..17 with
  ``R_11 -> (0, 1)``, ``R_22 -> (8, 9)``, ``R_33 -> (16, 17)``.

The class is pure structure: names, joints, adjacency.  Electrical
behaviour lives in :mod:`repro.kirchhoff`; graph/complex abstractions
in :mod:`repro.mea.graph`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.utils.validation import require_positive_int

#: Upper bound on wire counts for generated names; raise if you really
#: build a wider device (names then switch to ``H26``/``V4000`` style).
_ALPHABET = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"

_ROMAN = (
    (1000, "M"), (900, "CM"), (500, "D"), (400, "CD"),
    (100, "C"), (90, "XC"), (50, "L"), (40, "XL"),
    (10, "X"), (9, "IX"), (5, "V"), (4, "IV"), (1, "I"),
)


def roman_numeral(k: int) -> str:
    """Roman numeral for ``k >= 1`` (vertical wire names, Fig. 1)."""
    k = require_positive_int(k, "k")
    out = []
    for value, glyph in _ROMAN:
        while k >= value:
            out.append(glyph)
            k -= value
    return "".join(out)


def horizontal_wire_name(i: int) -> str:
    """Name of 0-based horizontal wire ``i``: A, B, ..., Z, H26, H27, ..."""
    if i < 0:
        raise ValueError("wire index must be non-negative")
    if i < len(_ALPHABET):
        return _ALPHABET[i]
    return f"H{i}"


def vertical_wire_name(j: int) -> str:
    """Name of 0-based vertical wire ``j``: I, II, ... (Roman numerals)."""
    if j < 0:
        raise ValueError("wire index must be non-negative")
    return roman_numeral(j + 1)


@dataclass(frozen=True)
class Joint:
    """One of the ``2 m n`` wire/resistor junctions.

    ``side`` is ``"h"`` if the joint sits on the horizontal wire and
    ``"v"`` if on the vertical wire; ``(row, col)`` is the 0-based
    resistor position the joint belongs to.
    """

    index: int
    row: int
    col: int
    side: str

    @property
    def wire(self) -> str:
        return (
            horizontal_wire_name(self.row)
            if self.side == "h"
            else vertical_wire_name(self.col)
        )


@dataclass(frozen=True)
class Resistor:
    """Resistor ``R_(row+1)(col+1)`` with its two joint indices."""

    row: int
    col: int
    h_joint: int
    v_joint: int

    @property
    def name(self) -> str:
        """Paper-style 1-based name, e.g. ``R_11``."""
        return f"R_{self.row + 1}{self.col + 1}"


class MEAGrid:
    """Structure of an ``m x n`` crossbar MEA.

    Parameters
    ----------
    n_horizontal, n_vertical:
        Wire counts ``m`` and ``n``.  ``MEAGrid(3)`` builds the square
        3x3 device of the paper's Figure 1.
    """

    def __init__(self, n_horizontal: int, n_vertical: int | None = None) -> None:
        self.m = require_positive_int(n_horizontal, "n_horizontal")
        self.n = require_positive_int(
            n_vertical if n_vertical is not None else n_horizontal, "n_vertical"
        )

    # -- scalar facts -----------------------------------------------------

    @property
    def is_square(self) -> bool:
        return self.m == self.n

    @property
    def num_resistors(self) -> int:
        """``n^2`` for square devices (paper §II-B)."""
        return self.m * self.n

    @property
    def num_joints(self) -> int:
        """``2 n^2`` for square devices (paper §II-B)."""
        return 2 * self.m * self.n

    @property
    def num_endpoint_pairs(self) -> int:
        """Measurable (horizontal, vertical) terminal pairs: ``m * n``."""
        return self.m * self.n

    def total_path_count(self) -> int:
        """Paper §II-C closed form: ``n^(n+1)`` end-to-end paths (square).

        For a square ``n x n`` device: ``n^(n-1)`` paths per endpoint
        pair times ``n^2`` pairs.  Defined only for square devices,
        matching the paper's derivation.
        """
        if not self.is_square:
            raise ValueError("path closed form is stated for square devices")
        return self.n ** (self.n + 1)

    def paths_per_pair(self) -> int:
        """``n^(n-1)`` paths between one endpoint pair (square devices)."""
        if not self.is_square:
            raise ValueError("path closed form is stated for square devices")
        return self.n ** (self.n - 1)

    # -- naming / indexing --------------------------------------------------

    def horizontal_wires(self) -> list[str]:
        return [horizontal_wire_name(i) for i in range(self.m)]

    def vertical_wires(self) -> list[str]:
        return [vertical_wire_name(j) for j in range(self.n)]

    def joint_indices(self, row: int, col: int) -> tuple[int, int]:
        """(horizontal-side, vertical-side) joint ids of resistor (row, col)."""
        self._check_pos(row, col)
        base = 2 * (row * self.n + col)
        return base, base + 1

    def resistor(self, row: int, col: int) -> Resistor:
        h, v = self.joint_indices(row, col)
        return Resistor(row=row, col=col, h_joint=h, v_joint=v)

    def resistors(self) -> Iterator[Resistor]:
        """All resistors in row-major order."""
        for row in range(self.m):
            for col in range(self.n):
                yield self.resistor(row, col)

    def joint(self, index: int) -> Joint:
        if not 0 <= index < self.num_joints:
            raise IndexError(
                f"joint {index} out of range for {self.num_joints} joints"
            )
        pos, side_bit = divmod(index, 2)
        row, col = divmod(pos, self.n)
        return Joint(
            index=index, row=row, col=col, side="h" if side_bit == 0 else "v"
        )

    def joints(self) -> Iterator[Joint]:
        for index in range(self.num_joints):
            yield self.joint(index)

    def joints_on_horizontal(self, row: int) -> list[int]:
        """Joint ids along horizontal wire ``row``, left to right."""
        self._check_pos(row, 0)
        return [2 * (row * self.n + col) for col in range(self.n)]

    def joints_on_vertical(self, col: int) -> list[int]:
        """Joint ids along vertical wire ``col``, top to bottom."""
        self._check_pos(0, col)
        return [2 * (row * self.n + col) + 1 for row in range(self.m)]

    def _check_pos(self, row: int, col: int) -> None:
        if not (0 <= row < self.m and 0 <= col < self.n):
            raise IndexError(
                f"resistor position ({row}, {col}) out of range for "
                f"{self.m}x{self.n} device"
            )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MEAGrid):
            return NotImplemented
        return (self.m, self.n) == (other.m, other.n)

    def __hash__(self) -> int:
        return hash((self.m, self.n))

    def __repr__(self) -> str:
        return f"MEAGrid({self.m}x{self.n})"
