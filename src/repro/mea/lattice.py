"""Physics on k-dimensional resistor lattices (§IV-B made concrete).

:mod:`repro.mea.kdim` supplies the *combinatorics* of the paper's
k-dimensional generalization ((n−1)^k cells, O(n^{k+1}) constraints);
this module supplies the *physics*: every lattice edge carries a
resistor, and the resulting network is analysed with the general
circuit substrate (:mod:`repro.kirchhoff.laws`).  That closes the loop
the 2-D stack closes with the crossbar:

* effective resistances between any two sites (the measurable);
* mesh analysis whose loop count is the lattice's cyclomatic number —
  the homology/physics agreement, now in any dimension;
* face-to-face drives for the "bulk resistivity" measurement used by
  3-D impedance tomography setups.

Dense k = 3 lattices get expensive quickly (n³ nodes); the intended
range is the paper's "proof of generality", not production tomography.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kirchhoff.laws import Circuit, ResistorEdge
from repro.mea.kdim import KDimMEA, Site
from repro.utils.rng import default_rng
from repro.utils.validation import require_positive


@dataclass(frozen=True)
class LatticeDevice:
    """A k-dim lattice with one resistor per nearest-neighbour edge."""

    mea: KDimMEA
    resistances: dict[tuple[Site, Site], float]

    @classmethod
    def uniform(cls, n: int, k: int, ohms: float = 1000.0) -> "LatticeDevice":
        require_positive(ohms, "ohms")
        mea = KDimMEA(n, k)
        res = {edge: ohms for edge in mea.edges()}
        return cls(mea=mea, resistances=res)

    @classmethod
    def random(
        cls,
        n: int,
        k: int,
        low: float = 500.0,
        high: float = 5000.0,
        seed: int | None = None,
    ) -> "LatticeDevice":
        mea = KDimMEA(n, k)
        rng = default_rng(seed)
        res = {
            edge: float(rng.uniform(low, high)) for edge in mea.edges()
        }
        return cls(mea=mea, resistances=res)

    def circuit(self) -> Circuit:
        return Circuit([
            ResistorEdge(a, b, ohms)
            for (a, b), ohms in self.resistances.items()
        ])

    # -- measurements -----------------------------------------------------

    def effective_resistance(self, a: Site, b: Site) -> float:
        sol = self.circuit().solve_nodal(a, b, voltage=1.0)
        return sol.effective_resistance()

    def corner_to_corner(self) -> float:
        """Z between the lattice's opposite corners."""
        n, k = self.mea.n, self.mea.k
        lo = tuple([0] * k)
        hi = tuple([n - 1] * k)
        return self.effective_resistance(lo, hi)

    def face_sites(self, axis: int, end: int) -> list[Site]:
        """Sites of one boundary face (coordinate ``axis`` pinned)."""
        n, k = self.mea.n, self.mea.k
        if not 0 <= axis < k:
            raise ValueError(f"axis {axis} out of range for k={k}")
        value = 0 if end == 0 else n - 1
        return [s for s in self.mea.sites() if s[axis] == value]

    def face_to_face_resistance(self, axis: int) -> float:
        """Bulk measurement: short each of the two opposite faces of
        ``axis`` into a terminal and measure between them.

        Shorting is modelled with negligible (1e-9 of min R) tie
        resistors to virtual terminal nodes.
        """
        tie = 1e-9 * min(self.resistances.values())
        edges = [
            ResistorEdge(a, b, ohms)
            for (a, b), ohms in self.resistances.items()
        ]
        src, snk = ("FACE", 0), ("FACE", 1)
        for site in self.face_sites(axis, 0):
            edges.append(ResistorEdge(src, site, tie))
        for site in self.face_sites(axis, 1):
            edges.append(ResistorEdge(snk, site, tie))
        sol = Circuit(edges).solve_nodal(src, snk, voltage=1.0)
        return sol.effective_resistance()

    # -- structure/physics agreement ---------------------------------------

    def mesh_loop_count(self) -> int:
        """Loops the mesh analysis needs == lattice cyclomatic number."""
        return self.circuit().num_independent_l2()

    def verify_laws(self, a: Site, b: Site, atol: float = 1e-8) -> bool:
        """Solve a drive and check both Kirchhoff law residuals."""
        sol = self.circuit().solve_nodal(a, b, voltage=1.0)
        l1 = float(np.max(np.abs(sol.l1_residual())))
        l2 = float(np.max(np.abs(sol.l2_residual()), initial=0.0))
        scale = max(abs(sol.total_current), 1e-30)
        return l1 <= atol * scale and l2 <= atol


def uniform_face_resistance_exact(n: int, k: int, ohms: float) -> float:
    """Closed form for the face-to-face measurement on a uniform
    lattice: current flows in n^{k-1} independent straight columns of
    (n-1) series resistors ⇒ ``ohms * (n-1) / n^(k-1)``.

    (Exact by symmetry: with both faces equipotential, every
    cross-layer plane is equipotential, so transverse resistors carry
    no current.)
    """
    return ohms * (n - 1) / n ** (k - 1)
