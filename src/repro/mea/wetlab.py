"""Forward-simulated wet-lab measurement campaigns.

The paper's evaluation data comes from a biomedical-engineering wet
lab: a device sits on a cell medium, pairwise resistances are measured
at 0/6/12/24 hours, values land in 2,000–11,000 kΩ at 5 V.  That data
is not available, so this module *is* the wet lab for this repository
(substitution documented in DESIGN.md §2):

1. a ground-truth resistance field comes from
   :mod:`repro.mea.synthetic` (same statistics the paper reports);
2. the exact crossbar forward solver computes what the instrument
   would read for every wire pair;
3. optional multiplicative instrument noise models measurement error;
4. anomaly growth across the four daily timepoints follows a simple
   proliferation model.

Because step 2 is the same physics the device obeys, any downstream
consumer (Parma, baselines, anomaly detection) sees data with the same
structure as the paper's, *plus* a known ground truth to score
against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.kirchhoff.forward import measure
from repro.mea.dataset import Measurement, MeasurementCampaign
from repro.mea.synthetic import (
    PAPER_VOLTAGE,
    FieldSpec,
    generate_field,
    growth_sequence,
    paper_like_spec,
)
from repro.utils.rng import default_rng, derive_seed
from repro.utils.validation import require_in_range


@dataclass(frozen=True)
class WetLabConfig:
    """Knobs of the simulated instrument.

    ``noise_rel`` is the per-reading multiplicative error (lognormal,
    ~0.5 % by default — consistent with the sub-percent error rates
    quoted for MEA instrumentation in the paper's related work).
    """

    voltage: float = PAPER_VOLTAGE
    noise_rel: float = 0.005
    hours: tuple[float, ...] = (0.0, 6.0, 12.0, 24.0)
    growth_per_hour: float = 0.02

    def __post_init__(self) -> None:
        require_in_range(self.noise_rel, "noise_rel", 0.0, 0.5)
        if tuple(sorted(self.hours)) != tuple(self.hours):
            raise ValueError("hours must be sorted ascending")


@dataclass(frozen=True)
class WetLabRun:
    """One simulated day: campaign plus the ground truth behind it."""

    campaign: MeasurementCampaign
    ground_truth: tuple[np.ndarray, ...]  # R field per timepoint (kΩ)
    specs: tuple[FieldSpec, ...] = field(repr=False, default=())

    @property
    def n(self) -> int:
        return self.campaign.shape[0]


def simulate_measurement(
    resistance_kohm: np.ndarray,
    config: WetLabConfig = WetLabConfig(),
    hour: float = 0.0,
    seed: int | None = None,
) -> Measurement:
    """One instrument reading of a known R field.

    The exact Z matrix is perturbed by lognormal noise with relative
    spread ``config.noise_rel`` (zero noise = exact reading).
    """
    z = measure(resistance_kohm, voltage=config.voltage)
    if config.noise_rel > 0:
        rng = default_rng(derive_seed(seed, "instrument", int(hour * 1000)))
        sigma = np.log1p(config.noise_rel)
        z = z * rng.lognormal(mean=0.0, sigma=sigma, size=z.shape)
    return Measurement(
        z_kohm=z,
        voltage=config.voltage,
        hour=hour,
        meta={"source": "wetlab-sim", "noise_rel": str(config.noise_rel)},
    )


def run_campaign(
    spec: FieldSpec,
    config: WetLabConfig = WetLabConfig(),
    seed: int | None = None,
) -> WetLabRun:
    """Simulate the full 4-timepoint day for one device/medium.

    The anomaly blobs grow between timepoints per
    :func:`repro.mea.synthetic.growth_sequence`; the baseline tissue
    field is sampled once (hour 0) and shared, so time variation is
    entirely anomaly growth + instrument noise, as in a real campaign.
    """
    specs = growth_sequence(
        spec, hours=config.hours, growth_per_hour=config.growth_per_hour
    )
    fields: list[np.ndarray] = []
    readings: list[Measurement] = []
    field_seed = derive_seed(seed, "field")
    for hour, tp_spec in zip(config.hours, specs):
        r = generate_field(tp_spec, seed=field_seed)
        fields.append(r)
        readings.append(
            simulate_measurement(r, config=config, hour=hour, seed=seed)
        )
    return WetLabRun(
        campaign=MeasurementCampaign(measurements=tuple(readings)),
        ground_truth=tuple(fields),
        specs=tuple(specs),
    )


def quick_device_data(
    n: int,
    num_anomalies: int = 2,
    seed: int | None = None,
    noise_rel: float = 0.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Shortcut for benchmarks: ``(ground_truth_R, measured_Z)`` at hour 0.

    Noise-free by default so solver benchmarks measure cost, not
    noise-robustness (which has its own tests).
    """
    spec = paper_like_spec(n, num_anomalies=num_anomalies, seed=seed)
    r = generate_field(spec, seed=derive_seed(seed, "field"))
    cfg = WetLabConfig(noise_rel=noise_rel)
    meas = simulate_measurement(r, config=cfg, seed=seed)
    return r, meas.z_kohm
