"""Graph and simplicial-complex abstractions of an MEA device.

Three views of the same device, each used by a different layer:

* :func:`joint_graph` — the *physical* graph of Figure 1: every joint
  is a vertex, wire segments between consecutive joints and the two
  wire terminals are edges, and each resistor is an edge between its
  two joints.  This is what Proposition 1 models as a 1-dimensional
  simplicial complex.

* :func:`resistor_graph` — the abstraction of Figure 2: one vertex per
  resistor, edges between resistors adjacent along a shared wire.  Its
  fundamental cycles are the ``(m-1)(n-1)`` unit meshes — the "holes"
  that seed the fine-grained parallelism.

* :func:`wire_graph` — the *electrical* reduction: wires are ideal
  conductors, so every horizontal wire collapses to one node and every
  vertical wire to another; resistor ``R_ij`` becomes the edge
  ``(h_i, v_j)`` and the device is the complete bipartite multigraph
  ``K_{m,n}`` with one conductance per crossing.  The forward solver
  (:mod:`repro.kirchhoff.forward`) operates on this graph.

All functions return ``networkx.Graph`` objects with deterministic
node/edge attribute conventions documented per function.
"""

from __future__ import annotations

import networkx as nx

from repro.mea.device import MEAGrid, horizontal_wire_name, vertical_wire_name
from repro.topology.complex import SimplicialComplex


def joint_graph(grid: MEAGrid, include_terminals: bool = True) -> nx.Graph:
    """The Figure-1 graph of joints, wire segments, and resistors.

    Nodes: joint indices (ints) and, if ``include_terminals``, the wire
    terminal nodes named ``("T", wire_name)``.  Edges carry
    ``kind="wire"`` or ``kind="resistor"``; resistor edges also carry
    ``row``/``col``.
    """
    g = nx.Graph()
    g.add_nodes_from(range(grid.num_joints))
    for res in grid.resistors():
        g.add_edge(
            res.h_joint, res.v_joint, kind="resistor", row=res.row, col=res.col
        )
    for row in range(grid.m):
        chain = grid.joints_on_horizontal(row)
        for a, b in zip(chain, chain[1:]):
            g.add_edge(a, b, kind="wire", wire=horizontal_wire_name(row))
        if include_terminals:
            term = ("T", horizontal_wire_name(row))
            g.add_node(term)
            g.add_edge(term, chain[0], kind="wire", wire=horizontal_wire_name(row))
    for col in range(grid.n):
        chain = grid.joints_on_vertical(col)
        for a, b in zip(chain, chain[1:]):
            g.add_edge(a, b, kind="wire", wire=vertical_wire_name(col))
        if include_terminals:
            term = ("T", vertical_wire_name(col))
            g.add_node(term)
            g.add_edge(term, chain[0], kind="wire", wire=vertical_wire_name(col))
    return g


def resistor_graph(grid: MEAGrid) -> nx.Graph:
    """The Figure-2 abstraction: vertices are resistors ``(row, col)``.

    Resistors are adjacent iff they are consecutive on a shared wire,
    giving the ``m x n`` grid graph.  Its cyclomatic number is
    ``(m-1)(n-1)`` — for square devices the ``(n-1)^2`` holes of §IV-B.
    """
    g = nx.Graph()
    for row in range(grid.m):
        for col in range(grid.n):
            g.add_node((row, col))
    for row in range(grid.m):
        for col in range(grid.n):
            if col + 1 < grid.n:
                g.add_edge((row, col), (row, col + 1), wire="h")
            if row + 1 < grid.m:
                g.add_edge((row, col), (row + 1, col), wire="v")
    return g


def wire_graph(grid: MEAGrid) -> nx.Graph:
    """The collapsed electrical graph: one node per wire.

    Nodes are ``("H", i)`` and ``("V", j)``; the edge ``(H_i, V_j)``
    carries ``row``/``col`` identifying resistor ``R_ij``.  This is
    ``K_{m,n}``; its cyclomatic number ``(m-1)(n-1)`` equals the
    resistor-graph value, as the two views are homotopy-equivalent.
    """
    g = nx.Graph()
    for i in range(grid.m):
        g.add_node(("H", i))
    for j in range(grid.n):
        g.add_node(("V", j))
    for i in range(grid.m):
        for j in range(grid.n):
            g.add_edge(("H", i), ("V", j), row=i, col=j)
    return g


def device_complex(grid: MEAGrid, include_terminals: bool = False) -> SimplicialComplex:
    """The joint graph as an abstract simplicial complex (Prop. 1).

    Dimension is exactly 1 (wires and joints, no triangles); the
    homology of this complex gives the Betti numbers used throughout
    §III/§IV and is cross-checked in the test suite against the
    cyclomatic number of the graph.
    """
    g = joint_graph(grid, include_terminals=include_terminals)
    return SimplicialComplex.from_graph(g.nodes, g.edges)


def resistor_complex(grid: MEAGrid) -> SimplicialComplex:
    """The Figure-2 grid graph as a 1-complex."""
    g = resistor_graph(grid)
    return SimplicialComplex.from_graph(g.nodes, g.edges)


def mesh_count(grid: MEAGrid) -> int:
    """Number of unit meshes ``(m-1)(n-1)`` — the §IV parallelism units."""
    return (grid.m - 1) * (grid.n - 1)


def expected_betti(grid: MEAGrid, include_terminals: bool = False) -> tuple[int, int]:
    """Analytic ``(β0, β1)`` of the joint graph.

    The joint graph is connected (β0 = 1) for any device with at least
    one resistor; β1 = |E| - |V| + 1.  Terminals add one vertex and one
    edge per wire, leaving β1 unchanged.
    """
    v = grid.num_joints + (grid.m + grid.n if include_terminals else 0)
    e = (
        grid.num_resistors  # resistor edges
        + grid.m * (grid.n - 1)  # horizontal wire segments
        + grid.n * (grid.m - 1)  # vertical wire segments
        + (grid.m + grid.n if include_terminals else 0)
    )
    return 1, e - v + 1
