"""Measurement containers for MEA campaigns.

The paper's data arrives as per-timepoint matrices of pairwise
measured resistances ``Z`` (Excel sheets converted to text, measured
at 0/6/12/24 h after device setup).  :class:`Measurement` is one
snapshot; :class:`MeasurementCampaign` is the 4-a-day series.  Both
carry enough metadata (voltage, units, provenance) for the pipeline to
be self-describing, and round-trip through
:mod:`repro.io.textformat`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping

import numpy as np

from repro.utils.validation import require_positive, require_positive_array


class MeasurementValidationError(ValueError):
    """A Z matrix failed boundary validation; the message names the
    first offending channel (row, col) so lab staff can trace it to a
    physical electrode."""


@dataclass(frozen=True)
class ChannelAudit:
    """Per-site health report for one raw Z matrix.

    Site categories (index pairs into ``z``):

    * ``nan_sites`` — non-finite readings (NaN/inf): open channel or
      acquisition glitch;
    * ``nonpositive_sites`` — zero/negative resistance: wiring or
      sign-convention fault;
    * ``saturated_sites`` — readings at/above ``saturation_kohm``:
      instrument rail, typical of a dead electrode;
    * ``dead_rows`` / ``dead_cols`` — whole wires whose every reading
      is bad (an electrode that is physically gone).
    """

    shape: tuple[int, int]
    nan_sites: tuple[tuple[int, int], ...]
    nonpositive_sites: tuple[tuple[int, int], ...]
    saturated_sites: tuple[tuple[int, int], ...]
    dead_rows: tuple[int, ...]
    dead_cols: tuple[int, ...]
    saturation_kohm: float

    @property
    def clean(self) -> bool:
        return not (
            self.nan_sites
            or self.nonpositive_sites
            or self.saturated_sites
            or self.dead_rows
            or self.dead_cols
        )

    @property
    def num_bad_sites(self) -> int:
        return (
            len(self.nan_sites)
            + len(self.nonpositive_sites)
            + len(self.saturated_sites)
        )

    def first_offender(self) -> str:
        """Human-readable description of the first bad channel found."""
        if self.nan_sites:
            i, j = self.nan_sites[0]
            return f"z_kohm[{i}, {j}] is non-finite"
        if self.nonpositive_sites:
            i, j = self.nonpositive_sites[0]
            return f"z_kohm[{i}, {j}] is non-positive"
        if self.saturated_sites:
            i, j = self.saturated_sites[0]
            return (
                f"z_kohm[{i}, {j}] is saturated "
                f"(>= {self.saturation_kohm:g} kOhm)"
            )
        return "no bad channels"

    def describe(self) -> str:
        if self.clean:
            return "all channels healthy"
        parts = [f"{self.num_bad_sites} bad site(s)"]
        if self.nan_sites:
            parts.append(f"{len(self.nan_sites)} non-finite")
        if self.nonpositive_sites:
            parts.append(f"{len(self.nonpositive_sites)} non-positive")
        if self.saturated_sites:
            parts.append(f"{len(self.saturated_sites)} saturated")
        if self.dead_rows:
            parts.append(f"dead row wire(s) {list(self.dead_rows)}")
        if self.dead_cols:
            parts.append(f"dead column wire(s) {list(self.dead_cols)}")
        return ", ".join(parts) + f"; first: {self.first_offender()}"


def audit_z(z: np.ndarray, saturation_kohm: float = 1e6) -> ChannelAudit:
    """Audit a raw Z matrix (pre-:class:`Measurement`) for bad channels.

    Operates on the raw ndarray because :class:`Measurement` refuses
    to hold non-finite data at all — the audit is how dirty
    acquisitions get triaged *before* entering the pipeline.
    """
    z = np.asarray(z, dtype=np.float64)
    if z.ndim != 2:
        raise MeasurementValidationError(f"z_kohm must be 2-D, got {z.ndim}-D")
    finite = np.isfinite(z)
    positive = finite & (z > 0)
    saturated = positive & (z >= saturation_kohm)
    bad = ~positive | saturated
    nan_sites = tuple(map(tuple, np.argwhere(~finite)))
    nonpositive_sites = tuple(map(tuple, np.argwhere(finite & (z <= 0))))
    saturated_sites = tuple(map(tuple, np.argwhere(saturated)))
    dead_rows = tuple(int(i) for i in np.flatnonzero(bad.all(axis=1)))
    dead_cols = tuple(int(j) for j in np.flatnonzero(bad.all(axis=0)))
    return ChannelAudit(
        shape=z.shape,
        nan_sites=tuple((int(i), int(j)) for i, j in nan_sites),
        nonpositive_sites=tuple((int(i), int(j)) for i, j in nonpositive_sites),
        saturated_sites=tuple((int(i), int(j)) for i, j in saturated_sites),
        dead_rows=dead_rows,
        dead_cols=dead_cols,
        saturation_kohm=float(saturation_kohm),
    )


def validate_z(
    z: np.ndarray, saturation_kohm: float = 1e6, require_square: bool = True
) -> np.ndarray:
    """Strict engine-boundary check: raise naming the offending channel.

    Returns the validated float64 array on success.
    """
    z = np.asarray(z, dtype=np.float64)
    if z.ndim != 2:
        raise MeasurementValidationError(f"z_kohm must be 2-D, got {z.ndim}-D")
    if require_square and z.shape[0] != z.shape[1]:
        raise MeasurementValidationError(
            f"z_kohm must be square, got {z.shape[0]}x{z.shape[1]}"
        )
    audit = audit_z(z, saturation_kohm=saturation_kohm)
    if not audit.clean:
        raise MeasurementValidationError(
            f"measurement rejected: {audit.describe()}"
        )
    return z


def repair_z(z: np.ndarray, saturation_kohm: float = 1e6) -> tuple[np.ndarray, ChannelAudit]:
    """Repair bad sites by imputing from healthy neighbours.

    Each bad site gets the median of the healthy readings in its row
    and column (falling back to the global healthy median, then to
    1.0 kΩ for a fully dead matrix).  Returns ``(repaired, audit)``
    where ``audit`` describes what was replaced — callers in
    ``validate="repair"`` mode surface it in logs/meta rather than
    silently consuming patched data.
    """
    z = np.asarray(z, dtype=np.float64).copy()
    audit = audit_z(z, saturation_kohm=saturation_kohm)
    if audit.clean:
        return z, audit
    finite = np.isfinite(z)
    good = finite & (z > 0) & (z < saturation_kohm)
    global_median = float(np.median(z[good])) if good.any() else 1.0
    bad_sites = np.argwhere(~good)
    for i, j in bad_sites:
        row_good = z[i, good[i, :]]
        col_good = z[good[:, j], j]
        neighbours = np.concatenate([row_good, col_good])
        z[i, j] = float(np.median(neighbours)) if neighbours.size else global_median
    return z, audit


@dataclass(frozen=True)
class Measurement:
    """One snapshot of a device's pairwise measurements.

    Attributes
    ----------
    z_kohm:
        ``(m, n)`` measured resistances in kΩ; ``z_kohm[i, j]`` is the
        reading between horizontal wire i and vertical wire j.
    voltage:
        Drive voltage in volts (5 V in the paper).
    hour:
        Hours since device setup (0, 6, 12 or 24 in the paper).
    meta:
        Free-form provenance (seed, spec hash, instrument noise, ...).
    """

    z_kohm: np.ndarray
    voltage: float = 5.0
    hour: float = 0.0
    meta: Mapping[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        z = require_positive_array(self.z_kohm, "z_kohm")
        if z.ndim != 2:
            raise ValueError(f"z_kohm must be 2-D, got {z.ndim}-D")
        object.__setattr__(self, "z_kohm", z)
        require_positive(self.voltage, "voltage")
        if self.hour < 0:
            raise ValueError(f"hour must be non-negative, got {self.hour}")

    @property
    def shape(self) -> tuple[int, int]:
        return self.z_kohm.shape  # type: ignore[return-value]

    @property
    def n(self) -> int:
        """Device side for square devices (raises otherwise)."""
        m, n = self.shape
        if m != n:
            raise ValueError(f"device is {m}x{n}, not square")
        return n

    def with_meta(self, **extra: str) -> "Measurement":
        merged = dict(self.meta)
        merged.update(extra)
        return Measurement(
            z_kohm=self.z_kohm, voltage=self.voltage, hour=self.hour, meta=merged
        )


@dataclass(frozen=True)
class MeasurementCampaign:
    """A time series of measurements of one device (one wet-lab day)."""

    measurements: tuple[Measurement, ...]

    def __post_init__(self) -> None:
        if not self.measurements:
            raise ValueError("campaign needs at least one measurement")
        shapes = {m.shape for m in self.measurements}
        if len(shapes) > 1:
            raise ValueError(f"mixed device shapes in campaign: {shapes}")
        hours = [m.hour for m in self.measurements]
        if hours != sorted(hours):
            raise ValueError("measurements must be ordered by hour")

    @property
    def shape(self) -> tuple[int, int]:
        return self.measurements[0].shape

    @property
    def hours(self) -> tuple[float, ...]:
        return tuple(m.hour for m in self.measurements)

    def at_hour(self, hour: float) -> Measurement:
        for m in self.measurements:
            if m.hour == hour:
                return m
        raise KeyError(f"no measurement at hour {hour}; have {self.hours}")

    def __iter__(self) -> Iterator[Measurement]:
        return iter(self.measurements)

    def __len__(self) -> int:
        return len(self.measurements)

    def drift(self) -> np.ndarray:
        """Relative change of Z between first and last snapshot.

        Large positive drift localizes growing anomalies over the day —
        the real-time monitoring use case of §II-C.
        """
        first = self.measurements[0].z_kohm
        last = self.measurements[-1].z_kohm
        return (last - first) / first
