"""Measurement containers for MEA campaigns.

The paper's data arrives as per-timepoint matrices of pairwise
measured resistances ``Z`` (Excel sheets converted to text, measured
at 0/6/12/24 h after device setup).  :class:`Measurement` is one
snapshot; :class:`MeasurementCampaign` is the 4-a-day series.  Both
carry enough metadata (voltage, units, provenance) for the pipeline to
be self-describing, and round-trip through
:mod:`repro.io.textformat`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping

import numpy as np

from repro.utils.validation import require_positive, require_positive_array


@dataclass(frozen=True)
class Measurement:
    """One snapshot of a device's pairwise measurements.

    Attributes
    ----------
    z_kohm:
        ``(m, n)`` measured resistances in kΩ; ``z_kohm[i, j]`` is the
        reading between horizontal wire i and vertical wire j.
    voltage:
        Drive voltage in volts (5 V in the paper).
    hour:
        Hours since device setup (0, 6, 12 or 24 in the paper).
    meta:
        Free-form provenance (seed, spec hash, instrument noise, ...).
    """

    z_kohm: np.ndarray
    voltage: float = 5.0
    hour: float = 0.0
    meta: Mapping[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        z = require_positive_array(self.z_kohm, "z_kohm")
        if z.ndim != 2:
            raise ValueError(f"z_kohm must be 2-D, got {z.ndim}-D")
        object.__setattr__(self, "z_kohm", z)
        require_positive(self.voltage, "voltage")
        if self.hour < 0:
            raise ValueError(f"hour must be non-negative, got {self.hour}")

    @property
    def shape(self) -> tuple[int, int]:
        return self.z_kohm.shape  # type: ignore[return-value]

    @property
    def n(self) -> int:
        """Device side for square devices (raises otherwise)."""
        m, n = self.shape
        if m != n:
            raise ValueError(f"device is {m}x{n}, not square")
        return n

    def with_meta(self, **extra: str) -> "Measurement":
        merged = dict(self.meta)
        merged.update(extra)
        return Measurement(
            z_kohm=self.z_kohm, voltage=self.voltage, hour=self.hour, meta=merged
        )


@dataclass(frozen=True)
class MeasurementCampaign:
    """A time series of measurements of one device (one wet-lab day)."""

    measurements: tuple[Measurement, ...]

    def __post_init__(self) -> None:
        if not self.measurements:
            raise ValueError("campaign needs at least one measurement")
        shapes = {m.shape for m in self.measurements}
        if len(shapes) > 1:
            raise ValueError(f"mixed device shapes in campaign: {shapes}")
        hours = [m.hour for m in self.measurements]
        if hours != sorted(hours):
            raise ValueError("measurements must be ordered by hour")

    @property
    def shape(self) -> tuple[int, int]:
        return self.measurements[0].shape

    @property
    def hours(self) -> tuple[float, ...]:
        return tuple(m.hour for m in self.measurements)

    def at_hour(self, hour: float) -> Measurement:
        for m in self.measurements:
            if m.hour == hour:
                return m
        raise KeyError(f"no measurement at hour {hour}; have {self.hours}")

    def __iter__(self) -> Iterator[Measurement]:
        return iter(self.measurements)

    def __len__(self) -> int:
        return len(self.measurements)

    def drift(self) -> np.ndarray:
        """Relative change of Z between first and last snapshot.

        Large positive drift localizes growing anomalies over the day —
        the real-time monitoring use case of §II-C.
        """
        first = self.measurements[0].z_kohm
        last = self.measurements[-1].z_kohm
        return (last - first) / first
