"""k-dimensional equidistant MEA generalization (paper §IV-B).

The paper generalizes the 2-D crossbar to a k-dimensional equidistant
device and claims ``(n-1)^k`` independent unit cells ("holes") as the
parallelism budget, giving the ``O(n^{k+1}) / (n-1)^k = O(n)``
asymptotic argument.  This module provides the lattice model behind
those counts:

* :class:`KDimMEA` — an ``n^k`` lattice of measurement sites with axis-
  aligned nearest-neighbour wiring;
* exact formulas and explicit constructions for vertex/edge/cell
  counts, cyclomatic number, and the unit-cell enumeration used by the
  Betti-aware partitioner.
"""

from __future__ import annotations

from itertools import product
from typing import Iterator

import networkx as nx

from repro.utils.validation import require_positive_int

Site = tuple[int, ...]


class KDimMEA:
    """An equidistant k-dimensional MEA lattice of side ``n``.

    Vertices are lattice sites ``(x_1, ..., x_k)`` with
    ``0 <= x_a < n``; edges join sites differing by 1 in exactly one
    coordinate.  For ``k = 2`` this is precisely the Figure-2 resistor
    graph of the square device.
    """

    def __init__(self, n: int, k: int) -> None:
        self.n = require_positive_int(n, "n", minimum=2)
        self.k = require_positive_int(k, "k", minimum=1)

    # -- counting (closed forms, all verified against constructions) ----

    @property
    def num_sites(self) -> int:
        """``n^k`` lattice sites."""
        return self.n**self.k

    @property
    def num_edges(self) -> int:
        """``k * (n-1) * n^(k-1)`` nearest-neighbour links."""
        return self.k * (self.n - 1) * self.n ** (self.k - 1)

    @property
    def num_unit_cells(self) -> int:
        """``(n-1)^k`` axis-aligned unit hypercubes — §IV-B's parallelism."""
        return (self.n - 1) ** self.k

    @property
    def num_unit_squares(self) -> int:
        """2-D faces of the lattice: ``C(k,2) * (n-1)^2 * n^(k-2)``.

        For ``k = 2`` the squares are exactly the independent cycles
        (β1); for ``k > 2`` they over-count β1 — squares satisfy one
        relation per cube — while ``num_unit_cells`` under-counts it.
        The paper's ``(n-1)^k`` counts top-dimensional cells.
        """
        if self.k < 2:
            return 0
        comb = self.k * (self.k - 1) // 2
        return comb * (self.n - 1) ** 2 * self.n ** (self.k - 2)

    def cyclomatic_number(self) -> int:
        """``|E| - |V| + 1`` (the lattice is connected)."""
        return self.num_edges - self.num_sites + 1

    def joint_constraint_count(self) -> int:
        """``O(n^{k+1})`` joint constraints: ``2 n^{k+1}`` by the paper's
        2-D construction (``2n`` constraints per endpoint pair, ``n^k``
        pairs in k dimensions)."""
        return 2 * self.n ** (self.k + 1)

    def theoretical_parallel_time_units(self) -> int:
        """§IV-B headline: constraints / unit cells ≈ O(n).

        Returns ``ceil(joint_constraints / unit_cells)`` — the per-hole
        serial share that the paper argues is linear in ``n``.
        """
        cells = self.num_unit_cells
        return -(-self.joint_constraint_count() // cells)

    # -- constructions ----------------------------------------------------

    def sites(self) -> Iterator[Site]:
        """Lattice sites in row-major (lexicographic) order."""
        return product(range(self.n), repeat=self.k)

    def edges(self) -> Iterator[tuple[Site, Site]]:
        """Nearest-neighbour edges, each emitted once, deterministic order."""
        for site in self.sites():
            for axis in range(self.k):
                if site[axis] + 1 < self.n:
                    nbr = site[:axis] + (site[axis] + 1,) + site[axis + 1 :]
                    yield site, nbr

    def unit_cells(self) -> Iterator[Site]:
        """Anchor corners of the ``(n-1)^k`` unit cells."""
        return product(range(self.n - 1), repeat=self.k)

    def unit_cell_vertices(self, anchor: Site) -> list[Site]:
        """The ``2^k`` corners of the unit cell anchored at ``anchor``."""
        if len(anchor) != self.k:
            raise ValueError(f"anchor must have {self.k} coordinates")
        if any(not 0 <= a < self.n - 1 for a in anchor):
            raise ValueError(f"anchor {anchor} out of range")
        corners = []
        for offsets in product((0, 1), repeat=self.k):
            corners.append(tuple(a + o for a, o in zip(anchor, offsets)))
        return corners

    def to_networkx(self) -> nx.Graph:
        g = nx.Graph()
        g.add_nodes_from(self.sites())
        g.add_edges_from(self.edges())
        return g

    def __repr__(self) -> str:
        return f"KDimMEA(n={self.n}, k={self.k})"
