"""Synthetic ground-truth resistance fields.

The wet-lab data behind the paper (cells on a medium; local resistance
rising sharply over anomalous regions, §II-C) is not publicly
available, so experiments here run on synthetic fields with the same
statistics the paper reports: resistances in the **2,000–11,000 kΩ**
band, a roughly uniform healthy baseline, and compact high-resistance
anomaly blobs.

All values are in kilohm to match the paper's reporting; the forward
solver is unit-agnostic as long as R and Z use the same unit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.utils.rng import default_rng
from repro.utils.validation import (
    require_in_range,
    require_positive,
    require_positive_int,
)

#: The paper's reported wet-lab range (kΩ).
PAPER_R_MIN_KOHM = 2_000.0
PAPER_R_MAX_KOHM = 11_000.0
#: The paper's drive voltage (volts).
PAPER_VOLTAGE = 5.0


@dataclass(frozen=True)
class AnomalyBlob:
    """A compact elevated-resistance region (e.g. a cancerous patch).

    ``center`` is (row, col) in resistor coordinates, ``radius`` in
    grid units; ``magnitude`` multiplies the baseline inside the blob
    with a smooth (cosine) falloff to the edge.
    """

    center: tuple[float, float]
    radius: float
    magnitude: float

    def __post_init__(self) -> None:
        require_positive(self.radius, "radius")
        if self.magnitude < 1.0:
            raise ValueError(
                f"magnitude must be >= 1 (anomalies raise R), got {self.magnitude}"
            )

    def factor(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Multiplicative factor of the blob at each (row, col) pair."""
        d = np.hypot(rows - self.center[0], cols - self.center[1])
        inside = d < self.radius
        fall = 0.5 * (1.0 + np.cos(np.pi * np.clip(d / self.radius, 0.0, 1.0)))
        return np.where(inside, 1.0 + (self.magnitude - 1.0) * fall, 1.0)


@dataclass(frozen=True)
class FieldSpec:
    """Recipe for a synthetic R field.

    Attributes
    ----------
    n:
        Device side (square ``n x n``).
    baseline_kohm:
        Healthy-tissue resistance level.
    noise_rel:
        Relative i.i.d. lognormal spread of the baseline (cell-to-cell
        variation), e.g. 0.05 = ~5 %.
    blobs:
        Anomalies to embed.
    clip_to_paper_range:
        If True (default), clip the final field into the paper's
        2,000–11,000 kΩ band.
    """

    n: int
    baseline_kohm: float = 3_000.0
    noise_rel: float = 0.05
    blobs: tuple[AnomalyBlob, ...] = field(default_factory=tuple)
    clip_to_paper_range: bool = True

    def __post_init__(self) -> None:
        require_positive_int(self.n, "n", minimum=2)
        require_positive(self.baseline_kohm, "baseline_kohm")
        require_in_range(self.noise_rel, "noise_rel", 0.0, 1.0)


def generate_field(spec: FieldSpec, seed: int | None = None) -> np.ndarray:
    """Materialise ``spec`` into an ``(n, n)`` float64 array of kΩ.

    Deterministic in ``(spec, seed)``.
    """
    rng = default_rng(seed)
    n = spec.n
    rows, cols = np.mgrid[0:n, 0:n].astype(np.float64)
    base = np.full((n, n), spec.baseline_kohm, dtype=np.float64)
    if spec.noise_rel > 0:
        sigma = np.log1p(spec.noise_rel)
        base *= rng.lognormal(mean=0.0, sigma=sigma, size=(n, n))
    for blob in spec.blobs:
        base *= blob.factor(rows, cols)
    if spec.clip_to_paper_range:
        base = np.clip(base, PAPER_R_MIN_KOHM, PAPER_R_MAX_KOHM)
        # Clipping can only pull anomalies *down*; the healthy baseline
        # must already sit inside the band for the anomaly contrast to
        # survive, which FieldSpec defaults guarantee.
    return base


def random_blobs(
    n: int,
    count: int,
    seed: int | None = None,
    radius_range: tuple[float, float] | None = None,
    magnitude_range: tuple[float, float] = (2.0, 3.5),
) -> tuple[AnomalyBlob, ...]:
    """Sample ``count`` anomaly blobs on an ``n x n`` grid.

    The default radius range scales with the device (~10–25 % of the
    side), so the same call works from 4x4 toy grids to the paper's
    100x100 devices.  Blobs prefer to be disjoint; if the grid is too
    crowded to separate them, overlap is allowed rather than failing —
    overlapping anomalies are physically plausible (merging lesions).
    """
    require_positive_int(n, "n", minimum=2)
    if count < 0:
        raise ValueError("count must be non-negative")
    if radius_range is None:
        radius_range = (max(0.8, 0.10 * n), max(1.2, 0.25 * n))
    rng = default_rng(seed)
    blobs: list[AnomalyBlob] = []
    attempts = 0
    while len(blobs) < count:
        attempts += 1
        require_separation = attempts <= 200 * (count + 1)
        r = float(rng.uniform(*radius_range))
        c = (
            float(rng.uniform(r, n - 1 - r)) if n - 1 > 2 * r else (n - 1) / 2.0,
            float(rng.uniform(r, n - 1 - r)) if n - 1 > 2 * r else (n - 1) / 2.0,
        )
        if require_separation and any(
            np.hypot(c[0] - b.center[0], c[1] - b.center[1]) < r + b.radius
            for b in blobs
        ):
            continue
        blobs.append(
            AnomalyBlob(
                center=c,
                radius=r,
                magnitude=float(rng.uniform(*magnitude_range)),
            )
        )
    return tuple(blobs)


def anomaly_mask(spec: FieldSpec) -> np.ndarray:
    """Boolean ground-truth mask: True where any blob covers the site."""
    n = spec.n
    rows, cols = np.mgrid[0:n, 0:n].astype(np.float64)
    mask = np.zeros((n, n), dtype=bool)
    for blob in spec.blobs:
        d = np.hypot(rows - blob.center[0], cols - blob.center[1])
        mask |= d < blob.radius
    return mask


def paper_like_spec(
    n: int, num_anomalies: int = 2, seed: int | None = None
) -> FieldSpec:
    """A ready-made spec matching the paper's reported statistics."""
    blobs = random_blobs(n, num_anomalies, seed=seed)
    return FieldSpec(n=n, baseline_kohm=3_000.0, noise_rel=0.05, blobs=blobs)


def growth_sequence(
    spec: FieldSpec, hours: Sequence[float] = (0.0, 6.0, 12.0, 24.0),
    growth_per_hour: float = 0.02,
) -> list[FieldSpec]:
    """Time-evolved specs for the wet-lab 0/6/12/24 h campaign.

    Anomaly radius and magnitude grow exponentially at
    ``growth_per_hour`` — the monotone "cells proliferate" model used
    by :mod:`repro.mea.wetlab`.
    """
    out: list[FieldSpec] = []
    for h in hours:
        scale = float(np.exp(growth_per_hour * h))
        blobs = tuple(
            AnomalyBlob(
                center=b.center,
                radius=b.radius * scale,
                magnitude=1.0 + (b.magnitude - 1.0) * scale,
            )
            for b in spec.blobs
        )
        out.append(
            FieldSpec(
                n=spec.n,
                baseline_kohm=spec.baseline_kohm,
                noise_rel=spec.noise_rel,
                blobs=blobs,
                clip_to_paper_range=spec.clip_to_paper_range,
            )
        )
    return out
