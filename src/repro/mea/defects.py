"""Manufacturing-defect models: open and shorted crossings.

Real crossbar MEAs ship with fabrication defects — a crossing whose
resistor never formed (an *open*: R → ∞, no current path) or whose
insulation failed (a *short*: R → 0, wires welded).  Parametrizing a
device is also how labs screen for them: an open reads as an extreme
recovered R, a short as a near-zero one.

Numerically, true 0/∞ would break the positive-resistance invariants
(and the log parametrization), so defects are represented by clamped
extreme values — ``OPEN_KOHM`` (10⁹ kΩ: ≥ 10⁵× any tissue value, so
< 0.001 % of pair current crosses it) and ``SHORT_KOHM`` (10⁻³ kΩ).
The forward model stays exact; :func:`classify_crossings` recovers the
defect map from a recovered field with order-of-magnitude margins.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mea.synthetic import PAPER_R_MAX_KOHM, PAPER_R_MIN_KOHM
from repro.utils.rng import default_rng
from repro.utils.validation import require_in_range, require_shape

#: Clamped extreme values standing in for R = ∞ / R = 0.
OPEN_KOHM = 1e9
SHORT_KOHM = 1e-3

#: Classification thresholds (geometric midpoints leave ~100x margin
#: on each side of the healthy 2,000-11,000 kΩ band).
OPEN_THRESHOLD_KOHM = 1e6
SHORT_THRESHOLD_KOHM = 1.0

CROSSING_OK = 0
CROSSING_OPEN = 1
CROSSING_SHORT = 2


@dataclass(frozen=True)
class DefectMap:
    """Per-crossing defect codes (0 = ok, 1 = open, 2 = short)."""

    codes: np.ndarray

    def __post_init__(self) -> None:
        codes = np.asarray(self.codes, dtype=np.int8)
        require_shape(codes, (None, None), "codes")
        if not np.isin(codes, (CROSSING_OK, CROSSING_OPEN, CROSSING_SHORT)).all():
            raise ValueError("codes must be 0 (ok), 1 (open) or 2 (short)")
        object.__setattr__(self, "codes", codes)

    @property
    def num_opens(self) -> int:
        return int((self.codes == CROSSING_OPEN).sum())

    @property
    def num_shorts(self) -> int:
        return int((self.codes == CROSSING_SHORT).sum())

    @property
    def num_defects(self) -> int:
        return self.num_opens + self.num_shorts

    def open_sites(self) -> list[tuple[int, int]]:
        return [
            (int(r), int(c))
            for r, c in np.argwhere(self.codes == CROSSING_OPEN)
        ]

    def short_sites(self) -> list[tuple[int, int]]:
        return [
            (int(r), int(c))
            for r, c in np.argwhere(self.codes == CROSSING_SHORT)
        ]

    def agreement(self, other: "DefectMap") -> float:
        """Fraction of crossings classified identically."""
        if self.codes.shape != other.codes.shape:
            raise ValueError("defect maps have different shapes")
        return float((self.codes == other.codes).mean())


def random_defects(
    shape: tuple[int, int],
    open_rate: float = 0.02,
    short_rate: float = 0.01,
    seed: int | None = None,
) -> DefectMap:
    """Sample i.i.d. defects at the given per-crossing rates."""
    require_in_range(open_rate, "open_rate", 0.0, 0.5)
    require_in_range(short_rate, "short_rate", 0.0, 0.5)
    if open_rate + short_rate > 0.5:
        raise ValueError("combined defect rate above 50% is not a device")
    rng = default_rng(seed)
    u = rng.random(shape)
    codes = np.zeros(shape, dtype=np.int8)
    codes[u < open_rate] = CROSSING_OPEN
    codes[(u >= open_rate) & (u < open_rate + short_rate)] = CROSSING_SHORT
    return DefectMap(codes=codes)


def apply_defects(resistance: np.ndarray, defects: DefectMap) -> np.ndarray:
    """Overlay defects onto a healthy resistance field (returns copy)."""
    r = np.array(resistance, dtype=np.float64, copy=True)
    if r.shape != defects.codes.shape:
        raise ValueError("field and defect map shapes differ")
    r[defects.codes == CROSSING_OPEN] = OPEN_KOHM
    r[defects.codes == CROSSING_SHORT] = SHORT_KOHM
    return r


def classify_crossings(recovered: np.ndarray) -> DefectMap:
    """Screen a recovered field for defects by magnitude.

    Healthy tissue lives in 2,000–11,000 kΩ; anything beyond
    ``OPEN_THRESHOLD_KOHM`` (or below ``SHORT_THRESHOLD_KOHM``) is
    physically impossible for tissue and flags the crossing.
    """
    r = np.asarray(recovered, dtype=np.float64)
    codes = np.zeros(r.shape, dtype=np.int8)
    codes[r > OPEN_THRESHOLD_KOHM] = CROSSING_OPEN
    codes[r < SHORT_THRESHOLD_KOHM] = CROSSING_SHORT
    return DefectMap(codes=codes)


def healthy_band_violations(recovered: np.ndarray) -> np.ndarray:
    """Boolean mask of crossings outside the paper's healthy band
    (softer than defect classification: flags suspect calibration)."""
    r = np.asarray(recovered, dtype=np.float64)
    return (r < PAPER_R_MIN_KOHM / 2) | (r > 2 * PAPER_R_MAX_KOHM)
