"""MEA device models, graph abstractions, and (simulated) wet-lab data.

* :mod:`repro.mea.device` — the physical ``m x n`` crossbar: wires,
  joints, resistors, Figure-1 numbering.
* :mod:`repro.mea.graph` — joint graph (Fig. 1), resistor graph
  (Fig. 2), collapsed electrical wire graph, and simplicial-complex
  views (Proposition 1).
* :mod:`repro.mea.kdim` — k-dimensional equidistant generalization
  and the ``(n-1)^k`` unit-cell counts of §IV-B.
* :mod:`repro.mea.synthetic` — ground-truth resistance fields with
  anomaly blobs in the paper's 2,000–11,000 kΩ band.
* :mod:`repro.mea.wetlab` — the forward-simulated measurement campaign
  standing in for the paper's wet-lab device (see DESIGN.md §2).
* :mod:`repro.mea.dataset` — measurement containers.
"""

from repro.mea.dataset import (
    ChannelAudit,
    Measurement,
    MeasurementCampaign,
    MeasurementValidationError,
    audit_z,
    repair_z,
    validate_z,
)
from repro.mea.defects import (
    DefectMap,
    apply_defects,
    classify_crossings,
    random_defects,
)
from repro.mea.device import (
    Joint,
    MEAGrid,
    Resistor,
    horizontal_wire_name,
    roman_numeral,
    vertical_wire_name,
)
from repro.mea.graph import (
    device_complex,
    expected_betti,
    joint_graph,
    mesh_count,
    resistor_complex,
    resistor_graph,
    wire_graph,
)
from repro.mea.kdim import KDimMEA
from repro.mea.lattice import LatticeDevice, uniform_face_resistance_exact
from repro.mea.synthetic import (
    PAPER_R_MAX_KOHM,
    PAPER_R_MIN_KOHM,
    PAPER_VOLTAGE,
    AnomalyBlob,
    FieldSpec,
    anomaly_mask,
    generate_field,
    paper_like_spec,
    random_blobs,
)
from repro.mea.wetlab import (
    WetLabConfig,
    WetLabRun,
    quick_device_data,
    run_campaign,
    simulate_measurement,
)

__all__ = [
    "AnomalyBlob",
    "DefectMap",
    "apply_defects",
    "classify_crossings",
    "random_defects",
    "FieldSpec",
    "Joint",
    "KDimMEA",
    "LatticeDevice",
    "uniform_face_resistance_exact",
    "ChannelAudit",
    "MEAGrid",
    "Measurement",
    "MeasurementCampaign",
    "MeasurementValidationError",
    "audit_z",
    "repair_z",
    "validate_z",
    "PAPER_R_MAX_KOHM",
    "PAPER_R_MIN_KOHM",
    "PAPER_VOLTAGE",
    "Resistor",
    "WetLabConfig",
    "WetLabRun",
    "anomaly_mask",
    "device_complex",
    "expected_betti",
    "generate_field",
    "horizontal_wire_name",
    "joint_graph",
    "mesh_count",
    "paper_like_spec",
    "quick_device_data",
    "random_blobs",
    "resistor_complex",
    "resistor_graph",
    "roman_numeral",
    "run_campaign",
    "simulate_measurement",
    "vertical_wire_name",
    "wire_graph",
]
