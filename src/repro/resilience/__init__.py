"""Resilience: fault injection, checkpoint/resume, retry, degradation.

The paper's target workload (§II-C) is "(almost) real-time anomaly
detection" over whole wet-lab days.  At that horizon faults are not
exceptional — workers die, part files tear, electrodes go dead,
solves diverge — and a run that discards a day of completed
timepoints on the first fault is not a production system.  This
subpackage makes every failure mode *injectable* (so recovery is
testable) and every layer *recoverable*:

* :mod:`repro.resilience.atomio` — tmp+fsync+rename atomic writes;
* :mod:`repro.resilience.faults` — deterministic, seeded fault
  injection (worker kills, block corruption, dirty measurements,
  solver divergence, simulated aborts);
* :mod:`repro.resilience.retry` — bounded retries with backoff and a
  serial re-dispatch fallback for formation;
* :mod:`repro.resilience.checkpoint` — manifest-journaled campaign
  and streaming checkpoints with checksum-verified resume;
* :mod:`repro.resilience.degrade` — the solver degradation ladder
  (primary → cold-start → regularized → bounded);
* :mod:`repro.resilience.supervise` — deadline budgets plus heartbeat
  supervision of parallel regions (hung-worker watchdog, straggler
  speculation, partial-result salvage).

Attribute access is lazy (PEP 562): the low layers (``atomio``,
``faults``) are importable from anywhere — including
:mod:`repro.io.equations_io`, *below* this package — without pulling
in ``checkpoint``/``retry``/``degrade``, which depend on the core and
io layers.

See DESIGN.md §6 and docs/RESILIENCE.md.
"""

from __future__ import annotations

_EXPORTS = {
    # atomio
    "AtomicFile": "atomio",
    "atomic_open": "atomio",
    "atomic_write_bytes": "atomio",
    "atomic_write_json": "atomio",
    "atomic_write_text": "atomio",
    # faults
    "KILLED_WORKER_EXIT": "faults",
    "FaultInjector": "faults",
    "FaultPlan": "faults",
    "InjectedAbort": "faults",
    "InjectedSolverFault": "faults",
    "as_injector": "faults",
    # retry
    "RetryExhausted": "retry",
    "RetryOutcome": "retry",
    "RetryPolicy": "retry",
    "form_with_recovery": "retry",
    "run_with_retry": "retry",
    # degrade
    "LADDER_RUNGS": "degrade",
    "DegradationReport": "degrade",
    "SolverDegradationError": "degrade",
    "solve_with_degradation": "degrade",
    # supervise
    "DEADLINE_EXIT_CODE": "supervise",
    "Deadline": "supervise",
    "DeadlineExceeded": "supervise",
    "HeartbeatBoard": "supervise",
    "Supervisor": "supervise",
    # checkpoint
    "CampaignCheckpoint": "checkpoint",
    "CheckpointError": "checkpoint",
    "StreamCheckpoint": "checkpoint",
    "StreamResumeReport": "checkpoint",
    "stream_to_file_checkpointed": "checkpoint",
    "verify_stream_directory": "checkpoint",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module 'repro.resilience' has no attribute {name!r}"
        ) from None
    import importlib

    module = importlib.import_module(f"repro.resilience.{module_name}")
    value = getattr(module, name)
    globals()[name] = value  # cache for the next access
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
