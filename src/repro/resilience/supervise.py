"""Deadline-aware worker supervision: heartbeats, watchdog, stragglers.

The fork/join regions of :mod:`repro.parallel.pymp` originally joined
with a *blocking*, rank-ordered ``os.waitpid``: one hung worker
stalled the whole solve forever, invisible to the retry layer (which
only reacts to nonzero exit codes).  On large MEA workloads wall-clock
is dominated by the slowest worker, so a production run needs three
properties this module provides:

* **liveness is observable** — every region member updates a
  per-worker heartbeat slot (:class:`HeartbeatBoard`, an anonymous
  shared ``mmap`` created before the fork) each time it pulls or
  completes work, so the parent can distinguish *slow* from *dead*;
* **hangs are bounded** — a :class:`Supervisor` reaps whichever child
  exits first (``os.WNOHANG`` + poll), declares a worker hung when its
  heartbeat stalls past ``stall_timeout``, escalates SIGTERM → SIGKILL
  and surfaces the loss as
  :class:`repro.parallel.pymp.WorkerStalled` carrying every rank's
  last recorded progress;
* **time is budgeted** — a :class:`Deadline` (monotonic wall-clock)
  rides from the CLI through engine, pipeline, strategies, streaming
  and the MPI launcher; when it expires, remaining workers are killed
  (no orphans) and :class:`DeadlineExceeded` maps to the dedicated
  exit status :data:`DEADLINE_EXIT_CODE`.

Stragglers and salvage are built on top by the formation strategies
(:mod:`repro.core.strategies`): once ``straggler_threshold`` of the
region's items are done, the supervisor invokes the strategy's
``on_straggler`` hook so the parent can speculatively re-form the tail
of a slow worker's share, and on any worker loss only the *missing*
blocks are re-formed — completed shares are verified against the O(1)
template checksum table and kept.
"""

from __future__ import annotations

import os
import signal
import time
from typing import Any, Callable

import numpy as np

from repro.observe.observer import as_observer
from repro.parallel import pymp

#: Process exit status the CLI returns when a run's :class:`Deadline`
#: expires (distinct from 1 = failure and 2 = usage; chosen away from
#: coreutils ``timeout``'s 124 so CI can tell the two apart).  The
#: solve service maps its ``deadline-exceeded`` response status to the
#: same code, so ``parma submit`` and ``parma solve --deadline`` are
#: script-compatible (full table in ``docs/SERVING.md``).
DEADLINE_EXIT_CODE = 94

#: First sleep of the supervised reap loop's adaptive backoff; doubles
#: up to ``Supervisor.poll_interval`` while nothing is exiting.
_POLL_SLEEP_MIN = 0.001


class DeadlineExceeded(RuntimeError):
    """The wall-clock budget ran out before the work completed.

    ``partial`` optionally carries whatever completed results the
    raising layer could salvage (e.g. the finished timepoints of an
    interrupted campaign), so callers can report instead of discard.
    """

    def __init__(
        self, message: str, deadline: "Deadline | None" = None, partial: Any = None
    ) -> None:
        super().__init__(message)
        self.deadline = deadline
        self.partial = partial


class Deadline:
    """A monotonic wall-clock budget, started at construction.

    The clock is ``time.monotonic`` so the budget is immune to wall
    clock steps; one ``Deadline`` object is shared by every layer of a
    run (engine → pipeline → strategies → streaming → MPI dispatch) so
    they all drain the *same* budget.
    """

    __slots__ = ("seconds", "_t0")

    def __init__(self, seconds: float, _t0: float | None = None) -> None:
        seconds = float(seconds)
        if not seconds > 0:
            raise ValueError(f"deadline must be positive, got {seconds}")
        self.seconds = seconds
        self._t0 = time.monotonic() if _t0 is None else float(_t0)

    @classmethod
    def coerce(cls, value: "Deadline | float | int | None") -> "Deadline | None":
        """None passes through; numbers become a fresh running budget."""
        if value is None or isinstance(value, Deadline):
            return value
        return cls(value)

    @classmethod
    def capped(
        cls,
        value: "Deadline | float | int | None",
        cap: float | None,
    ) -> "Deadline | None":
        """Coerce a requested budget, clamped to a policy maximum.

        The solve service admits per-request deadlines but must not
        let one request reserve an executor forever, so admission caps
        the request's budget at the service's ``max_deadline``.  With
        no request budget and no cap the result is None (unbounded);
        with only a cap, the cap *is* the budget — an operator cap
        bounds every request, including those that asked for none.
        """
        if cap is None:
            return cls.coerce(value)
        cap = float(cap)
        if value is None:
            return cls(cap)
        if isinstance(value, Deadline):
            if value.seconds <= cap:
                return value
            return cls(cap, _t0=value._t0)
        return cls(min(float(value), cap))

    def elapsed(self) -> float:
        return time.monotonic() - self._t0

    def remaining(self) -> float:
        return self.seconds - self.elapsed()

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def check(self, what: str = "work") -> None:
        """Raise :class:`DeadlineExceeded` if the budget is spent."""
        if self.expired:
            raise DeadlineExceeded(
                f"deadline of {self.seconds:g}s exceeded "
                f"({self.elapsed():.2f}s elapsed) before {what}",
                deadline=self,
            )

    def __repr__(self) -> str:
        return f"Deadline({self.seconds:g}s, remaining={self.remaining():.2f}s)"


class HeartbeatBoard:
    """Per-worker progress slots in anonymous shared memory.

    One row per region member: ``[items_done, items_assigned,
    last_beat (monotonic seconds), state]``.  Rows live in anonymous
    ``MAP_SHARED`` mappings (:func:`repro.parallel.pymp.shared_array`),
    so each mapping must be created *before* the fork of any worker
    that will write to it; a tick is two array stores plus one
    ``time.monotonic`` call — cheap enough for per-item use.
    ``dump()`` serialises a snapshot for error payloads and events.

    The board is *growable*: :meth:`grow` appends a fresh shared
    segment of rows (again, pre-fork) so an elastic pool can admit
    workers mid-campaign.  Existing rows — and the mappings already
    inherited by running children — are untouched, so pre-growth
    workers keep beating into the same memory.
    """

    STATE_STARTING = 0.0
    STATE_RUNNING = 1.0
    STATE_DONE = 2.0

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        first = pymp.shared_array((int(workers), 4), dtype=np.float64)
        first[:, 2] = time.monotonic()
        self._segments: list[np.ndarray] = [first]

    @property
    def workers(self) -> int:
        """Total rows across all segments (grows with :meth:`grow`)."""
        return sum(seg.shape[0] for seg in self._segments)

    @property
    def _slots(self) -> np.ndarray:
        """The initial segment (compatibility view for fixed-size users)."""
        return self._segments[0]

    def grow(self, extra: int = 1) -> int:
        """Append ``extra`` rows in a new shared segment; return the
        index of the first new row.

        Must be called in the parent *before* forking the workers that
        will own the new rows — children forked earlier cannot see the
        new mapping (and never need to: rows are single-writer).
        """
        if extra < 1:
            raise ValueError(f"extra must be >= 1, got {extra}")
        first_new = self.workers
        segment = pymp.shared_array((int(extra), 4), dtype=np.float64)
        segment[:, 2] = time.monotonic()
        self._segments.append(segment)
        return first_new

    def _row(self, worker: int) -> np.ndarray:
        if worker < 0:
            raise IndexError(f"worker index must be >= 0, got {worker}")
        for seg in self._segments:
            rows = seg.shape[0]
            if worker < rows:
                return seg[worker]
            worker -= rows
        raise IndexError(f"worker {worker + self.workers} out of range")

    # -- worker side ---------------------------------------------------------

    def assign(self, worker: int, total: int) -> None:
        row = self._row(worker)
        row[1] = float(total)
        row[2] = time.monotonic()
        row[3] = self.STATE_RUNNING

    def provisional_assign(self, worker: int, amount: float) -> None:
        """Parent-side estimate of a share size, pre-fork.

        Overwritten by the worker's own :meth:`assign` once it knows
        its exact share; keeps ``progress()`` denominators meaningful
        from the first poll."""
        self._row(worker)[1] = float(amount)

    def tick(self, worker: int, advance: int = 1) -> None:
        row = self._row(worker)
        row[0] += float(advance)
        row[2] = time.monotonic()

    def mark_done(self, worker: int) -> None:
        row = self._row(worker)
        row[2] = time.monotonic()
        row[3] = self.STATE_DONE

    # -- parent side ---------------------------------------------------------

    def items_done(self, worker: int) -> int:
        return int(self._row(worker)[0])

    def is_done(self, worker: int) -> bool:
        return self._row(worker)[3] == self.STATE_DONE

    def age(self, worker: int, now: float | None = None) -> float:
        """Seconds since the worker's last heartbeat."""
        now = time.monotonic() if now is None else now
        return now - float(self._row(worker)[2])

    def progress(self) -> tuple[int, int]:
        """(items done, items assigned) across the whole region."""
        done = sum(float(seg[:, 0].sum()) for seg in self._segments)
        assigned = sum(float(seg[:, 1].sum()) for seg in self._segments)
        return int(done), int(assigned)

    def dump(self, now: float | None = None) -> dict[int, dict[str, float]]:
        """Snapshot per-rank progress for error payloads and events."""
        now = time.monotonic() if now is None else now
        out: dict[int, dict[str, float]] = {}
        w = 0
        for seg in self._segments:
            for i in range(seg.shape[0]):
                out[w] = {
                    "items_done": float(seg[i, 0]),
                    "items_assigned": float(seg[i, 1]),
                    "age_seconds": round(now - float(seg[i, 2]), 4),
                    "done": bool(seg[i, 3] == self.STATE_DONE),
                }
                w += 1
        return out


def kill_process(
    pid: int, term_grace: float = 1.0, poll_interval: float = 0.02
) -> int:
    """SIGTERM, wait ``term_grace`` seconds, SIGKILL; returns the exit code.

    The escalation ladder both :class:`Supervisor` and the serve-side
    :class:`repro.serve.executor.ExecutorPool` use to retire a child:
    polite first (atexit/finally blocks get to run), forceful after the
    grace window, and always reaped — the return value is the child's
    exit code (negative signal number when it died to a signal).
    """
    for sig, grace in (
        (signal.SIGTERM, term_grace),
        (signal.SIGKILL, None),
    ):
        try:
            os.kill(pid, sig)
        except ProcessLookupError:
            pass
        t_end = None if grace is None else time.monotonic() + grace
        while True:
            try:
                wpid, status = os.waitpid(pid, 0 if grace is None else os.WNOHANG)
            except ChildProcessError:  # pragma: no cover - stolen reap
                return -int(sig)
            if wpid != 0:
                return os.waitstatus_to_exitcode(status)
            if t_end is not None and time.monotonic() >= t_end:
                break
            time.sleep(min(poll_interval, 0.01))
    return -int(signal.SIGKILL)  # pragma: no cover - unreachable


class Supervisor:
    """Watches one parallel region at a time: reap, watchdog, deadline.

    Pass a ``Supervisor`` to :class:`repro.parallel.pymp.Parallel`
    (the formation strategies do this when the engine runs with
    ``stall_timeout``/``deadline``) and the region join becomes a
    non-blocking poll loop:

    * children are reaped in *completion* order (``os.WNOHANG``), so a
      hung rank 1 no longer masks rank 3's crash diagnostics;
    * a worker whose heartbeat stalls past ``stall_timeout`` while not
      done is declared hung: SIGTERM, then SIGKILL after
      ``term_grace`` seconds, surfaced as ``WorkerStalled`` with every
      rank's last progress;
    * when the :class:`Deadline` expires mid-region all remaining
      children are killed (orphan cleanup) and
      :class:`DeadlineExceeded` is raised;
    * once ``straggler_threshold`` of assigned items are done, a slow
      (but alive) worker triggers the ``on_straggler`` hook so the
      caller can speculatively re-execute its tail.

    ``salvage`` is advisory state read by the formation strategies:
    when True (default) a lost worker's share is re-formed in the
    parent instead of failing/retrying the whole region.
    """

    def __init__(
        self,
        stall_timeout: float | None = None,
        deadline: Deadline | float | None = None,
        poll_interval: float = 0.02,
        term_grace: float = 1.0,
        salvage: bool = True,
        straggler_threshold: float = 0.8,
        straggler_age: float | None = None,
        observer=None,
    ) -> None:
        if stall_timeout is not None and not stall_timeout > 0:
            raise ValueError("stall_timeout must be positive (or None)")
        if not 0.0 < straggler_threshold <= 1.0:
            raise ValueError("straggler_threshold must be in (0, 1]")
        self.stall_timeout = stall_timeout
        self.deadline = Deadline.coerce(deadline)
        self.poll_interval = float(poll_interval)
        self.term_grace = float(term_grace)
        self.salvage = bool(salvage)
        self.straggler_threshold = float(straggler_threshold)
        # A worker counts as a straggler when the tail threshold is
        # reached and it has not beaten for this long (default: half
        # the stall timeout, so speculation starts before the kill).
        if straggler_age is None and stall_timeout is not None:
            straggler_age = stall_timeout / 2.0
        self.straggler_age = straggler_age
        self.observer = observer
        self.board: HeartbeatBoard | None = None
        self._on_straggler: Callable[[int, int], None] | None = None
        self._region_workers = 0

    # -- region lifecycle ----------------------------------------------------

    def begin_region(
        self,
        workers: int,
        total_items: int = 0,
        observer=None,
        on_straggler: Callable[[int, int], None] | None = None,
    ) -> HeartbeatBoard:
        """Arm the supervisor for one region (call *before* forking).

        ``on_straggler(rank, items_done)`` is invoked at most once per
        rank from the parent's reap loop when the region is past
        ``straggler_threshold`` and that rank looks slow.
        """
        self.board = HeartbeatBoard(workers)
        self._region_workers = int(workers)
        self._on_straggler = on_straggler
        if total_items:
            # Provisional even split; workers overwrite their row with
            # the exact share size via ``assign`` once inside.
            per = float(total_items) / workers
            for w in range(workers):
                self.board.provisional_assign(w, per)
        if observer is not None:
            self.observer = observer
        return self.board

    def region_armed_for(self, workers: int) -> bool:
        return self.board is not None and self._region_workers == int(workers)

    # convenience passthroughs used by region members -------------------------

    def assign(self, worker: int, total: int) -> None:
        if self.board is not None:
            self.board.assign(worker, total)

    def tick(self, worker: int, advance: int = 1) -> None:
        if self.board is not None:
            self.board.tick(worker, advance)

    def mark_done(self, worker: int) -> None:
        if self.board is not None:
            self.board.mark_done(worker)

    # -- the supervised join -------------------------------------------------

    def reap_region(
        self, children: list[int], parent_failed: bool = False
    ) -> tuple[list[tuple[int, int]], dict[int, dict[str, float]]]:
        """Non-blocking reap of a region's children with watchdog.

        ``children`` are pids in rank order (rank = index + 1, rank 0
        is the parent).  Returns ``(failures, stalled)`` where
        ``failures`` is ``[(rank, exit_code), ...]`` sorted by rank
        (negative codes are signal numbers) and ``stalled`` maps each
        watchdog-killed rank to its last-progress snapshot.  Raises
        :class:`DeadlineExceeded` (after killing every remaining
        child) when the deadline expires — unless ``parent_failed``,
        in which case the parent's own exception must propagate and
        this method only cleans up.
        """
        obs = as_observer(self.observer)
        board = self.board
        pending: dict[int, int] = {
            rank + 1: pid for rank, pid in enumerate(children)
        }
        failures: list[tuple[int, int]] = []
        stalled: dict[int, dict[str, float]] = {}
        straggled: set[int] = set()
        deadline_hit = False
        # Adaptive poll sleep: start fine so a fault-free join costs
        # about what a blocking waitpid does, back off toward
        # poll_interval while the region is genuinely busy.
        nap = _POLL_SLEEP_MIN
        try:
            while pending:
                progressed = self._poll_once(pending, failures)
                if not pending:
                    break
                now = time.monotonic()
                if self.deadline is not None and self.deadline.expired:
                    deadline_hit = True
                    self._kill_pending(pending, failures, stalled, reason="deadline")
                    break
                if board is not None and self.stall_timeout is not None:
                    hung = [
                        rank
                        for rank in sorted(pending)
                        if not board.is_done(rank)
                        and board.age(rank, now) > self.stall_timeout
                    ]
                    for rank in hung:
                        snapshot = board.dump(now).get(rank, {})
                        obs.event(
                            "supervise.heartbeat_stall",
                            rank=rank,
                            age_seconds=snapshot.get("age_seconds"),
                            items_done=snapshot.get("items_done"),
                        )
                        obs.count("supervise.stalls")
                        code = self._kill_one(pending.pop(rank))
                        failures.append((rank, code))
                        stalled[rank] = snapshot
                        obs.event(
                            "supervise.worker_killed", rank=rank, exit_code=code
                        )
                        obs.count("supervise.workers_killed")
                self._maybe_straggle(pending, straggled, now, obs)
                if progressed:
                    nap = _POLL_SLEEP_MIN
                elif pending:
                    time.sleep(nap)
                    nap = min(nap * 2.0, self.poll_interval)
        finally:
            self.board = None
            self._on_straggler = None
            self._region_workers = 0
        failures.sort(key=lambda rc: rc[0])
        if deadline_hit and not parent_failed:
            raise DeadlineExceeded(
                f"deadline of {self.deadline.seconds:g}s expired inside a "
                f"parallel region; killed {len(stalled) or len(failures)} "
                "remaining worker(s)",
                deadline=self.deadline,
            )
        return failures, stalled

    # -- internals -----------------------------------------------------------

    @staticmethod
    def _poll_once(
        pending: dict[int, int], failures: list[tuple[int, int]]
    ) -> bool:
        """One WNOHANG sweep; reaps whichever children already exited."""
        progressed = False
        for rank in sorted(pending):
            pid = pending[rank]
            try:
                wpid, status = os.waitpid(pid, os.WNOHANG)
            except ChildProcessError:  # pragma: no cover - already reaped
                pending.pop(rank)
                progressed = True
                continue
            if wpid == 0:
                continue
            pending.pop(rank)
            progressed = True
            code = os.waitstatus_to_exitcode(status)
            if code != 0:
                failures.append((rank, code))
        return progressed

    def _kill_one(self, pid: int) -> int:
        """SIGTERM, wait ``term_grace``, SIGKILL; returns the exit code."""
        return kill_process(
            pid, term_grace=self.term_grace, poll_interval=self.poll_interval
        )

    def _kill_pending(
        self,
        pending: dict[int, int],
        failures: list[tuple[int, int]],
        stalled: dict[int, dict[str, float]],
        reason: str,
    ) -> None:
        obs = as_observer(self.observer)
        snapshot = self.board.dump() if self.board is not None else {}
        for rank in sorted(pending):
            code = self._kill_one(pending.pop(rank))
            failures.append((rank, code))
            stalled[rank] = snapshot.get(rank, {})
            obs.event(
                "supervise.worker_killed",
                rank=rank,
                exit_code=code,
                reason=reason,
            )
            obs.count("supervise.workers_killed")

    def _maybe_straggle(
        self,
        pending: dict[int, int],
        straggled: set[int],
        now: float,
        obs,
    ) -> None:
        if self._on_straggler is None or self.board is None:
            return
        if self.straggler_age is None:
            return
        done, assigned = self.board.progress()
        if assigned <= 0 or done < self.straggler_threshold * assigned:
            return
        for rank in sorted(pending):
            if rank in straggled or self.board.is_done(rank):
                continue
            if self.board.age(rank, now) <= self.straggler_age:
                continue
            straggled.add(rank)
            items_done = self.board.items_done(rank)
            obs.event(
                "supervise.straggler_respawned",
                rank=rank,
                items_done=items_done,
            )
            obs.count("supervise.stragglers")
            try:
                self._on_straggler(rank, items_done)
            except Exception:  # pragma: no cover - speculation must not kill
                # Speculative re-execution is an optimisation; a failure
                # here must never take down the supervised join.
                pass

    def __repr__(self) -> str:
        return (
            f"Supervisor(stall_timeout={self.stall_timeout}, "
            f"deadline={self.deadline!r}, salvage={self.salvage})"
        )
