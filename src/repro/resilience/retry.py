"""Bounded retries with backoff, and formation-level recovery.

Worker death in a fork region surfaces as
:class:`repro.parallel.pymp.ParallelError`; a transient filesystem
hiccup as :class:`OSError`.  Both are worth one more try before a
whole campaign is abandoned.  :func:`run_with_retry` is the generic
bounded-retry driver; :func:`form_with_recovery` applies it to
equation formation and adds the last rung of the formation ladder —
re-dispatching the work onto the in-process single-thread strategy,
which cannot lose workers because it never forks.

Backoff is deterministic by default (exponential, no jitter): two runs
of the same plan retry at the same instants, keeping chaos tests
exactly reproducible.  Fleets that retry many regions simultaneously
can opt into *seeded* jitter — still a pure function of
``(jitter_seed, attempt)``, so reproducibility is kept while the
thundering herd is broken up.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Sequence, TypeVar

from repro.parallel.pymp import ParallelError
from repro.resilience.faults import FaultInjector
from repro.utils import logging as rlog
from repro.utils.rng import default_rng, derive_seed

T = TypeVar("T")

#: Exception types that indicate a transient, retryable failure.
TRANSIENT_ERRORS: tuple[type[BaseException], ...] = (ParallelError, OSError)


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry and how long to wait between tries."""

    max_retries: int = 2
    backoff_seconds: float = 0.0
    backoff_factor: float = 2.0
    max_backoff_seconds: float = 2.0
    jitter: float = 0.0
    jitter_seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be non-negative, got {self.max_retries}"
            )
        if self.backoff_seconds < 0:
            raise ValueError("backoff_seconds must be non-negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def delay(self, attempt: int) -> float:
        """Seconds to sleep before retry number ``attempt`` (0-based).

        With ``jitter`` > 0 the exponential delay is scaled by a
        deterministic factor in ``[1 - jitter, 1]`` drawn from
        ``(jitter_seed, attempt)`` — jitter only ever *shortens* the
        wait, so the delay never exceeds ``max_backoff_seconds``.
        """
        if self.backoff_seconds <= 0.0:
            return 0.0
        base = min(
            self.backoff_seconds * self.backoff_factor**attempt,
            self.max_backoff_seconds,
        )
        if self.jitter <= 0.0:
            return base
        u = default_rng(
            derive_seed(self.jitter_seed, "retry-jitter", attempt)
        ).random()
        return base * (1.0 - self.jitter * u)


@dataclass(frozen=True)
class RetryOutcome:
    """What the retry loop did to get (or fail to get) a result."""

    attempts: int
    succeeded: bool
    errors: tuple[str, ...]
    total_delay_seconds: float

    def events(self) -> tuple[str, ...]:
        """Human-readable event strings for result reports."""
        out = []
        for i, err in enumerate(self.errors):
            out.append(f"attempt {i + 1} failed: {err}")
        return tuple(out)


class RetryExhausted(RuntimeError):
    """All attempts failed; ``outcome`` holds the per-attempt errors."""

    def __init__(self, message: str, outcome: RetryOutcome) -> None:
        super().__init__(message)
        self.outcome = outcome


def run_with_retry(
    fn: Callable[[], T],
    policy: RetryPolicy | None = None,
    retry_on: Sequence[type[BaseException]] = TRANSIENT_ERRORS,
    faults: FaultInjector | None = None,
    sleep: Callable[[float], None] = time.sleep,
    observer=None,
) -> tuple[T, RetryOutcome]:
    """Call ``fn`` with up to ``policy.max_retries`` retries.

    ``faults.note_attempt()`` is invoked before each retry so "die
    once" fault plans stop firing.  Raises :class:`RetryExhausted`
    (chained to the last error) when every attempt fails.  Each failed
    attempt lands on the observer stream as a ``retry.attempt_failed``
    event plus a ``retry.attempts`` count.
    """
    from repro.observe.observer import as_observer

    obs = as_observer(observer)
    policy = policy or RetryPolicy()
    retry_on = tuple(retry_on)
    errors: list[str] = []
    delay_total = 0.0
    last_exc: BaseException | None = None
    for attempt in range(policy.max_retries + 1):
        try:
            result = fn()
        except retry_on as exc:
            last_exc = exc
            errors.append(f"{type(exc).__name__}: {exc}")
            rlog.info(
                "resilience.retry",
                attempt=attempt + 1,
                max_attempts=policy.max_retries + 1,
                error=str(exc),
            )
            obs.event(
                "retry.attempt_failed",
                attempt=attempt + 1,
                max_attempts=policy.max_retries + 1,
                error=f"{type(exc).__name__}: {exc}",
            )
            obs.count("retry.attempts")
            if attempt == policy.max_retries:
                break
            delay = policy.delay(attempt)
            if delay > 0:
                sleep(delay)
                delay_total += delay
            if faults is not None:
                faults.note_attempt()
            continue
        return result, RetryOutcome(
            attempts=attempt + 1,
            succeeded=True,
            errors=tuple(errors),
            total_delay_seconds=delay_total,
        )
    outcome = RetryOutcome(
        attempts=policy.max_retries + 1,
        succeeded=False,
        errors=tuple(errors),
        total_delay_seconds=delay_total,
    )
    raise RetryExhausted(
        f"all {outcome.attempts} attempt(s) failed; last error: {errors[-1]}",
        outcome,
    ) from last_exc


def form_with_recovery(
    strategy,
    z,
    voltage: float = 5.0,
    output_dir=None,
    fmt: str = "binary",
    policy: RetryPolicy | None = None,
    faults: FaultInjector | None = None,
    sleep: Callable[[float], None] = time.sleep,
    observer=None,
    supervise=None,
    deadline=None,
):
    """Run a formation strategy with retries, then a serial fallback.

    Returns ``(FormationReport, events)`` where ``events`` is a tuple
    of human-readable resilience events ("" when the first attempt
    succeeded).  If every parallel attempt loses a worker, the work is
    re-dispatched to :class:`repro.core.strategies.SingleThread` —
    formation is deterministic, so the fallback's output (including
    part files, which collapse to one part) is equivalent; only the
    parallel speedup is sacrificed.

    ``supervise`` (a :class:`repro.resilience.supervise.Supervisor`)
    usually absorbs worker loss *below* this ladder via salvage; when
    it cannot (dynamic schedule, salvage disabled), the resulting
    ``WorkerStalled`` is a :class:`ParallelError` and retries here.
    ``deadline`` is never retried: running out of wall-clock is not
    transient.
    """
    from repro.core.strategies import SingleThread
    from repro.observe.observer import as_observer

    obs = as_observer(observer)

    def attempt():
        return strategy.run(
            z,
            voltage=voltage,
            output_dir=output_dir,
            fmt=fmt,
            faults=faults,
            observer=observer,
            supervise=supervise,
            deadline=deadline,
        )

    try:
        report, outcome = run_with_retry(
            attempt, policy=policy, faults=faults, sleep=sleep, observer=observer
        )
        return report, outcome.events()
    except RetryExhausted as exc:
        if isinstance(strategy, SingleThread):
            raise  # nothing left to degrade to
        rlog.info(
            "resilience.formation_degraded",
            strategy=getattr(strategy, "name", "?"),
            attempts=exc.outcome.attempts,
        )
        obs.event(
            "formation.degraded",
            strategy=getattr(strategy, "name", "?"),
            attempts=exc.outcome.attempts,
        )
        obs.count("formation.fallbacks")
        fallback = SingleThread(formation=strategy.formation)
        report = fallback.run(
            z,
            voltage=voltage,
            output_dir=output_dir,
            fmt=fmt,
            observer=observer,
            deadline=deadline,
        )
        events = exc.outcome.events() + (
            f"formation degraded to single-thread after "
            f"{exc.outcome.attempts} failed attempt(s)",
        )
        return report, events
