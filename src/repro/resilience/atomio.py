"""Atomic file writes: tmp + fsync + rename.

A campaign that dies mid-write must never leave a *truncated file
under the canonical name* — a half-written part file that still begins
with a valid magic would be silently consumed by a later run.  The
classic cure is used everywhere the library persists results: write to
``<name>.tmp`` in the same directory, ``fsync``, then ``os.rename``
onto the final name.  POSIX rename is atomic within a filesystem, so
readers observe either the old complete file, the new complete file,
or (first write) no file — never a prefix.

Interrupted writes leave at most a ``*.tmp`` orphan, which no reader
ever opens; the next successful attempt truncates and replaces it.
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Iterator

#: Suffix for in-flight files.  Readers must never open ``*.tmp``.
TMP_SUFFIX = ".tmp"


def _fsync_dir(directory: Path) -> None:
    """Best-effort fsync of a directory (makes the rename durable)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic filesystems
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fsync unsupported on dirs
        pass
    finally:
        os.close(fd)


class AtomicFile:
    """A file handle that only materialises its path on :meth:`commit`.

    Writes go to ``<path>.tmp``; ``commit()`` flushes, fsyncs and
    renames onto ``path``; ``abort()`` discards the temporary.  The
    object is deliberately not a context manager — the parallel
    strategies need the commit/abort decision split across a
    ``finally`` block (a killed worker must *not* commit).
    """

    def __init__(
        self, path: str | Path, mode: str = "wb", encoding: str | None = None
    ) -> None:
        self.path = Path(path)
        self.tmp_path = self.path.with_name(self.path.name + TMP_SUFFIX)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.handle: IO = open(self.tmp_path, mode, encoding=encoding)
        self._done = False

    @property
    def name(self) -> str:
        """The *final* path (what callers should record)."""
        return str(self.path)

    def write(self, data) -> int:
        return self.handle.write(data)

    def commit(self) -> None:
        """Flush, fsync, close and rename onto the final path."""
        if self._done:
            return
        self._done = True
        self.handle.flush()
        os.fsync(self.handle.fileno())
        size = os.fstat(self.handle.fileno()).st_size
        self.handle.close()
        os.rename(self.tmp_path, self.path)
        _fsync_dir(self.path.parent)
        # Report through the global observer: atomic writes happen far
        # below any layer that threads an Observer parameter.  Function-
        # level import keeps this module import-light (and the observer
        # defaults to the zero-overhead no-op).
        from repro.observe.observer import get_observer

        obs = get_observer()
        if obs.enabled:
            obs.count("atomio.commits")
            obs.count("atomio.bytes_committed", size)

    def abort(self) -> None:
        """Close and remove the temporary; the final path is untouched."""
        if self._done:
            return
        self._done = True
        self.handle.close()
        try:
            self.tmp_path.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


@contextmanager
def atomic_open(
    path: str | Path, mode: str = "wb", encoding: str | None = None
) -> Iterator[IO]:
    """Context manager: commit on clean exit, abort on exception."""
    af = AtomicFile(path, mode, encoding=encoding)
    try:
        yield af.handle
    except BaseException:
        af.abort()
        raise
    else:
        af.commit()


def atomic_write_bytes(path: str | Path, data: bytes) -> None:
    with atomic_open(path, "wb") as fh:
        fh.write(data)


def atomic_write_text(path: str | Path, text: str) -> None:
    with atomic_open(path, "w", encoding="utf-8") as fh:
        fh.write(text)


def atomic_write_json(path: str | Path, obj) -> None:
    atomic_write_text(path, json.dumps(obj, indent=2, sort_keys=True) + "\n")
