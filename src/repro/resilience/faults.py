"""Deterministic fault injection for chaos testing.

Real wet-lab campaigns fail in three places: *workers* die (OOM kill,
node loss), *artifacts* rot (torn writes, bit flips in part files) and
*measurements* arrive dirty (dead electrodes, rail-saturated channels,
NaN from the DAQ).  This module injects all three on demand so the
recovery paths — retry (:mod:`repro.resilience.retry`), checkpoint
resume (:mod:`repro.resilience.checkpoint`) and the solver degradation
ladder (:mod:`repro.resilience.degrade`) — can be exercised end to end
in tests and in the ``parma chaos`` smoke command.

Every fault decision is a pure function of ``(plan.seed, site key)``
via :func:`repro.utils.rng.derive_seed`, so an injection schedule is
reproducible across processes, fork order and retry attempts — the
same determinism contract the paper's schedulers keep (§IV-C.1).
"""

from __future__ import annotations

import dataclasses
import os
import time
from dataclasses import dataclass

import numpy as np

from repro.core.equations import PairBlock
from repro.utils.rng import default_rng, derive_seed

#: Exit status an injected worker kill uses (EX_TEMPFAIL: retryable).
KILLED_WORKER_EXIT = 75


class InjectedAbort(RuntimeError):
    """Simulated process death between units of work (checkpoint test)."""


class InjectedSolverFault(ArithmeticError):
    """Simulated solver divergence (degradation-ladder test)."""


@dataclass(frozen=True)
class FaultPlan:
    """Declarative fault schedule; all fields default to "no faults".

    Attributes
    ----------
    seed:
        Root of every stochastic decision below (deterministic).
    kill_workers:
        Worker ranks to kill inside parallel formation regions.  Rank 0
        is the parent process and is never killed.
    kill_probability:
        Additional per-(attempt, worker) Bernoulli kill rate.
    kill_attempts:
        Kills fire only on attempts ``< kill_attempts`` — the default 1
        means "die once, survive the retry", which is the interesting
        recovery case.  Also gates hang/slow faults.
    kill_signal:
        When set (e.g. ``signal.SIGKILL``), doomed workers die via
        ``os.kill(os.getpid(), kill_signal)`` instead of ``os._exit``,
        so the parent observes a *negative* exit code (the signal
        number) — exercises signal-death reporting.
    hang_workers / hang_after_items:
        Worker ranks that stop making progress (sleep forever, still
        reapable via SIGTERM) after completing ``hang_after_items``
        items — exercises the heartbeat watchdog and salvage.
    slow_workers / slow_seconds_per_item:
        Worker ranks that sleep this long per item — exercises the
        straggler detector without ever tripping the stall watchdog.
    corrupt_blocks / corrupt_block_rate:
        Explicit canonical pair indices (and/or a Bernoulli rate) of
        streamed blocks whose term signs are flipped before hitting the
        sink — detectable by checksum, invisible to byte counting.
    drop_blocks / drop_block_rate:
        Blocks silently discarded before the sink (torn write).
    abort_after_blocks / abort_after_timepoints:
        Raise :class:`InjectedAbort` once this many blocks (streaming)
        or timepoints (campaign pipeline) have completed — simulates a
        process kill between checkpoints.
    nan_sites / saturate_sites:
        ``(row, col)`` channels of Z replaced by NaN / the saturation
        rail.
    dead_rows / dead_cols:
        Whole wires reading the saturation rail (electrode lost
        contact: every pair through it is an open circuit).
    dirty_rate:
        Bernoulli per-channel NaN rate on top of the explicit sites.
    saturation_kohm:
        The rail value used for saturated/dead channels.
    fail_rungs:
        Degradation-ladder rung names that raise
        :class:`InjectedSolverFault` instead of solving.
    serve_kill_requests:
        Request ordinals (per executor child, counted from fork) at
        which a serve executor worker dies *before* producing its
        result — the parent observes mid-batch worker loss and must
        salvage or answer ``worker-lost``.
    serve_kill_generations:
        Serve kills/hangs/drops fire only in child generations ``<``
        this bound — the default 1 means the respawned worker
        survives, which is the interesting recovery case (mirrors
        ``kill_attempts``).
    serve_hang_requests:
        Request ordinals at which the executor worker stops making
        progress (infinite sleep; only the serve stall watchdog can
        reclaim it).
    serve_slow_seconds:
        Extra seconds every executor request sleeps before solving —
        exercises queue-seconds load estimation without killing
        anything.
    serve_corrupt_frames:
        Result-frame ordinals whose length prefix is mangled before
        hitting the pipe, so the parent sees a :class:`ProtocolError`
        and must treat the worker as lost.
    serve_drop_connections:
        Request ordinals at which the executor worker closes its pipe
        mid-batch (clean EOF instead of a crash) and exits.
    fleet_kill_requests:
        Front solve ordinals (counted at the fleet front, from 1) at
        which the *routed shard process* is SIGKILLed before the
        request is forwarded — exercising the front's ring-walk
        reroute and the watchdog respawn
        (:class:`repro.serve.fleet.SolveFleet`).
    fleet_kill_generations:
        Fleet shard kills fire only while the target shard's
        generation is ``<=`` this bound (generations start at 1 on
        first spawn) — the default 1 means the respawned shard
        survives, mirroring ``serve_kill_generations``.
    """

    seed: int = 0
    kill_workers: tuple[int, ...] = ()
    kill_probability: float = 0.0
    kill_attempts: int = 1
    kill_signal: int | None = None
    hang_workers: tuple[int, ...] = ()
    hang_after_items: int = 0
    slow_workers: tuple[int, ...] = ()
    slow_seconds_per_item: float = 0.0
    corrupt_blocks: tuple[int, ...] = ()
    corrupt_block_rate: float = 0.0
    drop_blocks: tuple[int, ...] = ()
    drop_block_rate: float = 0.0
    abort_after_blocks: int | None = None
    abort_after_timepoints: int | None = None
    nan_sites: tuple[tuple[int, int], ...] = ()
    saturate_sites: tuple[tuple[int, int], ...] = ()
    dead_rows: tuple[int, ...] = ()
    dead_cols: tuple[int, ...] = ()
    dirty_rate: float = 0.0
    saturation_kohm: float = 1.0e7
    fail_rungs: tuple[str, ...] = ()
    serve_kill_requests: tuple[int, ...] = ()
    serve_kill_generations: int = 1
    serve_hang_requests: tuple[int, ...] = ()
    serve_slow_seconds: float = 0.0
    serve_corrupt_frames: tuple[int, ...] = ()
    serve_drop_connections: tuple[int, ...] = ()
    fleet_kill_requests: tuple[int, ...] = ()
    fleet_kill_generations: int = 1

    def any_fleet_faults(self) -> bool:
        return bool(self.fleet_kill_requests)

    def any_serve_faults(self) -> bool:
        return bool(
            self.serve_kill_requests
            or self.serve_hang_requests
            or self.serve_slow_seconds > 0.0
            or self.serve_corrupt_frames
            or self.serve_drop_connections
        )

    def any_measurement_faults(self) -> bool:
        return bool(
            self.nan_sites
            or self.saturate_sites
            or self.dead_rows
            or self.dead_cols
            or self.dirty_rate > 0.0
        )


class FaultInjector:
    """Executes a :class:`FaultPlan` at the library's injection points.

    One injector follows one logical run; the retry layer calls
    :meth:`note_attempt` between attempts so "die once" plans stop
    firing after the first failure.  The attempt counter is bumped in
    the parent *before* workers fork, so every region member agrees on
    it (copy-on-write).
    """

    def __init__(self, plan: FaultPlan | None = None) -> None:
        self.plan = plan or FaultPlan()
        self.attempt = 0

    # -- shared helpers ------------------------------------------------------

    def _bernoulli(self, rate: float, *key: int | str) -> bool:
        if rate <= 0.0:
            return False
        rng = default_rng(derive_seed(self.plan.seed, *key))
        return bool(rng.random() < rate)

    def note_attempt(self) -> None:
        """Record that a failed attempt is being retried."""
        self.attempt += 1

    # -- worker kills --------------------------------------------------------

    def should_kill_worker(self, worker: int) -> bool:
        if worker == 0 or self.attempt >= self.plan.kill_attempts:
            return False
        if worker in self.plan.kill_workers:
            return True
        return self._bernoulli(
            self.plan.kill_probability, "kill", self.attempt, worker
        )

    def maybe_kill_worker(self, worker: int) -> None:
        """Called by each region member; dies via ``os._exit`` if doomed.

        ``os._exit`` (not an exception) models a SIGKILL-style death:
        no Python unwind, no part-file commit, just a non-zero wait
        status for the parent to find.  With ``plan.kill_signal`` set
        the death is a real signal instead, so the parent reads a
        negative exit code.
        """
        if self.should_kill_worker(worker):
            if self.plan.kill_signal is not None:
                os.kill(os.getpid(), int(self.plan.kill_signal))
                time.sleep(60)  # pragma: no cover - signal delivery race
            os._exit(KILLED_WORKER_EXIT)

    # -- hangs and stragglers ------------------------------------------------

    def should_hang_worker(self, worker: int) -> bool:
        if worker == 0 or self.attempt >= self.plan.kill_attempts:
            return False
        return worker in self.plan.hang_workers

    def on_progress(self, worker: int, items_done: int) -> None:
        """Per-item hook inside formation loops: hang or slow down.

        A *hang* is an infinite sleep loop — the worker stays alive
        (so only the heartbeat watchdog can detect it) but remains
        killable by SIGTERM.  A *slow* worker just sleeps per item,
        exercising the straggler path without tripping the watchdog.
        """
        if worker == 0 or self.attempt >= self.plan.kill_attempts:
            return
        if (
            worker in self.plan.hang_workers
            and items_done >= self.plan.hang_after_items
        ):
            while True:  # pragma: no branch - exits only by signal
                time.sleep(60)
        if (
            worker in self.plan.slow_workers
            and self.plan.slow_seconds_per_item > 0.0
        ):
            time.sleep(self.plan.slow_seconds_per_item)

    # -- block corruption (streaming / serialization) ------------------------

    def block_fate(self, index: int) -> str:
        """``"ok"``, ``"corrupt"`` or ``"drop"`` for canonical block ``index``."""
        if index in self.plan.drop_blocks or self._bernoulli(
            self.plan.drop_block_rate, "drop", index
        ):
            return "drop"
        if index in self.plan.corrupt_blocks or self._bernoulli(
            self.plan.corrupt_block_rate, "corrupt", index
        ):
            return "corrupt"
        return "ok"

    def mangle_block(self, block: PairBlock, index: int) -> PairBlock | None:
        """Apply the block's fate: pass through, corrupt, or drop (None).

        Corruption flips every term sign — the byte count is unchanged
        (so naive size checks pass) but the order-independent checksum
        is negated, which is exactly what the manifest verification
        must catch.
        """
        fate = self.block_fate(index)
        if fate == "ok":
            return block
        if fate == "drop":
            return None
        return dataclasses.replace(block, sign=(-block.sign).astype(np.int8))

    def maybe_abort_stream(self, blocks_done: int) -> None:
        limit = self.plan.abort_after_blocks
        if limit is not None and blocks_done >= limit:
            raise InjectedAbort(
                f"injected stream abort after {blocks_done} block(s)"
            )

    def maybe_abort_campaign(self, timepoints_done: int) -> None:
        limit = self.plan.abort_after_timepoints
        if limit is not None and timepoints_done >= limit:
            raise InjectedAbort(
                f"injected campaign abort after {timepoints_done} timepoint(s)"
            )

    # -- serve executor faults -----------------------------------------------

    def _serve_gated(self, generation: int) -> bool:
        """Whether destructive serve faults still fire for this child."""
        return generation < self.plan.serve_kill_generations

    def on_serve_request(self, ordinal: int, generation: int) -> None:
        """Pre-solve hook inside an executor child: kill, hang or slow.

        ``ordinal`` counts requests since the child forked;
        ``generation`` counts respawns of its slot (0 = original).
        Kills use ``os._exit`` / ``plan.kill_signal`` exactly like
        :meth:`maybe_kill_worker`, so the parent sees the same death
        shapes the formation supervisor does.
        """
        plan = self.plan
        if not self._serve_gated(generation):
            if plan.serve_slow_seconds > 0.0:
                time.sleep(plan.serve_slow_seconds)
            return
        if ordinal in plan.serve_kill_requests:
            if plan.kill_signal is not None:
                os.kill(os.getpid(), int(plan.kill_signal))
                time.sleep(60)  # pragma: no cover - signal delivery race
            os._exit(KILLED_WORKER_EXIT)
        if ordinal in plan.serve_hang_requests:
            while True:  # pragma: no branch - exits only by signal
                time.sleep(60)
        if plan.serve_slow_seconds > 0.0:
            time.sleep(plan.serve_slow_seconds)

    def fleet_kill_at(self, ordinal: int, generation: int) -> bool:
        """Whether the fleet front should kill the routed shard now.

        ``ordinal`` counts solve requests at the front (from 1);
        ``generation`` is the target shard's spawn generation (1 =
        original).  Deciding at the front — not inside the shard —
        keeps the fault deterministic under rerouting: the killed
        process is always the one the ring chose first.
        """
        if generation > self.plan.fleet_kill_generations:
            return False
        return ordinal in self.plan.fleet_kill_requests

    def serve_frame_fate(self, ordinal: int, generation: int) -> str:
        """``"ok"``, ``"corrupt"`` or ``"drop"`` for result frame ``ordinal``."""
        if not self._serve_gated(generation):
            return "ok"
        if ordinal in self.plan.serve_drop_connections:
            return "drop"
        if ordinal in self.plan.serve_corrupt_frames:
            return "corrupt"
        return "ok"

    # -- dirty measurements --------------------------------------------------

    def dirty_measurement(self, z: np.ndarray) -> np.ndarray:
        """Return a copy of ``z`` with the planned channel damage applied."""
        plan = self.plan
        if not plan.any_measurement_faults():
            return np.asarray(z, dtype=np.float64)
        out = np.array(z, dtype=np.float64, copy=True)
        m, n = out.shape
        for r in plan.dead_rows:
            out[r, :] = plan.saturation_kohm
        for c in plan.dead_cols:
            out[:, c] = plan.saturation_kohm
        for r, c in plan.saturate_sites:
            out[r, c] = plan.saturation_kohm
        for r, c in plan.nan_sites:
            out[r, c] = np.nan
        if plan.dirty_rate > 0.0:
            rng = default_rng(derive_seed(plan.seed, "dirty"))
            mask = rng.random((m, n)) < plan.dirty_rate
            out[mask] = np.nan
        return out

    # -- solver divergence ---------------------------------------------------

    def maybe_fail_rung(self, rung: str) -> None:
        if rung in self.plan.fail_rungs:
            raise InjectedSolverFault(f"injected divergence on rung {rung!r}")


def as_injector(
    faults: "FaultInjector | FaultPlan | None",
) -> FaultInjector | None:
    """Accept a plan or an injector wherever ``faults=`` is threaded."""
    if faults is None or isinstance(faults, FaultInjector):
        return faults
    return FaultInjector(faults)
