"""Graceful solver degradation: never crash where you can step down.

The recovery solve is the one stage of the pipeline that can *diverge*
rather than merely fail: a poisoned warm start, a near-singular
Jacobian or wildly inconsistent measurements make Gauss–Newton walk
off to non-finite territory.  Instead of killing the campaign, the
engine walks a ladder of progressively more conservative solves:

1. ``primary``     — the caller's solver with its warm start;
2. ``cold-start``  — same solver, warm start discarded (a corrupted
   previous field is the most common poison);
3. ``regularized`` — Tikhonov-smoothed Gauss–Newton (stabilises the
   ill-posed problem the paper's introduction warns about);
4. ``bounded``     — box-constrained trust region
   (:func:`repro.core.solver.solve_bounded`): cannot diverge, always
   returns a finite field.

A rung is *accepted* when it produced a finite field and residual —
degradation is for **divergence** (raised numerical errors,
non-finite results), not for slow convergence: a finite
``converged=False`` result is the requested solver's honest answer
and is returned as-is (callers and the CLI's exit status inspect
``SolveResult.converged``).  If no rung produced anything finite,
:class:`SolverDegradationError` names every rung and why it failed.

The rung actually used is recorded in
:class:`DegradationReport` and surfaces in
``ParmaResult.summary()`` / ``parma info``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.solver import SolveResult, solve
from repro.resilience.faults import FaultInjector, InjectedSolverFault
from repro.utils import logging as rlog

#: Rung names in ladder order (``cold-start`` only exists with a warm
#: start to discard; ``regularized`` is skipped when it *is* the
#: primary solver).
LADDER_RUNGS = ("primary", "cold-start", "regularized", "bounded")

#: Numerical failures a rung may raise that mean "step down", as
#: opposed to programming/configuration errors, which propagate.
DEGRADABLE_ERRORS = (
    ArithmeticError,  # includes FloatingPointError, InjectedSolverFault
    np.linalg.LinAlgError,
)


class SolverDegradationError(RuntimeError):
    """Every rung of the ladder failed to produce a finite field."""

    def __init__(self, message: str, report: "DegradationReport") -> None:
        super().__init__(message)
        self.report = report


@dataclass(frozen=True)
class DegradationReport:
    """Which rungs ran, why they were rejected, and which one won."""

    rung_used: str
    rungs_tried: tuple[str, ...]
    reasons: tuple[str, ...]  # aligned with rungs_tried; "" = accepted
    exhausted: bool = False  # True when even the last rung was rejected

    @property
    def degraded(self) -> bool:
        return self.rung_used != "primary" or self.exhausted

    def describe(self) -> str:
        parts = []
        for rung, reason in zip(self.rungs_tried, self.reasons):
            parts.append(rung if not reason else f"{rung} ({reason})")
        tail = " -> ".join(parts)
        status = "exhausted" if self.exhausted else f"used {self.rung_used}"
        return f"{status}: {tail}"


def _acceptable(result: SolveResult) -> str:
    """'' when the rung's result is usable, else the rejection reason."""
    if not np.all(np.isfinite(result.r_estimate)):
        return "non-finite field"
    if not np.isfinite(result.residual_norm):
        return "non-finite residual"
    return ""


def solve_with_degradation(
    z: np.ndarray,
    voltage: float = 5.0,
    method: str = "nested",
    backend: str = "numpy",
    solver_kwargs: dict | None = None,
    faults: FaultInjector | None = None,
    observer=None,
) -> tuple[SolveResult, DegradationReport]:
    """Solve ``Z(R) = z`` walking the degradation ladder.

    ``solver_kwargs`` are the primary rung's keywords (``r0`` marks a
    warm start and is dropped from rung 2 on; ``lam`` feeds the
    regularized rung); ``backend`` selects the dense-kernel
    implementation and applies to *every* rung (a compiled-backend
    failure is not a numerical property of the problem, so the ladder
    does not demote the backend — missing numba already degrades
    inside the solver).  Configuration errors — e.g. an unknown
    ``method`` — propagate immediately; only numerical failures
    (:data:`DEGRADABLE_ERRORS` or a non-converged/non-finite result)
    step down the ladder.  Each rejected rung lands on the observer
    stream as a ``degrade.rung_failed`` event; each rung runs inside a
    ``solve.rung`` span.
    """
    from repro.observe.observer import as_observer

    obs = as_observer(observer)
    kwargs = dict(solver_kwargs or {})
    warm = kwargs.get("r0") is not None
    cold_kwargs = {k: v for k, v in kwargs.items() if k != "r0"}

    rungs: list[tuple[str, str, dict]] = [("primary", method, kwargs)]
    if warm:
        rungs.append(("cold-start", method, cold_kwargs))
    if method != "regularized":
        rungs.append(
            ("regularized", "regularized", {"lam": cold_kwargs.get("lam", 1e-3)})
        )
    rungs.append(("bounded", "bounded", {}))

    tried: list[str] = []
    reasons: list[str] = []
    for rung, rung_method, rung_kwargs in rungs:
        tried.append(rung)
        r0 = rung_kwargs.get("r0")
        if r0 is not None and not np.all(np.isfinite(r0)):
            # A corrupted warm start (e.g. restored from a damaged
            # checkpoint) is precisely what the cold-start rung is
            # for — don't let input validation turn it into a crash.
            reasons.append("non-finite warm start")
            obs.event("degrade.rung_failed", rung=rung, reason="non-finite warm start")
            continue
        try:
            if faults is not None:
                faults.maybe_fail_rung(rung)
            with np.errstate(all="ignore"), obs.span(
                "solve.rung", rung=rung, method=rung_method, backend=backend
            ):
                result = solve(
                    z,
                    voltage=voltage,
                    method=rung_method,
                    backend=backend,
                    observer=obs,
                    **rung_kwargs,
                )
        except InjectedSolverFault as exc:
            reasons.append(str(exc))
            obs.event("degrade.rung_failed", rung=rung, reason=str(exc), injected=True)
            continue
        except DEGRADABLE_ERRORS as exc:
            reasons.append(f"{type(exc).__name__}: {exc}")
            obs.event(
                "degrade.rung_failed",
                rung=rung,
                reason=f"{type(exc).__name__}: {exc}",
            )
            continue
        reason = _acceptable(result)
        reasons.append(reason)
        if reason:
            obs.event("degrade.rung_failed", rung=rung, reason=reason)
        if not reason:
            report = DegradationReport(
                rung_used=rung,
                rungs_tried=tuple(tried),
                reasons=tuple(reasons),
            )
            if report.degraded:
                rlog.info(
                    "resilience.degraded_solve",
                    rung=rung,
                    path=report.describe(),
                )
                obs.event("degrade.rung_used", rung=rung, path=report.describe())
            return result, report

    report = DegradationReport(
        rung_used="",
        rungs_tried=tuple(tried),
        reasons=tuple(reasons),
        exhausted=True,
    )
    obs.event("degrade.exhausted", path=report.describe())
    raise SolverDegradationError(
        f"solver degradation ladder exhausted: {report.describe()}", report
    )
