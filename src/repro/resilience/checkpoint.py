"""Checkpoint/resume for campaigns and streaming formation.

A whole wet-lab day of timepoints, or an ``n = 100`` streamed system,
must not restart from zero because the process died at hour 18.  Two
checkpoint kinds, both journaled in a JSON **manifest** that is only
ever replaced atomically (:mod:`repro.resilience.atomio`):

* :class:`CampaignCheckpoint` — one entry per completed timepoint:
  the recovered field (``.npy``, atomic write) with its SHA-256, plus
  the solve/formation metadata needed to reconstruct the result.
  Resume skips verified timepoints; a corrupted field file is
  detected by digest and simply recomputed.

* :class:`StreamCheckpoint` — journals streamed equation blocks as
  they are appended to one binary data file: canonical pair index,
  byte offset and the block's order-independent checksum.  On resume
  the on-disk prefix is re-read and verified block-by-block against
  both the manifest *and* the O(1) expected-checksum table of
  :mod:`repro.core.templates`; the first corrupt, missing or torn
  block truncates the file there and formation restarts from that
  block.  Corrupted blocks are therefore **re-formed, never
  consumed**.

Manifest schemas are documented in ``docs/RESILIENCE.md``.
"""

from __future__ import annotations

import hashlib
import io
import json
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.equations import iter_pair_blocks
from repro.core.templates import (
    check_formation_mode,
    get_template,
    iter_pair_blocks_cached,
)
from repro.io.equations_io import read_blocks_binary, write_block_binary
from repro.resilience.atomio import atomic_write_bytes, atomic_write_json
from repro.resilience.faults import FaultInjector, as_injector
from repro.utils import logging as rlog

MANIFEST_NAME = "manifest.json"
MANIFEST_VERSION = 1


class CheckpointError(RuntimeError):
    """A checkpoint directory is unusable for the requested run."""


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _load_manifest(path: Path, kind: str) -> dict | None:
    if not path.exists():
        return None
    try:
        manifest = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"unreadable manifest {path}: {exc}") from exc
    if manifest.get("kind") != kind:
        raise CheckpointError(
            f"{path} holds a {manifest.get('kind')!r} manifest, "
            f"expected {kind!r}"
        )
    if manifest.get("version") != MANIFEST_VERSION:
        raise CheckpointError(
            f"unsupported manifest version {manifest.get('version')!r}"
        )
    return manifest


# -- campaign checkpoints ----------------------------------------------------


class CampaignCheckpoint:
    """Per-timepoint persistence for :func:`repro.core.pipeline.run_pipeline`.

    The manifest's ``completed`` list is ordered by campaign position;
    each entry carries the field file name + SHA-256 and enough solve/
    formation metadata to rebuild a result without re-solving.
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.manifest_path = self.directory / MANIFEST_NAME
        manifest = _load_manifest(self.manifest_path, "campaign-checkpoint")
        self._entries: list[dict] = list(manifest["completed"]) if manifest else []
        self._n = manifest.get("n") if manifest else None

    # -- queries -------------------------------------------------------------

    @property
    def num_completed(self) -> int:
        return len(self._entries)

    def entry(self, index: int) -> dict | None:
        """Manifest entry for campaign position ``index`` (or None)."""
        if 0 <= index < len(self._entries):
            return self._entries[index]
        return None

    def matches(self, index: int, hour: float, n: int) -> bool:
        """Whether position ``index`` was completed for this campaign."""
        e = self.entry(index)
        return (
            e is not None
            and float(e["hour"]) == float(hour)
            and (self._n is None or self._n == n)
        )

    def load_field(self, index: int) -> np.ndarray:
        """Load and digest-verify the recovered field at ``index``."""
        e = self.entry(index)
        if e is None:
            raise CheckpointError(f"no checkpoint entry at position {index}")
        path = self.directory / e["field_file"]
        try:
            data = path.read_bytes()
        except OSError as exc:
            raise CheckpointError(f"missing field file {path}: {exc}") from exc
        if _sha256(data) != e["sha256"]:
            raise CheckpointError(
                f"field file {path.name} fails its SHA-256 check "
                "(corrupt checkpoint)"
            )
        return np.load(io.BytesIO(data), allow_pickle=False)

    # -- mutation ------------------------------------------------------------

    def record(self, index: int, result) -> None:
        """Persist one completed timepoint (``result``: ParmaResult).

        Recording position ``k`` discards any stale entries at ``>= k``
        (they belong to an abandoned continuation) and rewrites the
        manifest atomically, so a crash during ``record`` leaves the
        previous manifest intact.
        """
        field = np.ascontiguousarray(result.resistance)
        buf = io.BytesIO()
        np.save(buf, field)
        data = buf.getvalue()
        fname = f"field-{index:04d}.npy"
        atomic_write_bytes(self.directory / fname, data)
        entry = {
            "index": index,
            "hour": float(result.measurement.hour),
            "field_file": fname,
            "sha256": _sha256(data),
            "rung": (
                result.degradation.rung_used
                if getattr(result, "degradation", None) is not None
                else "primary"
            ),
            "solve": {
                "method": result.solve.method,
                "iterations": int(result.solve.iterations),
                "residual_norm": float(result.solve.residual_norm),
                "converged": bool(result.solve.converged),
            },
            "formation": {
                "strategy": result.formation.strategy,
                "num_workers": int(result.formation.num_workers),
                "terms_formed": int(result.formation.terms_formed),
                "checksum": float(result.formation.checksum),
            },
        }
        del self._entries[index:]
        self._entries.append(entry)
        self._n = int(field.shape[0])
        self._write_manifest()

    def invalidate_from(self, index: int) -> None:
        """Drop entries at positions >= ``index`` (corrupt/obsolete)."""
        if index < len(self._entries):
            del self._entries[index:]
            self._write_manifest()

    def _write_manifest(self) -> None:
        atomic_write_json(
            self.manifest_path,
            {
                "version": MANIFEST_VERSION,
                "kind": "campaign-checkpoint",
                "n": self._n,
                "completed": self._entries,
            },
        )


# -- streaming checkpoints ---------------------------------------------------


@dataclass(frozen=True)
class StreamResumeReport:
    """What resuming a checkpointed stream found on disk."""

    blocks_on_disk: int
    blocks_verified: int
    blocks_discarded: int
    first_bad_reason: str = ""


class StreamCheckpoint:
    """Journal for a streamed binary equation file.

    The data file ``equations.bin`` grows block-append-only; the
    manifest lists, per written block: canonical pair index, pair
    coordinates, byte offset/size and checksum.  ``flush_every``
    controls how often the manifest is rewritten — blocks written
    after the last flush are simply re-formed on resume (formation is
    deterministic, so re-forming is always safe).
    """

    DATA_NAME = "equations.bin"

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.manifest_path = self.directory / MANIFEST_NAME
        self.data_path = self.directory / self.DATA_NAME
        manifest = _load_manifest(self.manifest_path, "stream-checkpoint")
        self.params: dict = manifest.get("params", {}) if manifest else {}
        self.blocks: list[dict] = list(manifest["blocks"]) if manifest else []
        self.complete: bool = bool(manifest.get("complete")) if manifest else False

    def compatible(self, n: int, voltage: float) -> bool:
        if not self.params:
            return False
        return self.params.get("n") == n and self.params.get("voltage") == voltage

    def verify_prefix(self, n: int) -> StreamResumeReport:
        """Re-read the on-disk prefix and count verifiable blocks.

        A block verifies when (a) it sits at the journaled offset with
        the journaled pair coordinates in canonical order, (b) its
        recomputed checksum equals the journaled one, and (c) that
        checksum equals the template's expected value for the pair —
        the O(1) table of :mod:`repro.core.templates`, so verification
        never trusts the journal alone.
        """
        if not self.data_path.exists():
            return StreamResumeReport(0, 0, len(self.blocks), "no data file")
        expected_table = get_template(n).checksum_table
        verified = 0
        reason = ""
        size = self.data_path.stat().st_size
        with open(self.data_path, "rb") as fh:
            for k, entry in enumerate(self.blocks):
                if entry["index"] != k:
                    reason = f"journal gap at block {k} (dropped block?)"
                    break
                if entry["offset"] + entry["nbytes"] > size:
                    reason = f"data file truncated inside block {k}"
                    break
                fh.seek(entry["offset"])
                try:
                    block = next(read_blocks_binary(fh))
                except (ValueError, StopIteration) as exc:
                    reason = f"unreadable block {k}: {exc}"
                    break
                row, col = divmod(k, n)
                if (block.row, block.col) != (row, col):
                    reason = f"block {k} holds pair {(block.row, block.col)}"
                    break
                expected = float(expected_table[row, col])
                actual = block.checksum()
                if actual != entry["checksum"] or actual != expected:
                    reason = (
                        f"checksum mismatch on block {k} "
                        f"(pair {row},{col}): corrupt"
                    )
                    break
                verified += 1
        return StreamResumeReport(
            blocks_on_disk=len(self.blocks),
            blocks_verified=verified,
            blocks_discarded=len(self.blocks) - verified,
            first_bad_reason=reason,
        )

    def truncate_to(self, num_blocks: int) -> None:
        """Cut the data file and journal back to a verified prefix."""
        self.blocks = self.blocks[:num_blocks]
        end = self.blocks[-1]["offset"] + self.blocks[-1]["nbytes"] if self.blocks else 0
        if self.data_path.exists():
            with open(self.data_path, "r+b") as fh:
                fh.truncate(end)
        self.complete = False
        self._write_manifest()

    def _write_manifest(self) -> None:
        atomic_write_json(
            self.manifest_path,
            {
                "version": MANIFEST_VERSION,
                "kind": "stream-checkpoint",
                "params": self.params,
                "complete": self.complete,
                "blocks": self.blocks,
            },
        )


def stream_to_file_checkpointed(
    z: np.ndarray,
    directory: str | Path,
    voltage: float = 5.0,
    formation: str = "cached",
    faults: "FaultInjector | None" = None,
    flush_every: int = 16,
) -> tuple["StreamCheckpoint", StreamResumeReport, int]:
    """Stream the full system to ``<directory>/equations.bin``, resumably.

    Returns ``(checkpoint, resume_report, blocks_formed_this_run)``.
    Calling it again on the same directory verifies the on-disk prefix
    and forms only what is missing or corrupt; a completed, fully
    verified directory is a no-op.  ``faults`` may corrupt/drop blocks
    or abort mid-stream — exactly the failures resume must survive.
    """
    from repro.observe.observer import get_observer

    z = np.asarray(z, dtype=np.float64)
    if z.ndim != 2 or z.shape[0] != z.shape[1]:
        raise ValueError("z must be square (n, n)")
    formation = check_formation_mode(formation)
    injector = as_injector(faults)
    obs = get_observer()
    n = int(z.shape[0])
    cp = StreamCheckpoint(directory)

    start_block = 0
    report = StreamResumeReport(0, 0, 0)
    if cp.blocks and cp.compatible(n, float(voltage)):
        report = cp.verify_prefix(n)
        start_block = report.blocks_verified
        if report.blocks_discarded or report.first_bad_reason:
            rlog.info(
                "resilience.stream_resume",
                verified=report.blocks_verified,
                discarded=report.blocks_discarded,
                reason=report.first_bad_reason,
            )
        obs.event(
            "checkpoint.stream_resumed",
            verified=report.blocks_verified,
            discarded=report.blocks_discarded,
            reason=report.first_bad_reason,
        )
        obs.count("checkpoint.stream_resumes")
        obs.count("checkpoint.stream_blocks_discarded", report.blocks_discarded)
        cp.truncate_to(start_block)
    else:
        if cp.data_path.exists():
            cp.data_path.unlink()
        cp.blocks = []
        cp.params = {"n": n, "voltage": float(voltage), "formation": formation}
        cp.complete = False
        cp._write_manifest()

    total_blocks = n * n
    if start_block >= total_blocks:
        cp.complete = True
        cp._write_manifest()
        return cp, report, 0

    expected_table = get_template(n).checksum_table
    blocks = (
        iter_pair_blocks_cached(z, voltage=voltage)
        if formation == "cached"
        else iter_pair_blocks(z, voltage=voltage)
    )
    formed = 0
    unflushed = 0
    with obs.span(
        "checkpoint.stream", n=n, start_block=start_block, total_blocks=total_blocks
    ), open(cp.data_path, "ab") as fh:
        offset = fh.tell()
        for k, block in enumerate(blocks):
            if k < start_block:
                continue
            victim = block if injector is None else injector.mangle_block(block, k)
            if victim is None:
                continue  # dropped: the journal gap is caught on resume
            nbytes = write_block_binary(victim, fh)
            row, col = divmod(k, n)
            cp.blocks.append(
                {
                    "index": k,
                    "row": row,
                    "col": col,
                    "offset": offset,
                    "nbytes": nbytes,
                    # Journal the *intended* checksum (the O(1) template
                    # value): disk corruption then disagrees with both
                    # the journal and the template on verify.
                    "checksum": float(expected_table[row, col]),
                }
            )
            offset += nbytes
            formed += 1
            unflushed += 1
            if unflushed >= flush_every:
                fh.flush()
                cp._write_manifest()
                unflushed = 0
            if injector is not None:
                injector.maybe_abort_stream(start_block + formed)
        fh.flush()
    cp.complete = len(cp.blocks) == total_blocks and all(
        e["index"] == i for i, e in enumerate(cp.blocks)
    )
    cp._write_manifest()
    obs.count("checkpoint.stream_blocks_formed", formed)
    return cp, report, formed


def verify_stream_directory(directory: str | Path) -> StreamResumeReport:
    """Stand-alone verification of a checkpointed stream directory."""
    cp = StreamCheckpoint(directory)
    n = cp.params.get("n")
    if n is None:
        raise CheckpointError(f"{directory} has no stream manifest")
    return cp.verify_prefix(int(n))
