"""Horizontal scale-out: a front listener over a fleet of shard services.

:class:`SolveFleet` is the "millions of users" axis of the serving
stack.  One front process listens on a TCP ``HOST:PORT`` and/or a unix
socket (same 4-byte length-prefixed JSON frames as
:mod:`repro.serve.protocol` — a :class:`repro.serve.client.SolveClient`
cannot tell a fleet front from a single service) and dispatches every
solve to one of ``shards`` worker processes, each running a full
:class:`repro.serve.server.SolveService` on a private unix socket.

Design decisions worth knowing:

* **Sharding key is ``(n, formation)``** — the same key the service
  batches on — routed through a consistent-hash ring
  (:class:`ShardMap`).  Everything expensive the serve path reuses
  (per-``n`` formation templates, Laplacian factor LRU, Jacobian
  structure) is keyed by device size, so pinning a size to a shard
  keeps that shard's caches hot while the other shards stay cold for
  it.  Consistent hashing means a resize only remaps ``1/shards`` of
  the keyspace instead of reshuffling every cache.
* **Any shard can serve any key.**  Sharding is a cache-affinity
  policy, not a correctness boundary — results are bit-identical
  wherever they run (the integration tests assert this).  That is
  what makes rerouting trivial: when a shard dies mid-request the
  front walks the ring to the next live shard, and only after
  ``max_reroutes`` extra attempts answers ``worker-lost`` (exit 75,
  retriable, same contract as a lost executor worker).
* **Health is the existing HeartbeatBoard.**  Each shard child beats
  one row of a shared-memory :class:`repro.resilience.supervise.
  HeartbeatBoard`; the front's watchdog reaps exited children,
  declares a silent shard dead after ``shard_stall_timeout`` seconds,
  and respawns (new generation) — the same escalation ladder as the
  executor pool, one level up.
* **Fairness is enforced at the front.**  Per-client token buckets
  (``quota_rate``/``quota_burst``) and a per-shard in-flight bound
  (``max_inflight_per_shard``) that sheds *batch* work targeting a hot
  shard while still admitting interactive work — so one client, or
  one hot device size, cannot starve the rest of the fleet.

The front holds no solve state: requests stream through, idempotency
ids are assigned here (so a reroute of an outcome-unknown forward is
safe — the shard dedupes), and every reply passes through verbatim.
"""

from __future__ import annotations

import hashlib
import os
import signal
import socket
import threading
import time
from bisect import bisect_right
from dataclasses import dataclass, replace
from pathlib import Path

from repro.observe import Observer
from repro.observe.metrics import MetricsRegistry
from repro.observe.observer import as_observer
from repro.resilience.faults import as_injector
from repro.resilience.supervise import HeartbeatBoard, kill_process
from repro.serve.protocol import (
    PRIORITY_CLASSES,
    PRIORITY_INTERACTIVE,
    STATUS_DRAINING,
    STATUS_INVALID,
    STATUS_QUEUE_FULL,
    STATUS_QUOTA,
    STATUS_WORKER_LOST,
    ProtocolError,
    Request,
    Response,
    connect_address,
    parse_address,
    recv_message,
    send_message,
)
from repro.serve.queue import TokenBucket
from repro.serve.server import ServiceConfig, SolveService
from repro.utils import logging as rlog

_POLL_SECONDS = 0.1
_WATCHDOG_SECONDS = 0.2
_BEAT_SECONDS = 0.25


# -- shard map ----------------------------------------------------------------


class ShardMap:
    """Consistent-hash ring mapping route keys to shard indices.

    Each shard owns ``replicas`` points on a 64-bit ring (SHA-1 of
    ``"shard-<i>/<r>"`` — deliberately *not* Python's salted ``hash``,
    so the map is identical across processes and runs).  A key routes
    to the first ring point clockwise from its own hash; rerouting and
    resizing walk the same ring, so each key has a stable preference
    order over shards and a resize moves only ``~1/shards`` of keys.
    """

    def __init__(self, shards: int, replicas: int = 64) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.shards = int(shards)
        self.replicas = int(replicas)
        points: list[tuple[int, int]] = []
        for shard in range(self.shards):
            for replica in range(self.replicas):
                points.append((self._hash(f"shard-{shard}/{replica}"), shard))
        points.sort()
        self._points = points
        self._hashes = [h for h, _ in points]

    @staticmethod
    def _hash(text: str) -> int:
        return int.from_bytes(
            hashlib.sha1(text.encode("utf-8")).digest()[:8], "big"
        )

    @staticmethod
    def route_key(n: int, formation: str) -> str:
        """The routing key: device size and formation mode."""
        return f"{int(n)}/{formation}"

    def preference(self, key: str) -> list[int]:
        """All shards in ring order from ``key`` (each exactly once)."""
        start = bisect_right(self._hashes, self._hash(key))
        seen: list[int] = []
        for offset in range(len(self._points)):
            shard = self._points[(start + offset) % len(self._points)][1]
            if shard not in seen:
                seen.append(shard)
                if len(seen) == self.shards:
                    break
        return seen

    def shard_for(
        self, n: int, formation: str, alive: set[int] | None = None
    ) -> int | None:
        """The first (live, if ``alive`` given) shard for a key."""
        for shard in self.preference(self.route_key(n, formation)):
            if alive is None or shard in alive:
                return shard
        return None


# -- configuration ------------------------------------------------------------


@dataclass(frozen=True)
class FleetConfig:
    """Everything a :class:`SolveFleet` needs to run.

    ``listen`` is the front's address — a unix socket path or a TCP
    ``HOST:PORT`` spec (:func:`repro.serve.protocol.parse_address`;
    port 0 picks an ephemeral port, observable as
    :attr:`SolveFleet.tcp_address`).  ``shards`` worker processes are
    forked, each a full :class:`SolveService` on
    ``results_dir/shard-<i>/shard.sock`` with the queue/batching/
    engine knobs below; ``shard_executor`` picks the execution host
    *inside* each shard (default ``thread`` — the shard process is
    already the crash-isolation boundary, and the front respawns it).
    ``quota_rate``/``quota_burst`` meter per-client admission at the
    front, ``max_inflight_per_shard`` sheds batch-priority work aimed
    at a saturated shard, ``max_reroutes`` bounds ring-walk retries
    after a forward failure, and ``shard_stall_timeout`` is how long a
    shard may go without a heartbeat before the watchdog respawns it.
    ``processes=False`` runs the shards as in-process services (no
    fork — the fallback on platforms without it, and handy in tests).
    """

    listen: str | Path
    results_dir: Path
    shards: int = 2
    replicas: int = 64
    max_queue_depth: int = 64
    max_batch: int = 8
    linger: float = 0.05
    serve_workers: int = 1
    strategy: str = "single"
    num_workers: int = 4
    max_deadline: float | None = None
    shard_executor: str = "thread"
    stall_timeout: float = 30.0
    quota_rate: float | None = None
    quota_burst: float = 8.0
    max_inflight_per_shard: int = 8
    max_reroutes: int = 2
    shard_stall_timeout: float = 15.0
    term_grace: float = 1.0
    forward_timeout: float = 300.0
    ready_timeout: float = 30.0
    processes: bool = True
    observer: object | None = None
    faults: object | None = None
    catalog_path: Path | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "results_dir", Path(self.results_dir))
        if self.catalog_path is not None:
            object.__setattr__(self, "catalog_path", Path(self.catalog_path))
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        parse_address(self.listen)  # raises on malformed tcp:// specs

    def shard_dir(self, index: int) -> Path:
        """Results/manifest directory for shard ``index``."""
        return self.results_dir / f"shard-{index}"

    def shard_socket(self, index: int) -> Path:
        """Private unix socket shard ``index`` serves on."""
        return self.shard_dir(index) / "shard.sock"

    def shard_service_config(self, index: int) -> ServiceConfig:
        """The per-shard :class:`ServiceConfig` this fleet runs."""
        return ServiceConfig(
            socket_path=self.shard_socket(index),
            results_dir=self.shard_dir(index),
            max_queue_depth=self.max_queue_depth,
            max_batch=self.max_batch,
            linger=self.linger,
            serve_workers=self.serve_workers,
            strategy=self.strategy,
            num_workers=self.num_workers,
            max_deadline=self.max_deadline,
            executor=self.shard_executor,
            stall_timeout=self.stall_timeout,
            term_grace=self.term_grace,
            catalog_path=self.catalog_path,
        )


@dataclass
class _Shard:
    """Front-side bookkeeping for one shard slot."""

    index: int
    generation: int = 0
    pid: int | None = None
    service: SolveService | None = None  # in-process mode only
    inflight: int = 0
    lost: bool = False


# -- the fleet ----------------------------------------------------------------


class SolveFleet:
    """A front listener dispatching to sharded :class:`SolveService`\\ s.

    Lifecycle mirrors the single service::

        fleet = SolveFleet(FleetConfig("127.0.0.1:7433", results_dir))
        fleet.start()            # forks shards, binds the front
        ...                      # clients connect with SolveClient
        fleet.request_drain()    # SIGTERM handler calls this
        fleet.wait(); fleet.stop()
    """

    def __init__(self, config: FleetConfig) -> None:
        self.config = config
        self.observer = as_observer(config.observer)
        self.faults = as_injector(config.faults)
        self.map = ShardMap(config.shards, config.replicas)
        self.board: HeartbeatBoard | None = None
        self._shards: list[_Shard] = [
            _Shard(index=i) for i in range(config.shards)
        ]
        self._shards_lock = threading.Lock()
        self._listeners: list[socket.socket] = []
        self.tcp_address: tuple[str, int] | None = None
        self._acceptors: list[threading.Thread] = []
        self._watchdog: threading.Thread | None = None
        self._handlers: set[threading.Thread] = set()
        self._handlers_lock = threading.Lock()
        self._draining = threading.Event()
        self._stopped = threading.Event()
        self._started_at = time.monotonic()
        self._buckets: dict[str, TokenBucket] = {}
        self._buckets_lock = threading.Lock()
        self._front_lock = threading.Lock()
        self._front_requests = 0
        self._routed = [0] * config.shards
        self._reroutes = 0
        self._respawns = 0
        self._quota_rejections = 0
        self._shed_counts = {name: 0 for name in PRIORITY_CLASSES}

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Fork the shards, wait for them, then open the front."""
        if self._listeners:
            raise RuntimeError("fleet already started")
        self.config.results_dir.mkdir(parents=True, exist_ok=True)
        # The board must exist before the first fork so every child
        # inherits the same shared-memory mapping.
        self.board = HeartbeatBoard(self.config.shards)
        # Bind before forking: a bind failure (port already in use)
        # must not leak orphaned shard processes.
        self._bind_front()
        try:
            for shard in self._shards:
                self._spawn(shard)
            self._wait_shards_ready()
        except BaseException:
            for shard in self._shards:
                if shard.pid is not None:
                    kill_process(shard.pid, term_grace=0.2)
                    shard.pid = None
                if shard.service is not None:
                    shard.service.stop()
                    shard.service = None
            for listener in self._listeners:
                listener.close()
            self._listeners = []
            self.tcp_address = None
            raise
        self._started_at = time.monotonic()
        for listener in self._listeners:
            acceptor = threading.Thread(
                target=self._accept_loop,
                args=(listener,),
                name="fleet-acceptor",
                daemon=True,
            )
            acceptor.start()
            self._acceptors.append(acceptor)
        self._watchdog = threading.Thread(
            target=self._watchdog_loop, name="fleet-watchdog", daemon=True
        )
        self._watchdog.start()
        rlog.info(
            "fleet.started",
            listen=str(self.config.listen),
            shards=self.config.shards,
            processes=self._processes,
        )

    @property
    def _processes(self) -> bool:
        return self.config.processes and hasattr(os, "fork")

    def _bind_front(self) -> None:
        kind, target = parse_address(self.config.listen)
        if kind == "tcp":
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind(target)
            self.tcp_address = sock.getsockname()[:2]
        else:
            path = Path(target)
            path.parent.mkdir(parents=True, exist_ok=True)
            if path.exists():
                path.unlink()
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.bind(str(path))
        sock.listen(128)
        sock.settimeout(_POLL_SECONDS)
        self._listeners.append(sock)

    def _spawn(self, shard: _Shard) -> None:
        """Start (or restart) one shard; bumps its generation."""
        shard.generation += 1
        shard.lost = False
        self.config.shard_dir(shard.index).mkdir(parents=True, exist_ok=True)
        assert self.board is not None
        self.board.assign(shard.index, 0)  # fresh heartbeat pre-fork
        if self._processes:
            pid = os.fork()
            if pid == 0:  # pragma: no cover - exercised in child process
                _shard_main(
                    shard.index,
                    self.board,
                    self._listeners,
                    self.config,
                )
                os._exit(1)
            shard.pid = pid
            shard.service = None
        else:
            service = SolveService(self.config.shard_service_config(shard.index))
            service.start()
            shard.service = service
            shard.pid = None

    def _wait_shards_ready(self) -> None:
        """Block until every shard accepts connections (or time out)."""
        # Local import: client -> protocol only, no cycle back to us.
        from repro.serve.client import SolveClient

        deadline = time.monotonic() + self.config.ready_timeout
        for shard in self._shards:
            remaining = max(0.1, deadline - time.monotonic())
            client = SolveClient(self.config.shard_socket(shard.index))
            if not client.wait_ready(timeout=remaining):
                raise RuntimeError(
                    f"shard {shard.index} did not become ready within "
                    f"{self.config.ready_timeout:.0f}s"
                )

    def request_drain(self) -> None:
        """Begin a graceful fleet-wide drain (idempotent)."""
        if self._draining.is_set():
            return
        self._draining.set()
        self.observer.count("fleet.drains")
        self.observer.event("fleet.draining", shards=self.config.shards)
        for shard in self._shards:
            try:
                self._forward_message(shard.index, {"kind": "drain"}, timeout=5.0)
            except OSError:
                pass
        rlog.info("fleet.draining")

    def wait(self, timeout: float | None = None) -> bool:
        """Block until every shard finished draining; True when done."""
        deadline = None if timeout is None else time.monotonic() + timeout
        for shard in self._shards:
            while True:
                if self._processes:
                    if shard.pid is None:
                        break
                    try:
                        done_pid, _ = os.waitpid(shard.pid, os.WNOHANG)
                    except ChildProcessError:
                        done_pid = shard.pid
                    if done_pid == shard.pid:
                        shard.pid = None
                        break
                else:
                    if shard.service is None:
                        break
                    if shard.service.wait(timeout=_POLL_SECONDS):
                        shard.service.stop()
                        shard.service = None
                        break
                if deadline is not None and time.monotonic() >= deadline:
                    return False
                if self._processes:
                    time.sleep(_POLL_SECONDS)
        return True

    def stop(self) -> None:
        """Drain, retire every shard, close the front, join threads."""
        self.request_drain()
        self.wait(timeout=max(5.0, self.config.term_grace * 4))
        self._stopped.set()
        for shard in self._shards:
            if shard.pid is not None:
                kill_process(shard.pid, term_grace=self.config.term_grace)
                shard.pid = None
            if shard.service is not None:
                shard.service.stop()
                shard.service = None
        if self._watchdog is not None:
            self._watchdog.join(timeout=5.0)
            self._watchdog = None
        for acceptor in self._acceptors:
            acceptor.join(timeout=5.0)
        self._acceptors = []
        with self._handlers_lock:
            handlers = list(self._handlers)
        for handler in handlers:
            handler.join(timeout=5.0)
        for listener in self._listeners:
            listener.close()
        self._listeners = []
        self.tcp_address = None
        kind, target = parse_address(self.config.listen)
        if kind == "unix":
            try:
                Path(target).unlink()
            except FileNotFoundError:
                pass
        rlog.info("fleet.stopped", requests=self._front_requests)

    @property
    def draining(self) -> bool:
        """Whether a graceful drain has started."""
        return self._draining.is_set()

    @property
    def requests(self) -> int:
        """Solve requests seen at the front."""
        return self._front_requests

    @property
    def reroutes(self) -> int:
        """Forward attempts that failed and walked the ring."""
        return self._reroutes

    @property
    def respawns(self) -> int:
        """Shards the watchdog restarted after death or stall."""
        return self._respawns

    # -- shard health --------------------------------------------------------

    def _shard_alive(self, shard: _Shard) -> bool:
        if shard.lost:
            return False
        if self._processes:
            if shard.pid is None:
                return False
            try:
                os.kill(shard.pid, 0)
            except OSError:
                return False
            return True
        return shard.service is not None

    def alive_shards(self) -> set[int]:
        """Indices of shards currently believed healthy."""
        with self._shards_lock:
            return {
                s.index for s in self._shards if self._shard_alive(s)
            }

    def _watchdog_loop(self) -> None:
        while not self._stopped.is_set():
            self._check_shards()
            self._stopped.wait(_WATCHDOG_SECONDS)

    def _check_shards(self) -> None:
        """Reap exited children, respawn dead or stalled shards."""
        if self.draining:
            return
        assert self.board is not None
        with self._shards_lock:
            for shard in self._shards:
                dead = False
                if self._processes and shard.pid is not None:
                    try:
                        done_pid, _ = os.waitpid(shard.pid, os.WNOHANG)
                    except ChildProcessError:
                        done_pid = shard.pid
                    if done_pid == shard.pid:
                        shard.pid = None
                        dead = True
                if shard.lost:
                    dead = True
                stalled = (
                    not dead
                    and self._shard_alive(shard)
                    and self.board.age(shard.index)
                    > self.config.shard_stall_timeout
                )
                if not dead and not stalled:
                    continue
                reason = "stalled" if stalled else "exited"
                if shard.pid is not None:
                    kill_process(shard.pid, term_grace=self.config.term_grace)
                    shard.pid = None
                if shard.service is not None:
                    try:
                        shard.service.stop()
                    except Exception:
                        pass
                    shard.service = None
                self._respawns += 1
                self.observer.count("fleet.shard_respawns")
                self.observer.event(
                    "fleet.shard_respawn",
                    shard=shard.index,
                    reason=reason,
                    generation=shard.generation,
                )
                rlog.info(
                    "fleet.shard_respawn", shard=shard.index, reason=reason
                )
                self._spawn(shard)

    # -- front listener ------------------------------------------------------

    def _accept_loop(self, listener: socket.socket) -> None:
        while not self._stopped.is_set():
            try:
                conn, _ = listener.accept()
            except socket.timeout:
                continue
            except OSError:  # pragma: no cover - listener closed under us
                break
            handler = threading.Thread(
                target=self._handle_connection, args=(conn,), daemon=True
            )
            with self._handlers_lock:
                self._handlers.add(handler)
            handler.start()

    def _handle_connection(self, conn: socket.socket) -> None:
        try:
            with conn:
                conn.settimeout(max(60.0, self.config.forward_timeout))
                try:
                    message = recv_message(conn)
                except ProtocolError as exc:
                    send_message(
                        conn,
                        Response(
                            id="", status=STATUS_INVALID, error=str(exc)
                        ).to_dict(),
                    )
                    return
                if message is None:
                    return
                send_message(conn, self._dispatch(message))
        except OSError:
            pass
        finally:
            with self._handlers_lock:
                self._handlers.discard(threading.current_thread())

    # -- dispatch ------------------------------------------------------------

    def _dispatch(self, message: dict) -> dict:
        kind = message.get("kind", "solve")
        if kind == "ping":
            alive = sorted(self.alive_shards())
            return {
                "kind": "pong",
                "draining": self.draining,
                "uptime_seconds": time.monotonic() - self._started_at,
                "pid": os.getpid(),
                "fleet": {
                    "shards": self.config.shards,
                    "alive": alive,
                    "generations": [s.generation for s in self._shards],
                },
            }
        if kind == "stats":
            return self._stats()
        if kind == "drain":
            self.request_drain()
            return {"kind": "draining"}
        if kind != "solve":
            return Response(
                id=str(message.get("id") or ""),
                status=STATUS_INVALID,
                error=f"unknown message kind {kind!r}",
            ).to_dict()
        return self._handle_solve(message)

    def _stats(self) -> dict:
        """Fleet-wide stats: front counters + per-shard aggregation.

        The reply keeps the single-service schema (``queue_depth``,
        ``shed``, ``metrics``, ...) so pollers like ``parma runs
        watch`` work unchanged against a front, and adds a ``fleet``
        section plus the raw per-shard replies under ``shards``.
        """
        per_shard: list[dict | None] = []
        for shard in self._shards:
            reply: dict | None = None
            if self._shard_alive(shard):
                try:
                    reply = self._forward_message(
                        shard.index, {"kind": "stats"}, timeout=5.0
                    )
                except OSError:
                    reply = None
            per_shard.append(reply)
        merged = MetricsRegistry()
        if self.observer.metrics is not None:
            merged.merge(self.observer.metrics.snapshot())
        queue_depth = 0
        queue_depths = {name: 0 for name in PRIORITY_CLASSES}
        estimated = 0.0
        requests = 0
        shed = dict(self._shed_counts)
        quota_rejections = self._quota_rejections
        idempotent_hits = 0
        worker_respawns = 0
        salvaged = 0
        for reply in per_shard:
            if not reply:
                continue
            merged.merge(reply.get("metrics", {}) or {})
            queue_depth += int(reply.get("queue_depth", 0))
            for name, count in (reply.get("queue_depths") or {}).items():
                queue_depths[name] = queue_depths.get(name, 0) + int(count)
            estimated = max(
                estimated, float(reply.get("estimated_queue_seconds", 0.0))
            )
            requests += int(reply.get("requests", 0))
            for name, count in (reply.get("shed") or {}).items():
                shed[name] = shed.get(name, 0) + int(count)
            quota_rejections += int(reply.get("quota_rejections", 0))
            idempotent_hits += int(reply.get("idempotent_hits", 0))
            worker_respawns += int(reply.get("worker_respawns", 0))
            salvaged += int(reply.get("requests_salvaged", 0))
        now = time.monotonic()
        with self._front_lock:
            routed = list(self._routed)
        return {
            "kind": "stats",
            "server_monotonic": now,
            "uptime_seconds": now - self._started_at,
            "queue_depth": queue_depth,
            "queue_depths": queue_depths,
            "estimated_queue_seconds": estimated,
            "draining": self.draining,
            "requests": self._front_requests,
            "executor": "fleet",
            "shed": shed,
            "quota_rejections": quota_rejections,
            "idempotent_hits": idempotent_hits,
            "worker_respawns": worker_respawns,
            "requests_salvaged": salvaged,
            "metrics": merged.snapshot(),
            "fleet": {
                "shards": self.config.shards,
                "alive": sorted(self.alive_shards()),
                "generations": [s.generation for s in self._shards],
                "routed": routed,
                "reroutes": self._reroutes,
                "shard_respawns": self._respawns,
                "shard_requests": requests,
                "inflight": [s.inflight for s in self._shards],
            },
            "shards": per_shard,
        }

    # -- solve path ----------------------------------------------------------

    def _handle_solve(self, message: dict) -> dict:
        try:
            request = Request.from_dict(message)
            request.z_array()  # shape-check before routing
        except (ValueError, TypeError) as exc:
            self.observer.count("fleet.rejected.invalid")
            return Response(
                id=str(message.get("id") or ""),
                status=STATUS_INVALID,
                error=str(exc),
            ).to_dict()
        with self._front_lock:
            self._front_requests += 1
            ordinal = self._front_requests
        self.observer.count("fleet.requests")
        if self.draining:
            self.observer.count("fleet.rejected.draining")
            return Response(
                id=request.id or "",
                status=STATUS_DRAINING,
                error="fleet is draining; retry against the next instance",
            ).to_dict()
        if not self._admit_quota(request):
            return Response(
                id=request.id or "",
                status=STATUS_QUOTA,
                error=(
                    f"client {request.client_id!r} exhausted its request "
                    "quota at the fleet front; retry after backoff"
                ),
            ).to_dict()
        # Assign the idempotency id at the front: every forward attempt
        # (including reroutes after an outcome-unknown failure) carries
        # the same key, so the shards dedupe instead of double-solving.
        if not request.id:
            message = dict(message)
            message["id"] = request.id = (
                f"fleet-{os.getpid():x}-{ordinal:08x}"
            )
        key = self.map.route_key(request.n, request.formation)
        self._maybe_inject_fault(ordinal, key)
        preference = self.map.preference(key)
        attempts = 0
        for shard_index in preference:
            if attempts > self.config.max_reroutes:
                break
            with self._shards_lock:
                shard = self._shards[shard_index]
                if not self._shard_alive(shard):
                    continue
                if (
                    shard.inflight >= self.config.max_inflight_per_shard
                    and request.priority != PRIORITY_INTERACTIVE
                ):
                    self._shed_counts[request.priority] = (
                        self._shed_counts.get(request.priority, 0) + 1
                    )
                    self.observer.count(f"fleet.shed.{request.priority}")
                    return Response(
                        id=request.id or "",
                        status=STATUS_QUEUE_FULL,
                        error=(
                            f"shard {shard_index} is saturated "
                            f"({shard.inflight} in flight); batch work "
                            "shed at the fleet front — retry with backoff"
                        ),
                    ).to_dict()
                shard.inflight += 1
            attempts += 1
            started = time.perf_counter()
            try:
                reply = self._forward_message(
                    shard_index, message, timeout=self.config.forward_timeout
                )
            except OSError as exc:
                self._note_forward_failure(shard_index, exc)
                continue
            finally:
                with self._shards_lock:
                    shard.inflight = max(0, shard.inflight - 1)
            self.observer.observe_hist(
                "fleet.forward_seconds", time.perf_counter() - started
            )
            with self._front_lock:
                self._routed[shard_index] += 1
            self.observer.count(f"fleet.routed.shard{shard_index}")
            return reply
        self.observer.count("fleet.worker_lost")
        return Response(
            id=request.id or "",
            status=STATUS_WORKER_LOST,
            error=(
                "every candidate shard failed while running this request; "
                "retry with the same request id"
            ),
        ).to_dict()

    def _admit_quota(self, request: Request) -> bool:
        if self.config.quota_rate is None:
            return True
        client = request.client_id or "anonymous"
        with self._buckets_lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = TokenBucket(
                    self.config.quota_rate, self.config.quota_burst
                )
                self._buckets[client] = bucket
        if bucket.try_take():
            return True
        with self._front_lock:
            self._quota_rejections += 1
        self.observer.count("fleet.rejected.quota")
        return False

    def _maybe_inject_fault(self, ordinal: int, key: str) -> None:
        """Chaos hook: kill the routed shard before forwarding."""
        if self.faults is None:
            return
        shard_index = self.map.preference(key)[0]
        with self._shards_lock:
            shard = self._shards[shard_index]
            generation = shard.generation
        if not self.faults.fleet_kill_at(ordinal, generation):
            return
        rlog.info(
            "fleet.fault.kill", shard=shard_index, ordinal=ordinal
        )
        if shard.pid is not None:
            try:
                os.kill(shard.pid, signal.SIGKILL)
            except OSError:
                pass
        elif shard.service is not None:
            shard.service.stop()
            with self._shards_lock:
                shard.service = None
                shard.lost = True

    def _note_forward_failure(self, shard_index: int, exc: OSError) -> None:
        with self._front_lock:
            self._reroutes += 1
        self.observer.count("fleet.reroutes")
        self.observer.event(
            "fleet.reroute", shard=shard_index, error=str(exc)
        )
        rlog.info("fleet.reroute", shard=shard_index, error=str(exc))
        with self._shards_lock:
            shard = self._shards[shard_index]
            if self._processes and shard.pid is not None:
                try:
                    os.kill(shard.pid, 0)
                except OSError:
                    pass  # already gone; the watchdog reaps it
            elif not self._processes:
                shard.lost = True
        self._check_shards()

    # -- forwarding ----------------------------------------------------------

    def _forward_message(
        self, shard_index: int, message: dict, *, timeout: float
    ) -> dict:
        """One framed round-trip to a shard; raises ``OSError`` family."""
        sock = connect_address(
            self.config.shard_socket(shard_index), timeout=timeout
        )
        try:
            send_message(sock, message)
            try:
                reply = recv_message(sock)
            except ProtocolError as exc:
                raise ConnectionError(
                    f"shard {shard_index} reply broke mid-frame: {exc}"
                ) from exc
            if reply is None:
                raise ConnectionError(
                    f"shard {shard_index} closed without replying"
                )
            return reply
        finally:
            sock.close()


# -- shard child --------------------------------------------------------------


def _shard_main(
    index: int,
    board: HeartbeatBoard,
    listeners: list[socket.socket],
    config: FleetConfig,
) -> None:  # pragma: no cover - runs in the forked shard child
    """Run one shard service until drained; never returns normally."""
    for listener in listeners:
        try:
            listener.close()
        except OSError:
            pass
    # Fresh Observer with a live metrics registry so `stats`
    # aggregation has real counters to merge (the inherited global
    # observer may be a null one).
    service = SolveService(
        replace(config.shard_service_config(index), observer=Observer())
    )

    def _drain(signum: int, frame: object) -> None:
        service.request_drain()

    signal.signal(signal.SIGTERM, _drain)
    signal.signal(signal.SIGINT, _drain)
    try:
        service.start()
    except Exception:
        os._exit(1)
    stop_beat = threading.Event()

    def _beat() -> None:
        while not stop_beat.is_set():
            board.tick(index)
            stop_beat.wait(_BEAT_SECONDS)

    beat = threading.Thread(target=_beat, daemon=True)
    beat.start()
    while not service.wait(timeout=0.2):
        pass
    stop_beat.set()
    service.stop()
    board.mark_done(index)
    os._exit(0)
