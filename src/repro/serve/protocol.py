"""Wire protocol for the solve service: framing, schema, status codes.

One message is a 4-byte big-endian length prefix followed by that many
bytes of UTF-8 JSON.  JSON keeps the protocol debuggable (``socat``
against the socket shows readable requests) and — because Python's
``json`` serializes floats with shortest round-tripping ``repr`` — a
resistance field survives the wire *bit-identically*, which the
integration tests assert against standalone ``parma solve``.

Statuses map onto process exit codes so ``parma submit`` behaves like
the batch CLI it replaces: ``ok`` → 0, ``failed`` → 1, ``invalid`` →
2, ``deadline-exceeded`` → 94 (the same
:data:`repro.resilience.supervise.DEADLINE_EXIT_CODE` the batch
``--deadline`` path uses), and every retriable rejection — queue
full, draining, quota exhausted, executor worker lost — → 75
(``EX_TEMPFAIL``; the request holds no partial server-side state and
may be retried verbatim, carrying the same idempotency ``id``).  See
``docs/SERVING.md`` for the full table.
"""

from __future__ import annotations

import json
import socket
import struct
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.resilience.supervise import DEADLINE_EXIT_CODE

#: Per-message length-prefix format (4-byte big-endian unsigned).
_LENGTH_FORMAT = ">I"
_LENGTH_BYTES = struct.calcsize(_LENGTH_FORMAT)

#: Refuse messages beyond this many bytes (a 200x200 field is ~1 MB;
#: 64 MB leaves head-room without letting a bad client exhaust RAM).
MAX_MESSAGE_BYTES = 64 * 1024 * 1024

# -- statuses -----------------------------------------------------------------

#: Request ran to a converged result; manifest written.
STATUS_OK = "ok"
#: Request ran and failed (solver exhausted, validation error, ...).
STATUS_FAILED = "failed"
#: Request was malformed and never admitted (bad shape, unknown knob).
STATUS_INVALID = "invalid"
#: The per-request wall-clock budget expired mid-run.
STATUS_DEADLINE = "deadline-exceeded"
#: Admission control: the bounded queue was at depth; retry later.
STATUS_QUEUE_FULL = "rejected-queue-full"
#: Admission control: the service is draining (SIGTERM); retry against
#: the next instance.
STATUS_DRAINING = "rejected-draining"
#: The executor worker running the request died (segfault, OOM kill,
#: stall past ``--stall-timeout``) before producing a result.  The
#: service itself survived; a retry re-runs the solve from scratch.
STATUS_WORKER_LOST = "worker-lost"
#: Admission control: the client's token-bucket quota was empty.
STATUS_QUOTA = "rejected-quota"

#: Statuses a client may retry verbatim.  Admission rejections never
#: touched an engine; ``worker-lost`` means the executor died before a
#: result frame was written, so no partial server-side state survives
#: and a retry (same idempotency ``id``) duplicates no work.
RETRIABLE_STATUSES = frozenset(
    {STATUS_QUEUE_FULL, STATUS_DRAINING, STATUS_WORKER_LOST, STATUS_QUOTA}
)

# -- priority classes ---------------------------------------------------------

#: Latency-sensitive work: dequeued ahead of ``batch`` and never shed
#: while lower-priority tickets remain.
PRIORITY_INTERACTIVE = "interactive"
#: Throughput work (the default): first to be shed under overload.
PRIORITY_BATCH = "batch"

#: All priority classes, most urgent first.  Index order is the
#: dequeue order and the *reverse* of the shedding order.
PRIORITY_CLASSES = (PRIORITY_INTERACTIVE, PRIORITY_BATCH)

#: Exit status ``parma submit`` returns for retriable rejections
#: (sysexits.h ``EX_TEMPFAIL``, the conventional "try again" code,
#: distinct from 1/2 failures and the deadline's 94).
RETRIABLE_EXIT_CODE = 75

_EXIT_FOR_STATUS = {
    STATUS_OK: 0,
    STATUS_FAILED: 1,
    STATUS_INVALID: 2,
    STATUS_DEADLINE: DEADLINE_EXIT_CODE,
    STATUS_QUEUE_FULL: RETRIABLE_EXIT_CODE,
    STATUS_DRAINING: RETRIABLE_EXIT_CODE,
    STATUS_WORKER_LOST: RETRIABLE_EXIT_CODE,
    STATUS_QUOTA: RETRIABLE_EXIT_CODE,
}


def exit_status_for(status: str) -> int:
    """Process exit status ``parma submit`` maps a response status to."""
    try:
        return _EXIT_FOR_STATUS[status]
    except KeyError:
        raise ValueError(f"unknown response status {status!r}") from None


class ProtocolError(RuntimeError):
    """The peer sent bytes that do not frame/parse as a message.

    ``bytes_read`` records how far into the current frame the stream
    broke (0 when the failure happened between frames), so a client can
    report the offset and decide whether the request was already acked.
    """

    def __init__(self, message: str, *, bytes_read: int = 0) -> None:
        super().__init__(message)
        self.bytes_read = bytes_read


# -- schema -------------------------------------------------------------------


@dataclass(frozen=True)
class Request:
    """One parametrization request as it crosses the wire.

    The measurement travels inline (``z`` as nested lists) so the
    server never dereferences client-side paths; ``deadline`` is a
    per-request wall-clock budget in seconds, capped by the service's
    ``max_deadline`` at admission (see
    :meth:`repro.resilience.supervise.Deadline.capped`).  ``priority``
    selects the admission class (one of :data:`PRIORITY_CLASSES`) and
    ``client_id`` keys per-client token-bucket quotas (empty string =
    unmetered).  ``id`` doubles as the idempotency key: a retried
    request carrying the same ``id`` joins the in-flight ticket or
    returns the cached completed response instead of re-solving.
    """

    z: list
    voltage: float = 5.0
    hour: float = 0.0
    solver: str = "nested"
    formation: str = "cached"
    backend: str = "numpy"
    threshold_sigmas: float = 3.0
    validate: str = "strict"
    deadline: float | None = None
    solver_kwargs: dict = field(default_factory=dict)
    want_field: bool = True
    id: str | None = None
    priority: str = PRIORITY_BATCH
    client_id: str = ""

    @property
    def n(self) -> int:
        """Device side length implied by the inline measurement."""
        return len(self.z)

    def z_array(self) -> np.ndarray:
        """The measurement as a float64 ndarray (shape-checked)."""
        z = np.asarray(self.z, dtype=np.float64)
        if z.ndim != 2 or z.shape[0] != z.shape[1] or z.shape[0] < 2:
            raise ValueError(
                f"z must be a square matrix with n >= 2, got shape {z.shape}"
            )
        return z

    def to_dict(self) -> dict:
        """The JSON-ready ``solve`` message for this request."""
        return {
            "kind": "solve",
            "id": self.id,
            "z": self.z,
            "voltage": self.voltage,
            "hour": self.hour,
            "solver": self.solver,
            "formation": self.formation,
            "backend": self.backend,
            "threshold_sigmas": self.threshold_sigmas,
            "validate": self.validate,
            "deadline": self.deadline,
            "solver_kwargs": dict(self.solver_kwargs),
            "want_field": self.want_field,
            "priority": self.priority,
            "client_id": self.client_id,
        }

    @classmethod
    def from_dict(cls, message: dict) -> "Request":
        """Parse a ``solve`` message; raises ``ValueError`` when malformed."""
        if not isinstance(message, dict):
            raise ValueError("request must be a JSON object")
        z = message.get("z")
        if not isinstance(z, list) or not z:
            raise ValueError("request field 'z' must be a non-empty list")
        kwargs = message.get("solver_kwargs") or {}
        if not isinstance(kwargs, dict):
            raise ValueError("request field 'solver_kwargs' must be an object")
        priority = str(message.get("priority", PRIORITY_BATCH))
        if priority not in PRIORITY_CLASSES:
            raise ValueError(
                f"unknown priority {priority!r}; "
                f"expected one of {PRIORITY_CLASSES}"
            )
        return cls(
            z=z,
            voltage=float(message.get("voltage", 5.0)),
            hour=float(message.get("hour", 0.0)),
            solver=str(message.get("solver", "nested")),
            formation=str(message.get("formation", "cached")),
            backend=str(message.get("backend", "numpy")),
            threshold_sigmas=float(message.get("threshold_sigmas", 3.0)),
            validate=str(message.get("validate", "strict")),
            deadline=(
                None if message.get("deadline") is None
                else float(message["deadline"])
            ),
            solver_kwargs=dict(kwargs),
            want_field=bool(message.get("want_field", True)),
            id=(None if message.get("id") is None else str(message["id"])),
            priority=priority,
            client_id=str(message.get("client_id", "")),
        )


@dataclass(frozen=True)
class Response:
    """What the service answers for one request.

    ``manifest_path`` points at the per-request run manifest written
    through :mod:`repro.observe` (absent for rejected/invalid
    requests); ``batch_size`` and ``cache_warm`` describe how the
    request was executed (how many compatible requests shared its
    formation pass, and whether the per-``n`` template was already
    resident); ``queue_seconds``/``elapsed_seconds`` split latency
    into waiting and working.
    """

    id: str
    status: str
    summary: str = ""
    error: str = ""
    manifest_path: str | None = None
    num_regions: int = 0
    resistance: list | None = None
    events: tuple[str, ...] = ()
    batch_size: int = 0
    cache_warm: bool = False
    queue_seconds: float = 0.0
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """True when the request ran to a converged result."""
        return self.status == STATUS_OK

    @property
    def retriable(self) -> bool:
        """True when the request may be resubmitted verbatim."""
        return self.status in RETRIABLE_STATUSES

    @property
    def exit_status(self) -> int:
        """The process exit status this response maps to."""
        return exit_status_for(self.status)

    def resistance_array(self) -> np.ndarray | None:
        """The recovered field as an ndarray (None when not carried)."""
        if self.resistance is None:
            return None
        return np.asarray(self.resistance, dtype=np.float64)

    def to_dict(self) -> dict:
        """The JSON-ready response message."""
        return {
            "kind": "result",
            "id": self.id,
            "status": self.status,
            "exit_status": self.exit_status,
            "summary": self.summary,
            "error": self.error,
            "manifest_path": self.manifest_path,
            "num_regions": self.num_regions,
            "resistance": self.resistance,
            "events": list(self.events),
            "batch_size": self.batch_size,
            "cache_warm": self.cache_warm,
            "queue_seconds": self.queue_seconds,
            "elapsed_seconds": self.elapsed_seconds,
        }

    @classmethod
    def from_dict(cls, message: dict) -> "Response":
        """Parse a ``result`` message; raises ``ValueError`` when malformed."""
        if not isinstance(message, dict) or "status" not in message:
            raise ValueError("response must be a JSON object with a status")
        status = str(message["status"])
        exit_status_for(status)  # reject unknown statuses early
        return cls(
            id=str(message.get("id", "")),
            status=status,
            summary=str(message.get("summary", "")),
            error=str(message.get("error", "")),
            manifest_path=message.get("manifest_path"),
            num_regions=int(message.get("num_regions", 0)),
            resistance=message.get("resistance"),
            events=tuple(message.get("events") or ()),
            batch_size=int(message.get("batch_size", 0)),
            cache_warm=bool(message.get("cache_warm", False)),
            queue_seconds=float(message.get("queue_seconds", 0.0)),
            elapsed_seconds=float(message.get("elapsed_seconds", 0.0)),
        )


# -- framing ------------------------------------------------------------------


def encode_message(message: dict) -> bytes:
    """Frame a JSON-able dict as length-prefixed UTF-8 bytes."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"message of {len(payload)} bytes exceeds the "
            f"{MAX_MESSAGE_BYTES}-byte limit"
        )
    return struct.pack(_LENGTH_FORMAT, len(payload)) + payload


def send_message(sock: socket.socket, message: dict) -> None:
    """Write one framed message to a connected socket."""
    sock.sendall(encode_message(message))


def _recv_exact(sock: socket.socket, count: int) -> bytes | None:
    """Read exactly ``count`` bytes; None on clean EOF at a boundary."""
    chunks: list[bytes] = []
    got = 0
    while got < count:
        chunk = sock.recv(min(count - got, 1 << 20))
        if not chunk:
            if got == 0:
                return None
            raise ProtocolError(
                f"connection closed mid-message ({got}/{count} bytes)",
                bytes_read=got,
            )
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket) -> dict | None:
    """Read one framed message; None when the peer closed cleanly."""
    header = _recv_exact(sock, _LENGTH_BYTES)
    if header is None:
        return None
    (length,) = struct.unpack(_LENGTH_FORMAT, header)
    if length > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"peer announced a {length}-byte message (limit "
            f"{MAX_MESSAGE_BYTES})"
        )
    try:
        payload = _recv_exact(sock, length)
    except ProtocolError as exc:
        # Make the offset frame-relative: the 4-byte header landed.
        exc.bytes_read += _LENGTH_BYTES
        raise
    if payload is None:
        raise ProtocolError(
            "connection closed between header and payload",
            bytes_read=_LENGTH_BYTES,
        )
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable message payload: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("message payload must be a JSON object")
    return message


# -- addresses ----------------------------------------------------------------


def parse_address(spec: object) -> tuple[str, object]:
    """Classify a listen/connect spec as TCP or unix-domain.

    ``HOST:PORT`` — an all-digit port after the last colon, no ``/``
    anywhere — means TCP, as does an explicit ``tcp://HOST:PORT``
    prefix.  Everything else is a filesystem path to a unix-domain
    socket.  Returns ``("tcp", (host, port))`` or ``("unix", path)``.

    An empty TCP host (``:7433``) resolves to ``127.0.0.1``: the safe
    default for a protocol with no authentication (see the security
    note in ``docs/SERVING.md``).  IPv6 literals are not parsed — put
    a resolver name or an IPv4 address in the host part.

    A ``(host, port)`` pair — the form ``getsockname`` returns and
    :attr:`SolveService.tcp_address` holds after binding port 0 — is
    accepted as TCP directly.
    """
    if isinstance(spec, (tuple, list)) and len(spec) == 2:
        host, port = spec
        return ("tcp", (str(host) or "127.0.0.1", int(port)))
    text = str(spec)
    explicit = text.startswith("tcp://")
    if explicit:
        text = text[len("tcp://"):]
    if "/" not in text and ":" in text:
        host, _, port = text.rpartition(":")
        if port.isdigit():
            return ("tcp", (host or "127.0.0.1", int(port)))
    if explicit:
        raise ValueError(f"malformed tcp address {spec!r} (want HOST:PORT)")
    return ("unix", str(spec))


def format_address(spec: object) -> str:
    """A human-readable rendering of a parsed or raw address spec."""
    kind, target = parse_address(spec)
    if kind == "tcp":
        host, port = target
        return f"{host}:{port}"
    return str(target)


def connect_address(spec: object, timeout: float | None = None) -> socket.socket:
    """Open a stream connection to ``spec``.

    TCP or unix, per :func:`parse_address`.  Raises the underlying
    ``OSError`` family untranslated — callers own the retry/error
    story.
    """
    kind, target = parse_address(spec)
    family = socket.AF_INET if kind == "tcp" else socket.AF_UNIX
    sock = socket.socket(family, socket.SOCK_STREAM)
    if timeout is not None:
        sock.settimeout(timeout)
    try:
        sock.connect(target if kind == "tcp" else str(target))
    except BaseException:
        sock.close()
        raise
    return sock
