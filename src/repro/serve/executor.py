""":class:`ExecutorPool` — forked, supervised solve executor workers.

Crash isolation for the solve service: instead of executing batches on
threads inside the acceptor process (where one native fault — a BLAS
segfault, an OOM kill — takes down every queued request), the service
forks a small pool of executor children.  Each child owns a private
:class:`repro.serve.runner.RequestRunner` (and therefore its own warm
engine pool and template caches) and speaks a framed channel over an
inherited ``socketpair``:

* parent → child: ``{"kind": "batch", "requests": [Request, ...],
  "queue_seconds": [...], "batch_size": N}``
* child → parent: one ``{"kind": "result", "index": i, "response":
  Response, "metrics": {...}}`` per member, then ``{"kind":
  "batch-done"}``.

The channel reuses the protocol's 4-byte length prefix and size bound
but carries pickled objects rather than JSON: both ends are the same
trusted codebase, pickling skips four JSON passes per request (the
benchmarked difference between the subprocess path clearing and
missing its < 5 % overhead gate), and binary floats round-trip
bit-exactly by construction.  The *client* socket stays JSON.

Supervision reuses the PR-4 machinery: a
:class:`repro.resilience.supervise.HeartbeatBoard` row per slot
(created before the first fork, so every child — including respawns —
shares the mapping), ticked by the child at each request boundary.
The dispatching parent kills a child via
:func:`repro.resilience.supervise.kill_process` when its heartbeat age
exceeds ``stall_timeout`` (or the in-flight request's capped
``Deadline`` plus grace), then respawns the slot and either
*salvages* the batch's unresolved tickets onto the fresh child (at
most ``max_salvage`` times per ticket) or resolves them with the
retriable ``worker-lost`` status.  Crashes, clean EOFs and corrupt
frames all funnel into the same loss path, which is what the serve
chaos modes of :mod:`repro.resilience.faults` exercise.
"""

from __future__ import annotations

import os
import pickle
import select
import signal
import socket
import struct
import time
from pathlib import Path
from typing import Callable

from repro.observe import Observer
from repro.observe.observer import as_observer
from repro.resilience.faults import FaultInjector, FaultPlan, as_injector
from repro.resilience.supervise import Deadline, HeartbeatBoard, kill_process
from repro.serve.protocol import (
    MAX_MESSAGE_BYTES,
    STATUS_WORKER_LOST,
    ProtocolError,
    Response,
    _recv_exact,
)
from repro.serve.queue import Ticket
from repro.serve.runner import RequestRunner
from repro.utils import logging as rlog

#: Parent-side readability poll between heartbeat checks.
_POLL_SECONDS = 0.1

#: Executor-channel length prefix (same shape as the JSON protocol's).
_LENGTH_FORMAT = ">I"
_LENGTH_BYTES = struct.calcsize(_LENGTH_FORMAT)


def _encode_frame(message: dict) -> bytes:
    """Frame a pickled executor-channel message (parent ↔ child only)."""
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"executor frame of {len(payload)} bytes exceeds the "
            f"{MAX_MESSAGE_BYTES}-byte limit"
        )
    return struct.pack(_LENGTH_FORMAT, len(payload)) + payload


def _send_frame(sock: socket.socket, message: dict) -> None:
    """Write one framed executor-channel message."""
    sock.sendall(_encode_frame(message))


def _recv_frame(sock: socket.socket) -> dict | None:
    """Read one executor-channel message; None on clean EOF.

    Enforces the same length bound as the JSON protocol, so a corrupt
    prefix (including the injected ``serve_corrupt_frames`` fault) is
    rejected deterministically instead of desynchronizing the stream.
    """
    header = _recv_exact(sock, _LENGTH_BYTES)
    if header is None:
        return None
    (length,) = struct.unpack(_LENGTH_FORMAT, header)
    if length > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"executor frame of {length} bytes exceeds the "
            f"{MAX_MESSAGE_BYTES}-byte limit"
        )
    payload = _recv_exact(sock, length)
    if payload is None:
        raise ProtocolError("connection closed between header and payload")
    try:
        message = pickle.loads(payload)
    except Exception as exc:
        raise ProtocolError(f"undecodable executor frame: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("executor frame must unpickle to a dict")
    return message


class _Child:
    """Parent-side handle for one forked executor worker."""

    __slots__ = ("pid", "sock", "generation")

    def __init__(self, pid: int, sock: socket.socket, generation: int) -> None:
        self.pid = pid
        self.sock = sock
        self.generation = generation


class ExecutorPool:
    """A fixed set of executor slots, each backed by a forked child.

    One dispatcher thread drives one slot at a time through
    :meth:`run_batch`; the pool itself owns spawning, supervision,
    loss handling and salvage.  Metrics land on ``observer``
    (``serve.worker_respawns``, ``serve.requests_salvaged``,
    ``serve.worker_lost`` plus everything the children snapshot back);
    ``on_response`` fires in the parent for every delivered response
    so the service can feed its queue-seconds load estimator.
    """

    def __init__(
        self,
        slots: int,
        results_dir: str | Path,
        *,
        strategy: str = "single",
        num_workers: int = 4,
        max_deadline: float | None = None,
        stall_timeout: float = 30.0,
        term_grace: float = 1.0,
        max_salvage: int = 1,
        observer: object | None = None,
        faults: FaultInjector | FaultPlan | None = None,
        on_response: Callable[[Ticket, Response], None] | None = None,
    ) -> None:
        if slots < 1:
            raise ValueError(f"slots must be >= 1, got {slots}")
        self.slots = int(slots)
        self.results_dir = Path(results_dir)
        self.strategy = strategy
        self.num_workers = num_workers
        self.max_deadline = max_deadline
        self.stall_timeout = float(stall_timeout)
        self.term_grace = float(term_grace)
        self.max_salvage = int(max_salvage)
        self.observer = as_observer(observer)
        self.faults = as_injector(faults)
        self.on_response = on_response
        # Created before any fork so every child shares the mapping.
        self.board = HeartbeatBoard(self.slots)
        self._children: list[_Child | None] = [None] * self.slots
        self._generations = [0] * self.slots
        self.respawns = 0
        self.salvaged = 0
        self.lost_responses = 0

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Fork the initial child for every slot.

        Called before the service spawns its acceptor/handler threads:
        forking from a still-single-threaded process sidesteps the
        classic fork-with-locks hazards; later *respawns* do fork from
        a threaded parent, which CPython's at-fork lock reinit makes
        survivable for the narrow executor code path.
        """
        for slot in range(self.slots):
            self._spawn(slot)

    def stop(self) -> None:
        """Retire every child: EOF first (clean exit), escalate if needed."""
        for slot, child in enumerate(self._children):
            if child is None:
                continue
            try:
                child.sock.close()
            except OSError:  # pragma: no cover - already torn down
                pass
            kill_process(child.pid, term_grace=self.term_grace)
            self._children[slot] = None

    def _spawn(self, slot: int) -> _Child:
        """Fork a fresh executor child into ``slot``."""
        generation = self._generations[slot]
        self._generations[slot] += 1
        self.board.assign(slot, 0)  # reset the heartbeat clock pre-fork
        parent_sock, child_sock = socket.socketpair()
        pid = os.fork()
        if pid == 0:  # pragma: no cover - child process, exits via os._exit
            try:
                parent_sock.close()
                _child_main(
                    child_sock,
                    slot=slot,
                    generation=generation,
                    board=self.board,
                    results_dir=self.results_dir,
                    strategy=self.strategy,
                    num_workers=self.num_workers,
                    max_deadline=self.max_deadline,
                    faults=self.faults,
                )
            finally:
                os._exit(1)  # _child_main exits itself; this is the net
        child_sock.close()
        parent_sock.settimeout(self.stall_timeout)
        child = _Child(pid, parent_sock, generation)
        self._children[slot] = child
        if generation > 0:
            self.respawns += 1
            self.observer.count("serve.worker_respawns")
        rlog.info(
            "serve.executor_spawned", slot=slot, pid=pid, generation=generation
        )
        return child

    def _lose(self, slot: int, reason: str) -> None:
        """Kill + forget the slot's child after any loss signal."""
        child = self._children[slot]
        if child is None:
            return
        self.observer.count("serve.worker_lost")
        try:
            child.sock.close()
        except OSError:  # pragma: no cover - already torn down
            pass
        code = kill_process(child.pid, term_grace=self.term_grace)
        self._children[slot] = None
        self.observer.event(
            "serve.worker_lost", slot=slot, reason=reason, exit_code=code
        )
        rlog.info(
            "serve.worker_lost",
            slot=slot,
            pid=child.pid,
            reason=reason,
            exit_code=code,
        )

    # -- dispatch ------------------------------------------------------------

    def run_batch(self, slot: int, tickets: list[Ticket]) -> None:
        """Execute a batch on ``slot``, salvaging across worker loss.

        Every ticket ends resolved: with its solve response, or — after
        ``max_salvage`` re-dispatches onto fresh children — with the
        retriable ``worker-lost`` status.
        """
        pending = list(tickets)
        while pending:
            if self._attempt(slot, pending):
                return
            lost = [t for t in pending if not t.resolved]
            if not lost:
                return
            pending = []
            for ticket in lost:
                ticket.salvage_count += 1
                if ticket.salvage_count <= self.max_salvage:
                    self.salvaged += 1
                    self.observer.count("serve.requests_salvaged")
                    pending.append(ticket)
                else:
                    self.lost_responses += 1
                    self.observer.count("serve.responses.worker_lost")
                    ticket.try_resolve(
                        Response(
                            id=ticket.request.id or "",
                            status=STATUS_WORKER_LOST,
                            error=(
                                "executor worker died while running this "
                                "request; retry with the same request id"
                            ),
                            queue_seconds=ticket.queue_seconds(),
                        )
                    )

    def _attempt(self, slot: int, tickets: list[Ticket]) -> bool:
        """One dispatch of ``tickets`` to the slot's (live) child.

        True when the child answered ``batch-done``; False after any
        loss (the child is already killed and the slot left empty for
        the next attempt to respawn).
        """
        child = self._children[slot]
        if child is None:
            child = self._spawn(slot)
        job = {
            "kind": "batch",
            "requests": [t.request for t in tickets],
            "queue_seconds": [t.queue_seconds() for t in tickets],
            "batch_size": len(tickets),
        }
        for ticket in tickets:
            self.observer.observe_hist(
                "serve.queue_wait_seconds", ticket.queue_seconds()
            )
        try:
            _send_frame(child.sock, job)
        except OSError:
            self._lose(slot, reason="send-failed")
            return False
        unresolved = {index: t for index, t in enumerate(tickets)}
        while True:
            try:
                ready, _, _ = select.select([child.sock], [], [], _POLL_SECONDS)
            except OSError:  # pragma: no cover - socket died under select
                ready = []
            if not ready:
                limit = self._stall_limit(unresolved)
                if self.board.age(slot) > limit:
                    self._lose(slot, reason="stall")
                    return False
                continue
            try:
                message = _recv_frame(child.sock)
            except (ProtocolError, OSError, socket.timeout):
                self._lose(slot, reason="protocol")
                return False
            if message is None:
                self._lose(slot, reason="eof")
                return False
            kind = message.get("kind")
            if kind == "batch-done":
                return True
            if kind != "result":  # pragma: no cover - unknown frame kind
                self._lose(slot, reason=f"unexpected-{kind}")
                return False
            index = int(message.get("index", -1))
            ticket = unresolved.pop(index, None)
            response = message.get("response")
            if not isinstance(response, Response):
                self._lose(slot, reason="bad-response")
                return False
            metrics = message.get("metrics")
            if metrics and self.observer.metrics is not None:
                self.observer.metrics.merge(metrics)
            if ticket is not None:
                ticket.try_resolve(response)
                if self.on_response is not None:
                    self.on_response(ticket, response)

    def _stall_limit(self, unresolved: dict[int, Ticket]) -> float:
        """Heartbeat-age bound for the request currently in flight.

        The child ticks at request boundaries, so "age" is "seconds
        inside the current request".  A deadline-bearing request gets
        its capped budget plus the kill grace (the child's own engine
        normally answers ``deadline-exceeded`` well before this); the
        stall timeout is the ceiling either way.
        """
        if not unresolved:
            return self.stall_timeout
        current = unresolved[min(unresolved)]
        deadline = Deadline.capped(current.request.deadline, self.max_deadline)
        if deadline is None:
            return self.stall_timeout
        return min(self.stall_timeout, deadline.seconds + self.term_grace + 1.0)


# -- child side ---------------------------------------------------------------


def _child_main(
    sock: socket.socket,
    *,
    slot: int,
    generation: int,
    board: HeartbeatBoard,
    results_dir: Path,
    strategy: str,
    num_workers: int,
    max_deadline: float | None,
    faults: FaultInjector | None,
) -> None:  # pragma: no cover - runs in the forked child
    """Request loop of one executor child; exits via ``os._exit``.

    The child is single-threaded: a private runner (warm engine pool),
    the inherited heartbeat row ticked at request boundaries, and a
    metrics registry snapshotted back with every result so the parent's
    ``stats`` stay a running total across the whole pool.
    """
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_DFL)
    from repro.core.templates import has_template

    runner = RequestRunner(
        results_dir,
        strategy=strategy,
        num_workers=num_workers,
        max_deadline=max_deadline,
        pool_engines=True,
        observer=Observer(),
    )
    ordinal = 0  # requests served since this child forked
    while True:
        try:
            message = _recv_frame(sock)
        except (ProtocolError, OSError):
            os._exit(1)
        if message is None:  # parent closed the pipe: clean retirement
            os._exit(0)
        if message.get("kind") != "batch":
            continue
        requests = message.get("requests") or []
        queue_seconds = message.get("queue_seconds") or []
        batch_size = int(message.get("batch_size", len(requests)))
        warm_head = True
        for index, request in enumerate(requests):
            board.tick(slot)
            if index == 0:
                # Warmth is a property of *this child's* caches.
                warm_head = request.formation != "cached" or has_template(
                    request.n
                )
            if faults is not None:
                faults.on_serve_request(ordinal, generation)
            response = runner.run(
                request,
                batch_size=batch_size,
                warm=warm_head or index > 0,
                queue_seconds=float(
                    queue_seconds[index] if index < len(queue_seconds) else 0.0
                ),
            )
            snapshot = (
                runner.observer.metrics.snapshot()
                if runner.observer.metrics is not None
                else {}
            )
            if runner.observer.metrics is not None:
                runner.observer.metrics.clear()
            payload = {
                "kind": "result",
                "index": index,
                "response": response,
                "metrics": snapshot,
            }
            fate = (
                faults.serve_frame_fate(ordinal, generation)
                if faults is not None
                else "ok"
            )
            ordinal += 1
            try:
                if fate == "drop":
                    sock.close()
                    os._exit(75)
                frame = _encode_frame(payload)
                if fate == "corrupt":
                    # An impossible length prefix: the parent's framing
                    # layer rejects it deterministically.
                    frame = (
                        struct.pack(_LENGTH_FORMAT, MAX_MESSAGE_BYTES + 1)
                        + frame[_LENGTH_BYTES:]
                    )
                sock.sendall(frame)
            except OSError:
                os._exit(1)
            board.tick(slot)
        try:
            _send_frame(sock, {"kind": "batch-done"})
        except OSError:
            os._exit(1)
