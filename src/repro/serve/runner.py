""":class:`RequestRunner` — the per-request solve pipeline, host-agnostic.

Both execution hosts — the in-process executor threads of
:class:`repro.serve.server.SolveService` and the forked subprocess
workers of :class:`repro.serve.executor.ExecutorPool` — run requests
through this one class, which is what makes the two paths
bit-identical: same engine construction, same ``Measurement``
fallback for dirty payloads, same per-request
:class:`repro.observe.Observer` manifest under
``results_dir/req-<id>/``, same status mapping.

The runner owns a pool of :class:`repro.core.engine.ParmaEngine`
keyed on solver knobs so the per-``n`` pair template, the
Jacobian-structure cache and the Laplacian-pinv LRU stay warm across
requests.  ``pool_engines=False`` (used when several threads share
one runner) hands out throwaway engines instead, because the observer
handle and deadline are mutable engine state.

Service-level counters (``serve.responses.*``, ``serve.latency.*``)
and each request's merged metric registry land in the runner's
``observer`` — the service observer in-process, or a plain registry
the executor child snapshots back over its pipe.
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.core.engine import ParmaEngine
from repro.observe import Observer
from repro.observe.observer import MANIFEST_FILE_NAME, as_observer
from repro.resilience.supervise import Deadline, DeadlineExceeded
from repro.serve.protocol import (
    STATUS_DEADLINE,
    STATUS_FAILED,
    STATUS_OK,
    Request,
    Response,
)


class RequestRunner:
    """Executes solve requests against a warm engine pool.

    One instance per execution host (service process or executor
    child).  :meth:`run` never raises: every outcome — converged,
    failed, deadline-exceeded, unexpected exception — comes back as a
    :class:`repro.serve.protocol.Response`.
    """

    def __init__(
        self,
        results_dir: str | Path,
        *,
        strategy: str = "single",
        num_workers: int = 4,
        max_deadline: float | None = None,
        pool_engines: bool = True,
        observer: object | None = None,
    ) -> None:
        self.results_dir = Path(results_dir)
        self.strategy = strategy
        self.num_workers = num_workers
        self.max_deadline = max_deadline
        self.pool_engines = pool_engines
        self.observer = as_observer(observer)
        self._engines: dict[tuple, ParmaEngine] = {}

    def engine_for(
        self, request: Request, deadline: Deadline | None
    ) -> ParmaEngine:
        """A pooled engine for the request's knobs (fresh when deadlined).

        Engines are stateless between calls, so one per knob
        combination serves every matching request; a per-request
        deadline (and the observer handle) is mutable engine state, so
        deadlined requests — and every request when the runner is
        shared across threads (``pool_engines=False``) — get a
        throwaway.  Engine construction is cheap; the expensive state
        (templates, pinv LRU, Jacobian structure) is process-global
        either way.
        """
        key = (
            request.solver,
            request.formation,
            request.backend,
            request.threshold_sigmas,
            request.validate,
        )
        if deadline is not None or not self.pool_engines:
            return ParmaEngine(
                strategy=self.strategy,
                num_workers=self.num_workers,
                solver=request.solver,
                backend=request.backend,
                threshold_sigmas=request.threshold_sigmas,
                formation=request.formation,
                validate=request.validate,
                deadline=deadline,
            )
        engine = self._engines.get(key)
        if engine is None:
            engine = ParmaEngine(
                strategy=self.strategy,
                num_workers=self.num_workers,
                solver=request.solver,
                backend=request.backend,
                threshold_sigmas=request.threshold_sigmas,
                formation=request.formation,
                validate=request.validate,
            )
            self._engines[key] = engine
        return engine

    def warm(self, n: int) -> None:
        """Prewarm the per-``n`` formation template (best-effort)."""
        try:
            ParmaEngine(strategy="single").warm(n)
        except Exception:  # noqa: BLE001 - warming is advisory
            pass

    def run(
        self,
        request: Request,
        *,
        batch_size: int,
        warm: bool,
        queue_seconds: float,
    ) -> Response:
        """Execute one request; always returns a :class:`Response`."""
        started = time.perf_counter()
        try:
            return self._run(request, batch_size, warm, queue_seconds, started)
        except Exception as exc:  # noqa: BLE001 - hosts need a response
            self.observer.count("serve.responses.failed")
            return Response(
                id=request.id or "",
                status=STATUS_FAILED,
                error=f"{type(exc).__name__}: {exc}",
                batch_size=batch_size,
                cache_warm=warm,
                queue_seconds=queue_seconds,
                elapsed_seconds=time.perf_counter() - started,
            )

    def _fold_request_metrics(self, request_observer: Observer) -> None:
        """Aggregate a finished request's registry into the runner's.

        Per-request observers own their formation/solve/cache counters
        (they land in that request's manifest); merging them here keeps
        the host's running totals covering every request served.
        """
        if self.observer.metrics is not None:
            self.observer.metrics.merge(request_observer.metrics.snapshot())

    def _run(
        self,
        request: Request,
        batch_size: int,
        warm: bool,
        queue_seconds: float,
        started: float,
    ) -> Response:
        """The per-request pipeline: engine, observer, manifest, response."""
        from repro.mea.dataset import Measurement, MeasurementValidationError
        from repro.resilience.degrade import SolverDegradationError

        deadline = Deadline.capped(request.deadline, self.max_deadline)
        engine = self.engine_for(request, deadline)
        request_dir = self.results_dir / f"req-{request.id}"
        obs = Observer(trace_dir=request_dir)
        engine.observer = obs
        config = {
            "command": "serve",
            "request_id": request.id,
            "n": request.n,
            "hour": request.hour,
            "solver": request.solver,
            "formation": request.formation,
            "backend": request.backend,
            "strategy": self.strategy,
            "validate": request.validate,
            "batch_size": batch_size,
            "cache_warm": warm,
            "queue_seconds": queue_seconds,
        }
        z = request.z_array()
        try:
            measurement: Measurement | object
            try:
                measurement = Measurement(
                    z_kohm=z, voltage=request.voltage, hour=request.hour
                )
            except ValueError:
                # Dirty acquisitions cannot satisfy Measurement's own
                # invariants; hand the raw array to the engine's
                # validate policy (strict will name the channel).
                measurement = z
            with obs.span("run", command="serve", n=request.n):
                result = engine.parametrize(
                    measurement,
                    solver_kwargs=request.solver_kwargs or None,
                    voltage=request.voltage,
                    hour=request.hour,
                )
        except DeadlineExceeded as exc:
            config["status"] = "deadline"
            obs.finalize(config=config)
            self._fold_request_metrics(obs)
            self.observer.count("serve.responses.deadline")
            return Response(
                id=request.id or "",
                status=STATUS_DEADLINE,
                error=str(exc),
                manifest_path=str(request_dir / MANIFEST_FILE_NAME),
                batch_size=batch_size,
                cache_warm=warm,
                queue_seconds=queue_seconds,
                elapsed_seconds=time.perf_counter() - started,
            )
        except (SolverDegradationError, MeasurementValidationError) as exc:
            self.observer.count("serve.responses.failed")
            return Response(
                id=request.id or "",
                status=STATUS_FAILED,
                error=str(exc),
                batch_size=batch_size,
                cache_warm=warm,
                queue_seconds=queue_seconds,
                elapsed_seconds=time.perf_counter() - started,
            )
        finally:
            engine.observer = None
        elapsed = time.perf_counter() - started
        failed = (
            result.degradation is not None
            and result.degradation.degraded
            and not result.solve.converged
        )
        degraded = result.degradation is not None and result.degradation.degraded
        # Stamped before finalize so the manifest (and hence the run
        # catalog's `status` column) records the request's outcome.
        config["status"] = "failed" if failed else "degraded" if degraded else "ok"
        obs.finalize(config=config)
        self._fold_request_metrics(obs)
        bucket = (
            "serve.latency.warm_seconds" if warm else "serve.latency.cold_seconds"
        )
        self.observer.observe_hist(bucket, elapsed)
        self.observer.count(
            "serve.responses.failed" if failed else "serve.responses.ok"
        )
        return Response(
            id=request.id or "",
            status=STATUS_FAILED if failed else STATUS_OK,
            summary=result.summary(),
            error=(
                "solve did not converge even after degradation" if failed else ""
            ),
            manifest_path=str(request_dir / MANIFEST_FILE_NAME),
            num_regions=result.detection.num_regions,
            resistance=(
                result.resistance.tolist() if request.want_field else None
            ),
            events=result.events,
            batch_size=batch_size,
            cache_warm=warm,
            queue_seconds=queue_seconds,
            elapsed_seconds=elapsed,
        )
