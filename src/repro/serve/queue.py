"""Bounded, priority-aware admission queue for the solve service.

Admission control is the service's overload valve: the queue holds at
most ``max_depth`` tickets, and a submit beyond that raises
:class:`QueueFull` *immediately* instead of letting latency grow
without bound — the client gets a retriable rejection (exit 75) and
decides when to try again.  Draining (SIGTERM) flips the same valve
the other way: :meth:`AdmissionQueue.drain` atomically closes
admission and hands back every not-yet-started ticket so the server
can answer each with a retriable ``rejected-draining`` status while
in-flight work finishes.

Three refinements layer on top of the plain depth bound:

* **Priority classes** — :meth:`AdmissionQueue.take` dequeues the
  oldest ticket of the most urgent class present (class order is
  :data:`repro.serve.protocol.PRIORITY_CLASSES`), except that a ticket
  of *any* class older than ``max_bypass_age`` seconds is taken first,
  which bounds how long priority (or batch-key affinity, see
  :meth:`AdmissionQueue.take_matching`) can starve FIFO order.
* **Load shedding** — when the queue is saturated (at depth, or the
  estimated queue-seconds exceed ``max_queue_seconds``), an incoming
  ticket of strictly higher priority evicts the *newest* ticket of the
  lowest queued priority instead of being rejected; the evicted ticket
  is handed to ``on_shed`` for a retriable ``rejected-queue-full``
  answer.  Equal-or-lower-priority arrivals still get
  :class:`QueueFull`.
* **Per-client quotas** — each non-empty ``client_id`` meters through
  a :class:`TokenBucket` (``quota_rate`` tokens/second, ``quota_burst``
  capacity); an empty bucket raises :class:`QuotaExceeded` before the
  depth check, so one chatty client cannot monopolize the queue.

A :class:`Ticket` is the unit of coordination between the connection
handler (which enqueues and then blocks on :meth:`Ticket.wait`) and
the executor (which resolves it).  Resolution is one-shot:
:meth:`Ticket.resolve` raises on a second call, while
:meth:`Ticket.try_resolve` is the lock-guarded first-wins variant for
paths that legitimately race (a dying worker's salvage vs. drain).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import TYPE_CHECKING, Callable, Optional

from repro.serve.protocol import PRIORITY_CLASSES

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints
    from repro.serve.protocol import Request, Response

#: Rank of each priority class (lower = more urgent = dequeued first).
_PRIORITY_RANK = {name: rank for rank, name in enumerate(PRIORITY_CLASSES)}


class QueueFull(RuntimeError):
    """The queue is at ``max_depth``; the request was not admitted."""


class QueueDraining(RuntimeError):
    """The service is draining; the request was not admitted."""


class QuotaExceeded(RuntimeError):
    """The client's token bucket is empty; the request was not admitted."""


class TokenBucket:
    """Leaky token bucket metering one client's admission rate.

    Refills continuously at ``rate`` tokens per second up to ``burst``
    capacity; each admission spends one token.  Time is monotonic and
    supplied by the caller-visible clock only through
    :meth:`try_take`, so the bucket is trivially testable.
    """

    __slots__ = ("rate", "burst", "_tokens", "_updated")

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0 or burst <= 0:
            raise ValueError(
                f"rate and burst must be > 0, got rate={rate} burst={burst}"
            )
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._updated = time.monotonic()

    def try_take(self, now: float | None = None) -> bool:
        """Spend one token if available; False when the bucket is empty."""
        if now is None:
            now = time.monotonic()
        elapsed = max(0.0, now - self._updated)
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._updated = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    @property
    def tokens(self) -> float:
        """Tokens available as of the last :meth:`try_take` call."""
        return self._tokens


class Ticket:
    """One admitted request travelling from handler to executor.

    The handler thread blocks on :meth:`wait`; whichever executor path
    completes (or rejects) the request resolves it exactly once.  A
    lock makes first-resolution atomic so the salvage path of a dying
    worker and the drain path cannot both deliver.  ``enqueued_at``
    (monotonic) feeds the ``serve.queue_wait`` histogram;
    ``salvage_count`` tracks how many times the request was re-run
    after losing its executor worker.
    """

    __slots__ = (
        "request",
        "enqueued_at",
        "salvage_count",
        "_lock",
        "_event",
        "_response",
    )

    def __init__(self, request: "Request") -> None:
        self.request = request
        self.enqueued_at = time.monotonic()
        self.salvage_count = 0
        self._lock = threading.Lock()
        self._event = threading.Event()
        self._response: Optional["Response"] = None

    def try_resolve(self, response: "Response") -> bool:
        """Deliver the response if unresolved; False when already resolved.

        Thread-safe and first-wins: exactly one of any number of
        concurrent callers returns True.
        """
        with self._lock:
            if self._event.is_set():
                return False
            self._response = response
            self._event.set()
            return True

    def resolve(self, response: "Response") -> None:
        """Deliver the response and wake the waiting handler (one-shot).

        Raises ``RuntimeError`` when the ticket was already resolved;
        use :meth:`try_resolve` on paths where losing the race is
        expected.
        """
        if not self.try_resolve(response):
            raise RuntimeError(
                f"ticket for request {self.request.id!r} resolved twice"
            )

    def wait(self, timeout: float | None = None) -> Optional["Response"]:
        """Block until resolved; None when ``timeout`` elapses first."""
        if not self._event.wait(timeout):
            return None
        return self._response

    @property
    def resolved(self) -> bool:
        """True once a resolve call has delivered a response."""
        return self._event.is_set()

    @property
    def priority_rank(self) -> int:
        """Dequeue rank of this ticket's priority class (lower = sooner)."""
        return _PRIORITY_RANK.get(self.request.priority, len(PRIORITY_CLASSES))

    def queue_seconds(self) -> float:
        """Seconds since this ticket was admitted (monotonic)."""
        return time.monotonic() - self.enqueued_at


class AdmissionQueue:
    """Depth-bounded priority queue of :class:`Ticket` with drain semantics.

    All methods are thread-safe; one :class:`threading.Condition`
    guards a single FIFO deque (priority is resolved at dequeue time by
    scanning, which keeps admission O(1) and is cheap at serving
    depths).  ``on_depth`` (optional) is called with the new depth
    after every admit/remove so the server can mirror it into the
    ``serve.queue_depth`` gauge without polling; ``on_shed`` receives
    each evicted ticket *outside* the lock so the server can resolve it
    with a retriable rejection.
    """

    def __init__(
        self,
        max_depth: int = 64,
        on_depth: Callable[[int], None] | None = None,
        *,
        max_bypass_age: float = 5.0,
        max_queue_seconds: float | None = None,
        quota_rate: float | None = None,
        quota_burst: float = 8.0,
        on_shed: Callable[[Ticket], None] | None = None,
    ) -> None:
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        if max_bypass_age <= 0:
            raise ValueError(
                f"max_bypass_age must be > 0, got {max_bypass_age}"
            )
        self.max_depth = int(max_depth)
        self.max_bypass_age = float(max_bypass_age)
        self.max_queue_seconds = (
            None if max_queue_seconds is None else float(max_queue_seconds)
        )
        self.quota_rate = None if quota_rate is None else float(quota_rate)
        self.quota_burst = float(quota_burst)
        self._items: deque[Ticket] = deque()
        self._cond = threading.Condition()
        self._draining = False
        self._on_depth = on_depth
        self._on_shed = on_shed
        self._buckets: dict[str, TokenBucket] = {}
        self._service_ewma = 0.0  # EWMA of per-request service seconds

    # -- admission (handler side) -------------------------------------------

    def submit(self, request: "Request") -> Ticket:
        """Admit a request, shedding lower-priority work under overload.

        Raises :class:`QueueDraining` once :meth:`drain` ran,
        :class:`QuotaExceeded` when the client's token bucket is
        empty, and :class:`QueueFull` when the queue is saturated and
        no strictly-lower-priority ticket can be shed to make room.
        """
        shed: Ticket | None = None
        with self._cond:
            if self._draining:
                raise QueueDraining("service is draining; retry later")
            if (
                self.quota_rate is not None
                and request.client_id
                and not self._bucket_for(request.client_id).try_take()
            ):
                raise QuotaExceeded(
                    f"client {request.client_id!r} exceeded its admission "
                    f"quota ({self.quota_rate}/s, burst {self.quota_burst})"
                )
            if self._saturated_locked():
                shed = self._shed_for_locked(request)
                if shed is None:
                    raise QueueFull(
                        f"queue is at its depth bound ({self.max_depth}); "
                        "retry later"
                    )
                self._items.remove(shed)
            ticket = Ticket(request)
            self._items.append(ticket)
            depth = len(self._items)
            self._cond.notify()
        if shed is not None and self._on_shed is not None:
            self._on_shed(shed)
        if self._on_depth is not None:
            self._on_depth(depth)
        return ticket

    def _bucket_for(self, client_id: str) -> TokenBucket:
        """The (lazily created) token bucket for one client id."""
        bucket = self._buckets.get(client_id)
        if bucket is None:
            bucket = TokenBucket(self.quota_rate, self.quota_burst)
            self._buckets[client_id] = bucket
        return bucket

    def _saturated_locked(self) -> bool:
        """True when the queue cannot take more work without shedding."""
        if len(self._items) >= self.max_depth:
            return True
        if self.max_queue_seconds is not None and self._items:
            estimate = len(self._items) * self._service_ewma
            if estimate > self.max_queue_seconds:
                return True
        return False

    def _shed_for_locked(self, request: "Request") -> Ticket | None:
        """The ticket to evict for an incoming request, or None.

        Sheds lowest-priority work first, newest victim within that
        class, and only when the incoming request is strictly more
        urgent than the victim — so saturation never churns
        equal-priority work.
        """
        incoming_rank = _PRIORITY_RANK.get(
            request.priority, len(PRIORITY_CLASSES)
        )
        victim: Ticket | None = None
        for ticket in self._items:  # FIFO scan: later hits are newer
            if ticket.priority_rank <= incoming_rank:
                continue
            if victim is None or ticket.priority_rank >= victim.priority_rank:
                victim = ticket
        return victim

    # -- consumption (executor side) ----------------------------------------

    def take(self, timeout: float | None = None) -> Ticket | None:
        """Pop the most urgent ticket, blocking up to ``timeout`` seconds.

        "Most urgent" is the oldest ticket of the most urgent priority
        class present — unless the oldest ticket of *any* class has
        waited longer than ``max_bypass_age``, in which case it goes
        first regardless of class (the anti-starvation bound).
        Returns None on timeout or when the queue is draining and
        empty (the executor's signal to exit its loop).
        """
        with self._cond:
            deadline = None if timeout is None else time.monotonic() + timeout
            while not self._items:
                if self._draining:
                    return None
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return None
                self._cond.wait(remaining)
            ticket = self._pick_locked()
            self._items.remove(ticket)
            depth = len(self._items)
        if self._on_depth is not None:
            self._on_depth(depth)
        return ticket

    def _pick_locked(self) -> Ticket:
        """The ticket :meth:`take` should pop (queue known non-empty)."""
        oldest = self._items[0]
        if oldest.queue_seconds() > self.max_bypass_age:
            return oldest
        best = oldest
        for ticket in self._items:
            if ticket.priority_rank < best.priority_rank:
                best = ticket  # first hit per class = oldest in class
        return best

    def take_matching(
        self, predicate: Callable[["Request"], bool], limit: int
    ) -> list[Ticket]:
        """Pop up to ``limit`` queued tickets whose request matches.

        Non-blocking; preserves FIFO order among the matches and
        leaves non-matching tickets queued in their original order.
        The batcher uses this to coalesce same-key requests behind a
        just-taken head ticket.  The sweep *stops* at the first
        non-matching ticket that has waited longer than
        ``max_bypass_age``: nothing younger may overtake it, which
        bounds how long a stream of mutually compatible requests can
        starve an older incompatible one.
        """
        if limit <= 0:
            return []
        taken: list[Ticket] = []
        with self._cond:
            kept: deque[Ticket] = deque()
            blocked = False
            while self._items:
                ticket = self._items.popleft()
                if blocked:
                    kept.append(ticket)
                elif len(taken) < limit and predicate(ticket.request):
                    taken.append(ticket)
                else:
                    if ticket.queue_seconds() > self.max_bypass_age:
                        blocked = True  # aged head: nothing overtakes it
                    kept.append(ticket)
            self._items = kept
            depth = len(self._items)
        if taken and self._on_depth is not None:
            self._on_depth(depth)
        return taken

    # -- load estimation -----------------------------------------------------

    def note_service_time(self, seconds: float) -> None:
        """Fold one completed request's service seconds into the EWMA."""
        if seconds < 0:
            return
        with self._cond:
            if self._service_ewma == 0.0:
                self._service_ewma = float(seconds)
            else:
                self._service_ewma += 0.2 * (seconds - self._service_ewma)

    def estimated_queue_seconds(self) -> float:
        """Depth x EWMA service seconds: expected wait of a new arrival."""
        with self._cond:
            return len(self._items) * self._service_ewma

    # -- drain ---------------------------------------------------------------

    def drain(self) -> list[Ticket]:
        """Close admission and return every not-yet-started ticket.

        After this call :meth:`submit` raises :class:`QueueDraining`,
        blocked :meth:`take` calls return None once the queue empties,
        and the returned tickets are the caller's to resolve with a
        retriable rejection.  Idempotent: a second drain returns ``[]``.
        """
        with self._cond:
            self._draining = True
            abandoned = list(self._items)
            self._items.clear()
            self._cond.notify_all()
        if abandoned and self._on_depth is not None:
            self._on_depth(0)
        return abandoned

    # -- introspection -------------------------------------------------------

    @property
    def draining(self) -> bool:
        """True once :meth:`drain` has closed admission."""
        with self._cond:
            return self._draining

    def depth(self) -> int:
        """Number of tickets currently queued (not yet taken)."""
        with self._cond:
            return len(self._items)

    def depths(self) -> dict[str, int]:
        """Queued ticket count per priority class (all classes present)."""
        counts = {name: 0 for name in PRIORITY_CLASSES}
        with self._cond:
            for ticket in self._items:
                counts[ticket.request.priority] = (
                    counts.get(ticket.request.priority, 0) + 1
                )
        return counts
