"""Bounded admission queue for the solve service.

Admission control is the service's overload valve: the queue holds at
most ``max_depth`` tickets, and a submit beyond that raises
:class:`QueueFull` *immediately* instead of letting latency grow
without bound — the client gets a retriable rejection (exit 75) and
decides when to try again.  Draining (SIGTERM) flips the same valve
the other way: :meth:`AdmissionQueue.drain` atomically closes
admission and hands back every not-yet-started ticket so the server
can answer each with a retriable ``rejected-draining`` status while
in-flight work finishes.

A :class:`Ticket` is the unit of coordination between the connection
handler (which enqueues and then blocks on :meth:`Ticket.wait`) and
the worker pool (which resolves it).  Resolution is one-shot and
idempotent-checked: resolving twice is a programming error.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints
    from repro.serve.protocol import Request, Response


class QueueFull(RuntimeError):
    """The queue is at ``max_depth``; the request was not admitted."""


class QueueDraining(RuntimeError):
    """The service is draining; the request was not admitted."""


class Ticket:
    """One admitted request travelling from handler to worker.

    The handler thread blocks on :meth:`wait`; whichever worker
    executes (or rejects) the request calls :meth:`resolve` exactly
    once.  ``enqueued_at`` (monotonic) feeds the ``serve.queue_wait``
    histogram.
    """

    __slots__ = ("request", "enqueued_at", "_event", "_response")

    def __init__(self, request: "Request") -> None:
        self.request = request
        self.enqueued_at = time.monotonic()
        self._event = threading.Event()
        self._response: Optional["Response"] = None

    def resolve(self, response: "Response") -> None:
        """Deliver the response and wake the waiting handler (one-shot)."""
        if self._event.is_set():
            raise RuntimeError(
                f"ticket for request {self.request.id!r} resolved twice"
            )
        self._response = response
        self._event.set()

    def wait(self, timeout: float | None = None) -> Optional["Response"]:
        """Block until resolved; None when ``timeout`` elapses first."""
        if not self._event.wait(timeout):
            return None
        return self._response

    @property
    def resolved(self) -> bool:
        """True once :meth:`resolve` has delivered a response."""
        return self._event.is_set()

    def queue_seconds(self) -> float:
        """Seconds since this ticket was admitted (monotonic)."""
        return time.monotonic() - self.enqueued_at


class AdmissionQueue:
    """Depth-bounded FIFO of :class:`Ticket` with drain semantics.

    All methods are thread-safe; one :class:`threading.Condition`
    guards the deque.  ``on_depth`` (optional) is called with the new
    depth after every admit/remove so the server can mirror it into
    the ``serve.queue_depth`` gauge without polling.
    """

    def __init__(
        self,
        max_depth: int = 64,
        on_depth: Callable[[int], None] | None = None,
    ) -> None:
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        self.max_depth = int(max_depth)
        self._items: deque[Ticket] = deque()
        self._cond = threading.Condition()
        self._draining = False
        self._on_depth = on_depth

    # -- admission (handler side) -------------------------------------------

    def submit(self, request: "Request") -> Ticket:
        """Admit a request; raises :class:`QueueFull`/:class:`QueueDraining`."""
        with self._cond:
            if self._draining:
                raise QueueDraining("service is draining; retry later")
            if len(self._items) >= self.max_depth:
                raise QueueFull(
                    f"queue is at its depth bound ({self.max_depth}); "
                    "retry later"
                )
            ticket = Ticket(request)
            self._items.append(ticket)
            depth = len(self._items)
            self._cond.notify()
        if self._on_depth is not None:
            self._on_depth(depth)
        return ticket

    # -- consumption (worker side) ------------------------------------------

    def take(self, timeout: float | None = None) -> Ticket | None:
        """Pop the oldest ticket, blocking up to ``timeout`` seconds.

        Returns None on timeout or when the queue is draining and
        empty (the worker's signal to exit its loop).
        """
        with self._cond:
            deadline = None if timeout is None else time.monotonic() + timeout
            while not self._items:
                if self._draining:
                    return None
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return None
                self._cond.wait(remaining)
            ticket = self._items.popleft()
            depth = len(self._items)
        if self._on_depth is not None:
            self._on_depth(depth)
        return ticket

    def take_matching(
        self, predicate: Callable[["Request"], bool], limit: int
    ) -> list[Ticket]:
        """Pop up to ``limit`` queued tickets whose request matches.

        Non-blocking; preserves FIFO order among the matches and
        leaves non-matching tickets queued in their original order.
        The batcher uses this to coalesce same-key requests behind a
        just-taken head ticket.
        """
        if limit <= 0:
            return []
        taken: list[Ticket] = []
        with self._cond:
            kept: deque[Ticket] = deque()
            while self._items:
                ticket = self._items.popleft()
                if len(taken) < limit and predicate(ticket.request):
                    taken.append(ticket)
                else:
                    kept.append(ticket)
            self._items = kept
            depth = len(self._items)
        if taken and self._on_depth is not None:
            self._on_depth(depth)
        return taken

    # -- drain ---------------------------------------------------------------

    def drain(self) -> list[Ticket]:
        """Close admission and return every not-yet-started ticket.

        After this call :meth:`submit` raises :class:`QueueDraining`,
        blocked :meth:`take` calls return None once the queue empties,
        and the returned tickets are the caller's to resolve with a
        retriable rejection.  Idempotent: a second drain returns ``[]``.
        """
        with self._cond:
            self._draining = True
            abandoned = list(self._items)
            self._items.clear()
            self._cond.notify_all()
        if abandoned and self._on_depth is not None:
            self._on_depth(0)
        return abandoned

    # -- introspection -------------------------------------------------------

    @property
    def draining(self) -> bool:
        """True once :meth:`drain` has closed admission."""
        with self._cond:
            return self._draining

    def depth(self) -> int:
        """Number of tickets currently queued (not yet taken)."""
        with self._cond:
            return len(self._items)
