"""Request batching: coalesce compatible requests into one formation pass.

Two requests are *compatible* — and may share a batch — when they
agree on everything the formation stage and engine pool depend on: the
device side ``n``, the formation mode (``cached``/``legacy``) and the
solver compute backend (``numpy``/``compiled``).  A batch then
pays the per-``n`` template lookup, the Jacobian-structure derivation
and the Laplacian-pinv factorisation once, and every member after the
first is stamped/solved against warm caches (the measured win is the
``serve.latency.{cold,warm}`` histogram split; see
``docs/SERVING.md``).

The coalescing policy is deliberately simple and starvation-free:

1. block for the *oldest* ticket (strict FIFO head);
2. linger up to ``linger`` seconds, sweeping in every queued ticket
   with the same :func:`batch_key`, until ``max_batch`` is reached;
3. never reorder across keys — a ticket only jumps the queue when the
   head of the queue already committed its key.

Solver knobs (method, threshold, per-request deadline) intentionally
do **not** participate in the key: they differ per member and are
honoured per member during execution.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.serve.queue import AdmissionQueue, Ticket

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints
    from repro.serve.protocol import Request

#: Upper bound any service places on one batch (queue depth aside).
MAX_BATCH_LIMIT = 256


def batch_key(request: "Request") -> tuple[int, str, str]:
    """The compatibility key ``(n, formation, backend)`` for one request."""
    return (request.n, request.formation, request.backend)


@dataclass(frozen=True)
class Batch:
    """An ordered group of compatible tickets executed as one pass."""

    key: tuple[int, str, str]
    tickets: tuple[Ticket, ...]

    @property
    def n(self) -> int:
        """Device side length shared by every member."""
        return self.key[0]

    @property
    def formation(self) -> str:
        """Formation mode shared by every member."""
        return self.key[1]

    @property
    def backend(self) -> str:
        """Solver compute backend shared by every member."""
        return self.key[2]

    @property
    def size(self) -> int:
        """Number of requests in the batch."""
        return len(self.tickets)


class Batcher:
    """Pulls tickets off an :class:`AdmissionQueue` in compatible batches.

    Parameters
    ----------
    queue:
        The admission queue to consume.
    max_batch:
        Hard cap on members per batch (1 disables coalescing).
    linger:
        Seconds to wait for more compatible tickets after the head
        ticket is taken.  0 batches only what is already queued —
        still effective under concurrent load, and adds no idle
        latency for lone requests.
    """

    def __init__(
        self,
        queue: AdmissionQueue,
        max_batch: int = 8,
        linger: float = 0.0,
    ) -> None:
        if not 1 <= max_batch <= MAX_BATCH_LIMIT:
            raise ValueError(
                f"max_batch must be in [1, {MAX_BATCH_LIMIT}], got {max_batch}"
            )
        if linger < 0:
            raise ValueError(f"linger must be >= 0, got {linger}")
        self.queue = queue
        self.max_batch = int(max_batch)
        self.linger = float(linger)

    def next_batch(self, timeout: float | None = None) -> Batch | None:
        """Block for the next batch; None on timeout or drained-empty.

        The head ticket commits the batch key; queued compatible
        tickets are swept in immediately, then the linger window keeps
        sweeping until it closes or the batch fills.
        """
        head = self.queue.take(timeout=timeout)
        if head is None:
            return None
        key = batch_key(head.request)
        members = [head]

        def sweep() -> None:
            room = self.max_batch - len(members)
            if room > 0:
                members.extend(
                    self.queue.take_matching(
                        lambda req: batch_key(req) == key, room
                    )
                )

        sweep()
        if self.linger > 0:
            close = time.monotonic() + self.linger
            while len(members) < self.max_batch:
                remaining = close - time.monotonic()
                if remaining <= 0:
                    break
                time.sleep(min(remaining, 0.005))
                sweep()
        return Batch(key=key, tickets=tuple(members))
