""":class:`SolveClient` — the library/CLI client for the solve service.

One request per connection, deliberately: a unix-domain connect is
microseconds, and connection-per-request means the client needs no
multiplexing, the server needs no per-connection session state, and a
dead peer is detected by the OS instead of a heartbeat layer.

Retrying is opt-in and bounded: construct the client with
``retries``/``backoff`` and :meth:`SolveClient.submit` resubmits on
retriable responses (queue full, draining, quota, worker lost — see
:attr:`repro.serve.protocol.Response.retriable`) and on connection
failures, with deterministic seeded jitter from
:class:`repro.resilience.retry.RetryPolicy`.  Every submit carries an
idempotency ``id`` (client-assigned when absent), so all attempts
share one key: a retry of a request the service already completed
returns the cached response instead of re-solving, and a retry of an
in-flight one joins its ticket.

When the transport fails, :class:`ServeConnectionError` says *where*:
``request_sent`` (did the request frame leave?), ``acked`` (did any
reply bytes arrive?) and ``frame_offset`` (how far into the reply
frame the stream broke).  ``safe_to_retry`` is True only when the
request never left — any other failure is "outcome unknown", which is
still safe to resubmit *with the same id* thanks to server-side
idempotency.
"""

from __future__ import annotations

import socket
import time
from pathlib import Path

import numpy as np

from repro.resilience.retry import RetryPolicy
from repro.serve.protocol import (
    ProtocolError,
    Request,
    Response,
    connect_address,
    format_address,
    parse_address,
    recv_message,
    send_message,
)
from repro.utils.rng import derive_seed


class ServeConnectionError(ConnectionError):
    """The transport to the service failed (connect, send or receive).

    Attributes
    ----------
    request_sent:
        True when the request frame was fully handed to the kernel
        before the failure — the service may have executed it.
    acked:
        True when at least one reply byte arrived, i.e. the service
        definitely received (and started answering) the request.
    frame_offset:
        How many bytes into the reply frame the stream broke (0 when
        no reply bytes arrived).
    """

    def __init__(
        self,
        message: str,
        *,
        request_sent: bool = False,
        acked: bool = False,
        frame_offset: int = 0,
    ) -> None:
        super().__init__(message)
        self.request_sent = request_sent
        self.acked = acked
        self.frame_offset = frame_offset

    @property
    def safe_to_retry(self) -> bool:
        """True when the request provably never reached the service.

        A False value means "outcome unknown" — resubmitting is still
        sound when the request carries an idempotency ``id`` (the
        service dedupes), but blind resubmission without one could
        solve twice.
        """
        return not self.request_sent


class SolveClient:
    """Submit parametrization requests to a running :class:`SolveService`.

    Parameters
    ----------
    socket_path:
        Where the service listens: a unix-domain socket path, or a
        TCP ``HOST:PORT`` / ``tcp://HOST:PORT`` spec for a fleet
        front (see :func:`repro.serve.protocol.parse_address`).
    timeout:
        Per-request socket timeout in seconds.  This must cover the
        request's *queue wait plus solve time*; the default is
        generous because a deadline-bounded request should be bounded
        by its own ``deadline``, not the transport.
    retries:
        How many times :meth:`submit` resubmits after a retriable
        response or a connection failure (0 = never, the default).
    backoff:
        Base backoff in seconds between attempts (exponential, capped;
        see :class:`repro.resilience.retry.RetryPolicy`).
    jitter:
        Jitter fraction in [0, 1]; the actual delay is scaled by a
        deterministic factor drawn from the request id, so a fleet of
        retrying clients de-synchronizes without losing
        reproducibility.
    """

    def __init__(
        self,
        socket_path: str | Path,
        timeout: float = 300.0,
        *,
        retries: int = 0,
        backoff: float = 0.1,
        jitter: float = 0.5,
    ) -> None:
        kind, _ = parse_address(socket_path)
        # Unix specs keep the Path type callers have always seen;
        # "HOST:PORT" stays a string so it round-trips verbatim.
        self.socket_path = (
            socket_path if kind == "tcp" else Path(socket_path)
        )
        self.address = format_address(socket_path)
        self.timeout = float(timeout)
        self.retries = int(retries)
        self.backoff = float(backoff)
        self.jitter = float(jitter)

    # -- transport -----------------------------------------------------------

    def _roundtrip(self, message: dict) -> dict:
        """Connect, send one message, read one reply, disconnect."""
        sent = False
        try:
            sock = connect_address(self.socket_path, timeout=self.timeout)
        except (
            FileNotFoundError,
            ConnectionRefusedError,
            socket.timeout,
            socket.gaierror,
        ) as exc:
            kind, _ = parse_address(self.socket_path)
            hint = (
                f"start one with `parma fleet --listen {self.address}` "
                f"or `parma serve --tcp {self.address}`"
                if kind == "tcp"
                else f"start one with `parma serve --socket {self.address}`"
            )
            raise ServeConnectionError(
                f"no solve service on {self.address} ({hint})"
            ) from exc
        try:
            try:
                send_message(sock, message)
            except OSError as exc:
                raise ServeConnectionError(
                    f"send to {self.address} failed: {exc}"
                ) from exc
            sent = True
            try:
                reply = recv_message(sock)
            except ProtocolError as exc:
                raise ServeConnectionError(
                    f"reply stream from {self.address} broke "
                    f"{exc.bytes_read} byte(s) into the frame: {exc}",
                    request_sent=True,
                    acked=exc.bytes_read > 0,
                    frame_offset=exc.bytes_read,
                ) from exc
            except OSError as exc:
                raise ServeConnectionError(
                    f"receive from {self.address} failed: {exc}",
                    request_sent=True,
                ) from exc
        finally:
            sock.close()
        if reply is None:
            raise ServeConnectionError(
                "service closed the connection without replying",
                request_sent=sent,
            )
        return reply

    # -- requests ------------------------------------------------------------

    def submit(self, request: Request) -> Response:
        """Send one solve request; retry per the client's policy.

        The request gets a client-assigned idempotency ``id`` when it
        carries none, so every retry attempt shares the same key.
        Returns the final response (which may still be retriable once
        ``retries`` is exhausted); re-raises the last
        :class:`ServeConnectionError` when no attempt got an answer.
        """
        import dataclasses
        import uuid

        if request.id is None:
            request = dataclasses.replace(request, id=uuid.uuid4().hex[:12])
        policy = RetryPolicy(
            max_retries=self.retries,
            backoff_seconds=self.backoff,
            jitter=self.jitter,
            jitter_seed=derive_seed(0, "serve-client", request.id or ""),
        )
        message = request.to_dict()
        last_error: ServeConnectionError | None = None
        response: Response | None = None
        for attempt in range(self.retries + 1):
            if attempt > 0:
                delay = policy.delay(attempt - 1)
                if delay > 0.0:
                    time.sleep(delay)
            try:
                response = Response.from_dict(self._roundtrip(message))
            except ServeConnectionError as exc:
                last_error = exc
                continue
            if not response.retriable:
                return response
        if response is not None:
            return response
        assert last_error is not None
        raise last_error

    def solve(
        self,
        z: np.ndarray,
        voltage: float = 5.0,
        hour: float = 0.0,
        **knobs,
    ) -> Response:
        """Convenience wrapper: build a :class:`Request` from an array.

        ``knobs`` are forwarded to :class:`repro.serve.protocol.
        Request` (``solver``, ``formation``, ``backend``, ``deadline``,
        ``threshold_sigmas``, ``validate``, ``solver_kwargs``,
        ``want_field``, ``id``, ``priority``, ``client_id``).
        """
        request = Request(
            z=np.asarray(z, dtype=np.float64).tolist(),
            voltage=float(voltage),
            hour=float(hour),
            **knobs,
        )
        return self.submit(request)

    def ping(self) -> dict:
        """Liveness probe; returns the service's ``pong`` payload."""
        return self._roundtrip({"kind": "ping"})

    def stats(self) -> dict:
        """Service health snapshot: queue depth, counters, drain state."""
        return self._roundtrip({"kind": "stats"})

    def drain(self) -> dict:
        """Ask the service to drain gracefully (admin operation)."""
        return self._roundtrip({"kind": "drain"})

    def wait_ready(self, timeout: float = 10.0, interval: float = 0.05) -> bool:
        """Poll :meth:`ping` until the service answers; True when it did."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            try:
                self.ping()
                return True
            except (ServeConnectionError, ProtocolError, OSError):
                time.sleep(interval)
        return False
