""":class:`SolveClient` — the library/CLI client for the solve service.

One request per connection, deliberately: a unix-domain connect is
microseconds, and connection-per-request means the client needs no
multiplexing, the server needs no per-connection session state, and a
dead peer is detected by the OS instead of a heartbeat layer.

The client never retries on its own.  A rejected response says so via
:attr:`repro.serve.protocol.Response.retriable`; whether (and when) to
resubmit is the caller's policy — e.g. ``parma submit`` exits 75 and
leaves retrying to the surrounding script or scheduler.
"""

from __future__ import annotations

import socket
from pathlib import Path

import numpy as np

from repro.serve.protocol import (
    ProtocolError,
    Request,
    Response,
    recv_message,
    send_message,
)


class ServeConnectionError(ConnectionError):
    """No service is reachable on the configured socket path."""


class SolveClient:
    """Submit parametrization requests to a running :class:`SolveService`.

    Parameters
    ----------
    socket_path:
        The unix-domain socket the service listens on.
    timeout:
        Per-request socket timeout in seconds.  This must cover the
        request's *queue wait plus solve time*; the default is
        generous because a deadline-bounded request should be bounded
        by its own ``deadline``, not the transport.
    """

    def __init__(self, socket_path: str | Path, timeout: float = 300.0) -> None:
        self.socket_path = Path(socket_path)
        self.timeout = float(timeout)

    # -- transport -----------------------------------------------------------

    def _roundtrip(self, message: dict) -> dict:
        """Connect, send one message, read one reply, disconnect."""
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        try:
            try:
                sock.connect(str(self.socket_path))
            except (FileNotFoundError, ConnectionRefusedError) as exc:
                raise ServeConnectionError(
                    f"no solve service on {self.socket_path} "
                    f"(start one with `parma serve --socket "
                    f"{self.socket_path}`)"
                ) from exc
            send_message(sock, message)
            reply = recv_message(sock)
        finally:
            sock.close()
        if reply is None:
            raise ProtocolError("service closed the connection without replying")
        return reply

    # -- requests ------------------------------------------------------------

    def submit(self, request: Request) -> Response:
        """Send one solve request and block for its response."""
        return Response.from_dict(self._roundtrip(request.to_dict()))

    def solve(
        self,
        z: np.ndarray,
        voltage: float = 5.0,
        hour: float = 0.0,
        **knobs,
    ) -> Response:
        """Convenience wrapper: build a :class:`Request` from an array.

        ``knobs`` are forwarded to :class:`repro.serve.protocol.
        Request` (``solver``, ``formation``, ``backend``, ``deadline``,
        ``threshold_sigmas``, ``validate``, ``solver_kwargs``,
        ``want_field``, ``id``).
        """
        request = Request(
            z=np.asarray(z, dtype=np.float64).tolist(),
            voltage=float(voltage),
            hour=float(hour),
            **knobs,
        )
        return self.submit(request)

    def ping(self) -> dict:
        """Liveness probe; returns the service's ``pong`` payload."""
        return self._roundtrip({"kind": "ping"})

    def stats(self) -> dict:
        """Service health snapshot: queue depth, counters, drain state."""
        return self._roundtrip({"kind": "stats"})

    def drain(self) -> dict:
        """Ask the service to drain gracefully (admin operation)."""
        return self._roundtrip({"kind": "drain"})

    def wait_ready(self, timeout: float = 10.0, interval: float = 0.05) -> bool:
        """Poll :meth:`ping` until the service answers; True when it did."""
        import time

        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            try:
                self.ping()
                return True
            except (ServeConnectionError, ProtocolError, OSError):
                time.sleep(interval)
        return False
