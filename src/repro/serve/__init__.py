"""Persistent solve service: ``parma serve`` / ``parma submit``.

The batch CLI pays full process startup — importing numpy, rebuilding
the per-``n`` :class:`repro.core.templates.PairTemplate`, refactoring
the Laplacian pseudo-inverse — on *every* invocation.  ``repro.serve``
turns the reproduction into a long-lived local service instead: a
:class:`SolveService` listens on a unix-domain socket, runs requests
through a persistent engine pool (so the template, Jacobian-structure
and Laplacian-pinv caches stay warm across requests), and coalesces
compatible requests — same device side ``n``, same formation mode —
into one formation pass per batch.

The pieces, each its own module:

* :mod:`repro.serve.protocol` — the length-prefixed JSON wire format,
  request/response schema, status → exit-status mapping (including
  the deadline status 94 shared with the batch CLI);
* :mod:`repro.serve.queue` — the bounded admission queue (depth-limited,
  drain-aware, retriable rejections);
* :mod:`repro.serve.batcher` — compatibility keying and batch
  coalescing with a short linger window;
* :mod:`repro.serve.server` — :class:`SolveService` itself: socket
  accept loop, worker pool, per-request run manifests via
  :mod:`repro.observe`, graceful drain on SIGTERM;
* :mod:`repro.serve.client` — :class:`SolveClient`, the library/CLI
  client (one request per connection, no hidden retries).

See ``docs/SERVING.md`` for the wire protocol and operational
semantics, and ``docs/ARCHITECTURE.md`` for where serving sits in the
stack.
"""

from repro.serve.batcher import Batch, Batcher, batch_key
from repro.serve.client import ServeConnectionError, SolveClient
from repro.serve.protocol import (
    RETRIABLE_EXIT_CODE,
    RETRIABLE_STATUSES,
    STATUS_DEADLINE,
    STATUS_DRAINING,
    STATUS_FAILED,
    STATUS_INVALID,
    STATUS_OK,
    STATUS_QUEUE_FULL,
    ProtocolError,
    Request,
    Response,
    exit_status_for,
)
from repro.serve.queue import AdmissionQueue, QueueDraining, QueueFull, Ticket
from repro.serve.server import ServiceConfig, SolveService

__all__ = [
    "AdmissionQueue",
    "Batch",
    "Batcher",
    "ProtocolError",
    "QueueDraining",
    "QueueFull",
    "Request",
    "Response",
    "RETRIABLE_EXIT_CODE",
    "RETRIABLE_STATUSES",
    "STATUS_DEADLINE",
    "STATUS_DRAINING",
    "STATUS_FAILED",
    "STATUS_INVALID",
    "STATUS_OK",
    "STATUS_QUEUE_FULL",
    "ServeConnectionError",
    "ServiceConfig",
    "SolveClient",
    "SolveService",
    "Ticket",
    "batch_key",
    "exit_status_for",
]
