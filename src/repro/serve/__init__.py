"""Persistent solve service: ``parma serve`` / ``parma submit``.

The batch CLI pays full process startup — importing numpy, rebuilding
the per-``n`` :class:`repro.core.templates.PairTemplate`, refactoring
the Laplacian pseudo-inverse — on *every* invocation.  ``repro.serve``
turns the reproduction into a long-lived local service instead: a
:class:`SolveService` listens on a unix-domain socket, admits requests
through a priority-aware bounded queue, coalesces compatible ones —
same device side ``n``, same formation mode — into one formation pass
per batch, and executes them on a crash-isolated pool of forked
executor workers whose engine caches stay warm across requests.

The pieces, each its own module:

* :mod:`repro.serve.protocol` — the length-prefixed JSON wire format,
  request/response schema (priority classes, client ids, idempotency
  ids), status → exit-status mapping (including the deadline status 94
  shared with the batch CLI and the retriable ``worker-lost``/quota
  rejections);
* :mod:`repro.serve.queue` — the bounded admission queue: priority
  classes with an anti-starvation age bound, load shedding,
  per-client token-bucket quotas, drain-aware retriable rejections;
* :mod:`repro.serve.batcher` — compatibility keying and batch
  coalescing with a short linger window;
* :mod:`repro.serve.runner` — the per-request execution pipeline both
  hosts share (which is what keeps their results bit-identical);
* :mod:`repro.serve.executor` — the forked executor pool: heartbeat
  supervision, stall/deadline kills, respawn and batch salvage;
* :mod:`repro.serve.server` — :class:`SolveService` itself: socket
  accept loop, dispatchers, idempotency cache, per-request run
  manifests via :mod:`repro.observe`, graceful drain on SIGTERM;
* :mod:`repro.serve.client` — :class:`SolveClient`, the library/CLI
  client (one request per connection, unix-socket or TCP, opt-in
  bounded retries with seeded-jitter backoff);
* :mod:`repro.serve.fleet` — horizontal scale-out:
  :class:`SolveFleet`, a TCP/unix front listener dispatching to a
  consistent-hash-sharded fleet of :class:`SolveService` worker
  processes with heartbeat health, rerouting and front-side
  quotas/shedding (``parma fleet``, ``docs/OPERATIONS.md``).

See ``docs/SERVING.md`` for the wire protocol and operational
semantics, and ``docs/ARCHITECTURE.md`` for where serving sits in the
stack.
"""

from repro.serve.batcher import Batch, Batcher, batch_key
from repro.serve.client import ServeConnectionError, SolveClient
from repro.serve.executor import ExecutorPool
from repro.serve.fleet import FleetConfig, ShardMap, SolveFleet
from repro.serve.protocol import (
    PRIORITY_BATCH,
    PRIORITY_CLASSES,
    PRIORITY_INTERACTIVE,
    RETRIABLE_EXIT_CODE,
    RETRIABLE_STATUSES,
    STATUS_DEADLINE,
    STATUS_DRAINING,
    STATUS_FAILED,
    STATUS_INVALID,
    STATUS_OK,
    STATUS_QUEUE_FULL,
    STATUS_QUOTA,
    STATUS_WORKER_LOST,
    ProtocolError,
    Request,
    Response,
    exit_status_for,
)
from repro.serve.queue import (
    AdmissionQueue,
    QueueDraining,
    QueueFull,
    QuotaExceeded,
    Ticket,
    TokenBucket,
)
from repro.serve.runner import RequestRunner
from repro.serve.server import ServiceConfig, SolveService

__all__ = [
    "AdmissionQueue",
    "Batch",
    "Batcher",
    "ExecutorPool",
    "FleetConfig",
    "PRIORITY_BATCH",
    "PRIORITY_CLASSES",
    "PRIORITY_INTERACTIVE",
    "ProtocolError",
    "QueueDraining",
    "QueueFull",
    "QuotaExceeded",
    "Request",
    "RequestRunner",
    "Response",
    "RETRIABLE_EXIT_CODE",
    "RETRIABLE_STATUSES",
    "STATUS_DEADLINE",
    "STATUS_DRAINING",
    "STATUS_FAILED",
    "STATUS_INVALID",
    "STATUS_OK",
    "STATUS_QUEUE_FULL",
    "STATUS_QUOTA",
    "STATUS_WORKER_LOST",
    "ServeConnectionError",
    "ServiceConfig",
    "ShardMap",
    "SolveClient",
    "SolveFleet",
    "SolveService",
    "Ticket",
    "TokenBucket",
    "batch_key",
    "exit_status_for",
]
