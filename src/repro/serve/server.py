""":class:`SolveService` — the persistent, crash-isolated solve server.

One acceptor process, three kinds of threads plus (by default) a pool
of forked executor workers:

* the **acceptor** owns the unix-domain listening socket and spawns a
  short-lived handler per connection;
* **handlers** read one request, admit it to the
  :class:`repro.serve.queue.AdmissionQueue` (or answer a retriable
  rejection), block on the ticket, and write the response;
* **dispatchers** pull compatible batches through the
  :class:`repro.serve.batcher.Batcher` and execute them — on the
  forked children of :class:`repro.serve.executor.ExecutorPool`
  (``executor="subprocess"``, the default: a native crash, OOM kill or
  hang takes out one child, not the service), or in-process through a
  shared :class:`repro.serve.runner.RequestRunner`
  (``executor="thread"``, the PR-5 behaviour kept for platforms
  without fork and for the overhead benchmark).  Both paths run the
  same runner code, so results are bit-identical.

Admission is priority-aware (see :mod:`repro.serve.queue`): the queue
sheds the newest lowest-priority ticket to admit more urgent work
under saturation, meters per-client token-bucket quotas, and bounds
how long any ticket can be bypassed.  Requests carry an idempotency
``id``: a retry of an in-flight request joins its ticket, and a retry
of a completed one returns the cached response instead of re-solving.

Graceful drain (SIGTERM, or an admin ``drain`` message): admission
closes, queued-but-unstarted tickets are answered with the retriable
``rejected-draining`` status, in-flight batches run to completion and
their responses are delivered, then the dispatchers exit, executor
children are retired and the socket is unlinked.  Nothing already
being computed is discarded.

Every request that executes gets a run manifest (plus trace
artifacts) written through :mod:`repro.observe` under
``results_dir/req-<id>/``; service-level health lands in the
``serve.*`` spans/counters of the service observer (see
``docs/SERVING.md`` for the metric names and
``docs/OBSERVABILITY.md`` for the manifest schema).
"""

from __future__ import annotations

import dataclasses
import os
import socket
import threading
import time
import uuid
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

from repro.core.templates import has_template
from repro.observe.observer import as_observer
from repro.parallel.pymp import fork_available
from repro.serve.batcher import Batch, Batcher
from repro.serve.executor import ExecutorPool
from repro.serve.protocol import (
    PRIORITY_CLASSES,
    STATUS_DRAINING,
    STATUS_INVALID,
    STATUS_QUEUE_FULL,
    STATUS_QUOTA,
    ProtocolError,
    Request,
    Response,
    parse_address,
    recv_message,
    send_message,
)
from repro.serve.queue import (
    AdmissionQueue,
    QueueDraining,
    QueueFull,
    QuotaExceeded,
    Ticket,
)
from repro.serve.runner import RequestRunner
from repro.utils import logging as rlog

#: How long blocked socket/queue polls sleep between liveness checks.
_POLL_SECONDS = 0.1

#: Status → rejection counter name (see ``serve.*`` metric family).
_REJECT_COUNTERS = {
    STATUS_QUEUE_FULL: "serve.rejected.queue_full",
    STATUS_DRAINING: "serve.rejected.draining",
    STATUS_QUOTA: "serve.rejected.quota",
}


@dataclass(frozen=True)
class ServiceConfig:
    """Everything a :class:`SolveService` needs to run.

    ``strategy``/``num_workers`` configure the engines (the default
    ``single`` strategy avoids forking *inside* an executor; forked
    strategies work but are the operator's informed choice).
    ``serve_workers`` is the number of executor slots.  ``executor``
    picks the execution host: ``"subprocess"`` (default; falls back to
    ``"thread"`` where fork is unavailable) isolates solves in forked
    children supervised by ``stall_timeout``/``term_grace`` and
    salvages a dying worker's batch up to ``max_salvage`` times per
    request; ``"thread"`` runs solves in-process.  ``max_deadline``
    caps any per-request budget; ``None`` accepts the request's own
    value unchanged.  ``quota_rate``/``quota_burst`` meter per-client
    admission, ``max_queue_seconds`` triggers load shedding on
    estimated wait, ``max_bypass_age`` bounds priority/batching
    starvation and ``idempotency_cache`` sizes the completed-response
    LRU.  ``faults`` (a ``FaultPlan``/``FaultInjector``) arms the
    serve chaos hooks inside executor children.  ``catalog_path``
    auto-ingests every executed request's run manifest into the SQLite
    run catalog (:mod:`repro.observe.catalog`) as it finalizes.
    ``tcp`` additionally binds a ``HOST:PORT`` stream listener beside
    the unix socket (same framing; port ``0`` picks an ephemeral port,
    observable as :attr:`SolveService.tcp_address`) — the transport
    the fleet front and remote clients use.
    """

    socket_path: Path
    results_dir: Path
    tcp: str | None = None
    max_queue_depth: int = 64
    max_batch: int = 8
    linger: float = 0.05
    serve_workers: int = 1
    strategy: str = "single"
    num_workers: int = 4
    max_deadline: float | None = None
    observer: object | None = None
    executor: str = "subprocess"
    stall_timeout: float = 30.0
    term_grace: float = 1.0
    max_salvage: int = 1
    quota_rate: float | None = None
    quota_burst: float = 8.0
    max_queue_seconds: float | None = None
    max_bypass_age: float = 5.0
    idempotency_cache: int = 128
    faults: object | None = None
    catalog_path: Path | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "socket_path", Path(self.socket_path))
        object.__setattr__(self, "results_dir", Path(self.results_dir))
        if self.tcp is not None:
            kind, _ = parse_address(self.tcp)
            if kind != "tcp":
                raise ValueError(
                    f"tcp must be a HOST:PORT spec, got {self.tcp!r}"
                )
        if self.serve_workers < 1:
            raise ValueError(
                f"serve_workers must be >= 1, got {self.serve_workers}"
            )
        if self.executor not in ("thread", "subprocess"):
            raise ValueError(
                f"executor must be 'thread' or 'subprocess', "
                f"got {self.executor!r}"
            )


class SolveService:
    """A running (or startable) solve service bound to a unix socket.

    Lifecycle::

        service = SolveService(ServiceConfig(socket_path, results_dir))
        service.start()           # binds + spawns acceptor/executors
        ...                       # clients connect and submit
        service.request_drain()   # e.g. from a SIGTERM handler
        service.wait()            # until drained and stopped
        service.stop()            # idempotent final cleanup

    ``start()``/``stop()`` are safe to call from the main thread while
    handlers and dispatchers run; ``request_drain()`` is
    async-signal-safe enough for a Python signal handler (it only sets
    events and resolves tickets).
    """

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.observer = as_observer(config.observer)
        #: The execution host actually in effect (subprocess falls back
        #: to thread where fork is unavailable).
        self.executor_mode = (
            "subprocess"
            if config.executor == "subprocess" and fork_available()
            else "thread"
        )
        self.queue = AdmissionQueue(
            max_depth=config.max_queue_depth,
            on_depth=self._on_depth,
            max_bypass_age=config.max_bypass_age,
            max_queue_seconds=config.max_queue_seconds,
            quota_rate=config.quota_rate,
            quota_burst=config.quota_burst,
            on_shed=self._on_shed,
        )
        self.batcher = Batcher(
            self.queue, max_batch=config.max_batch, linger=config.linger
        )
        self.pool: ExecutorPool | None = None
        self._runner: RequestRunner | None = None
        if self.executor_mode == "thread":
            self._runner = RequestRunner(
                config.results_dir,
                strategy=config.strategy,
                num_workers=config.num_workers,
                max_deadline=config.max_deadline,
                pool_engines=(config.serve_workers == 1),
                observer=self.observer,
            )
        self._sock: socket.socket | None = None
        self._tcp_sock: socket.socket | None = None
        #: ``(host, port)`` actually bound when ``config.tcp`` is set
        #: (resolves port 0 to the kernel's pick); None otherwise.
        self.tcp_address: tuple[str, int] | None = None
        self._acceptors: list[threading.Thread] = []
        self._acceptor: threading.Thread | None = None
        self._workers: list[threading.Thread] = []
        self._handlers: set[threading.Thread] = set()
        self._handlers_lock = threading.Lock()
        self._stopping = threading.Event()
        self._drained = threading.Event()
        self._started_at = time.monotonic()
        self._requests_seen = 0
        self._shed_counts = {name: 0 for name in PRIORITY_CLASSES}
        self._quota_rejections = 0
        self._idempotent_hits = 0
        self._idempotency_lock = threading.Lock()
        self._inflight: dict[str, Ticket] = {}
        self._completed: OrderedDict[str, Response] = OrderedDict()
        self._catalog: object | None = None  # opened lazily on first ingest

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Bind the socket and spawn executors, acceptor and dispatchers.

        Executor children fork first, while the process is still
        single-threaded — the acceptor/handler threads only exist
        afterwards, so the initial pool avoids fork-with-locks hazards
        entirely (respawns after a crash do fork from a threaded
        parent; see :meth:`repro.serve.executor.ExecutorPool.start`).
        """
        if self._sock is not None:
            raise RuntimeError("service already started")
        path = self.config.socket_path
        path.parent.mkdir(parents=True, exist_ok=True)
        self.config.results_dir.mkdir(parents=True, exist_ok=True)
        if self.executor_mode == "subprocess":
            self.pool = ExecutorPool(
                self.config.serve_workers,
                self.config.results_dir,
                strategy=self.config.strategy,
                num_workers=self.config.num_workers,
                max_deadline=self.config.max_deadline,
                stall_timeout=self.config.stall_timeout,
                term_grace=self.config.term_grace,
                max_salvage=self.config.max_salvage,
                observer=self.observer,
                faults=self.config.faults,
                on_response=self._on_executed,
            )
            self.pool.start()
        if path.exists():
            # A previous instance that died uncleanly leaves its socket
            # file behind; binding over it requires the unlink.
            path.unlink()
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.bind(str(path))
        sock.listen(min(128, self.config.max_queue_depth * 2))
        sock.settimeout(_POLL_SECONDS)
        self._sock = sock
        if self.config.tcp is not None:
            _, target = parse_address(self.config.tcp)
            tcp_sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            tcp_sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            tcp_sock.bind(target)
            tcp_sock.listen(min(128, self.config.max_queue_depth * 2))
            tcp_sock.settimeout(_POLL_SECONDS)
            self._tcp_sock = tcp_sock
            self.tcp_address = tcp_sock.getsockname()[:2]
        self._started_at = time.monotonic()
        self._acceptors = []
        for listener, name in (
            (self._sock, "serve-acceptor"),
            (self._tcp_sock, "serve-acceptor-tcp"),
        ):
            if listener is None:
                continue
            acceptor = threading.Thread(
                target=self._accept_loop, args=(listener,), name=name,
                daemon=True,
            )
            acceptor.start()
            self._acceptors.append(acceptor)
        self._acceptor = self._acceptors[0]
        for rank in range(self.config.serve_workers):
            worker = threading.Thread(
                target=self._worker_loop,
                args=(rank,),
                name=f"serve-dispatch-{rank}",
                daemon=True,
            )
            worker.start()
            self._workers.append(worker)
        rlog.info(
            "serve.started",
            socket=str(path),
            workers=self.config.serve_workers,
            max_batch=self.config.max_batch,
            executor=self.executor_mode,
        )

    def request_drain(self) -> None:
        """Begin a graceful drain (idempotent; returns immediately).

        New submissions are rejected with ``rejected-draining``,
        queued-but-unstarted tickets are resolved with the same
        retriable status, and dispatchers exit once in-flight batches
        finish.  :meth:`wait` observes completion.
        """
        if self._stopping.is_set():
            return
        self._stopping.set()
        self.observer.count("serve.drains")
        self.observer.event("serve.draining", queued=self.queue.depth())
        abandoned = self.queue.drain()
        for ticket in abandoned:
            self._reject(ticket.request, STATUS_DRAINING, ticket=ticket)
        rlog.info("serve.draining", rejected_queued=len(abandoned))

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the drain completed; True when it did."""
        deadline = None if timeout is None else time.monotonic() + timeout
        for worker in self._workers:
            remaining = (
                None if deadline is None else max(0.0, deadline - time.monotonic())
            )
            worker.join(remaining)
            if worker.is_alive():
                return False
        self._drained.set()
        return True

    def stop(self) -> None:
        """Drain, join every thread, retire executors, unlink the socket."""
        self.request_drain()
        self.wait()
        if self.pool is not None:
            self.pool.stop()
        for acceptor in self._acceptors:
            acceptor.join(timeout=5.0)
        self._acceptors = []
        self._acceptor = None
        with self._handlers_lock:
            handlers = list(self._handlers)
        for handler in handlers:
            handler.join(timeout=5.0)
        if self._sock is not None:
            self._sock.close()
            self._sock = None
        if self._tcp_sock is not None:
            self._tcp_sock.close()
            self._tcp_sock = None
            self.tcp_address = None
        try:
            self.config.socket_path.unlink()
        except FileNotFoundError:
            pass
        if self._catalog is not None:
            self._catalog.close()
            self._catalog = None
        rlog.info("serve.stopped", requests=self._requests_seen)

    @property
    def draining(self) -> bool:
        """True once a drain has been requested."""
        return self._stopping.is_set()

    # -- admission callbacks -------------------------------------------------

    def _on_depth(self, depth: int) -> None:
        """Mirror queue depth (total and per class) into gauges."""
        self.observer.gauge("serve.queue_depth", float(depth))
        for name, count in self.queue.depths().items():
            self.observer.gauge(f"serve.queue_depth.{name}", float(count))

    def _on_shed(self, ticket: Ticket) -> None:
        """Resolve a load-shed ticket with the retriable rejection."""
        priority = ticket.request.priority
        self._shed_counts[priority] = self._shed_counts.get(priority, 0) + 1
        self.observer.count(f"serve.shed.{priority}")
        ticket.try_resolve(
            Response(
                id=ticket.request.id or "",
                status=STATUS_QUEUE_FULL,
                error=(
                    "shed to admit higher-priority work under overload; "
                    "retry later"
                ),
                queue_seconds=ticket.queue_seconds(),
            )
        )

    def _on_executed(self, ticket: Ticket, response: Response) -> None:
        """Per-delivery bookkeeping: feed the queue's load estimator."""
        if response.elapsed_seconds > 0.0:
            self.queue.note_service_time(response.elapsed_seconds)
        self._ingest_manifest(response)

    def _ingest_manifest(self, response: Response) -> None:
        """Index the finished request's manifest into the run catalog.

        Active only with ``catalog_path`` configured; the Catalog's own
        lock serializes the dispatcher threads and WAL mode keeps
        concurrent external readers/ingesters safe.  Ingest failures
        are counted, never allowed to fail the request — the manifest
        file on disk remains the source of truth either way.
        """
        if self.config.catalog_path is None or not response.manifest_path:
            return
        try:
            if self._catalog is None:
                from repro.observe.catalog import Catalog

                self._catalog = Catalog(self.config.catalog_path)
            if self._catalog.ingest([Path(response.manifest_path)]).ingested:
                self.observer.count("serve.catalog.ingested")
        except Exception as exc:  # noqa: BLE001 - never fail the request
            self.observer.count("serve.catalog.errors")
            rlog.info("serve.catalog_error", error=str(exc))

    # -- acceptor / handlers -------------------------------------------------

    def _accept_loop(self, listener: socket.socket) -> None:
        """Accept connections until stopped; one handler thread each."""
        while not self._stopping.is_set():
            try:
                conn, _ = listener.accept()
            except socket.timeout:
                continue
            except OSError:  # pragma: no cover - socket closed under us
                break
            handler = threading.Thread(
                target=self._handle_connection, args=(conn,), daemon=True
            )
            with self._handlers_lock:
                self._handlers.add(handler)
            handler.start()

    def _handle_connection(self, conn: socket.socket) -> None:
        """Serve one connection: read one message, answer, close."""
        try:
            with conn:
                conn.settimeout(60.0)
                try:
                    message = recv_message(conn)
                except ProtocolError as exc:
                    send_message(
                        conn,
                        Response(
                            id="", status=STATUS_INVALID, error=str(exc)
                        ).to_dict(),
                    )
                    return
                if message is None:
                    return
                reply = self._dispatch(message)
                send_message(conn, reply)
        except OSError:
            # The client went away mid-reply; its problem, not ours.
            pass
        finally:
            with self._handlers_lock:
                self._handlers.discard(threading.current_thread())

    def _dispatch(self, message: dict) -> dict:
        """Route one decoded message to its handler; returns the reply."""
        kind = message.get("kind", "solve")
        if kind == "ping":
            return {
                "kind": "pong",
                "draining": self.draining,
                "uptime_seconds": time.monotonic() - self._started_at,
                "pid": os.getpid(),
            }
        if kind == "stats":
            snapshot = (
                self.observer.metrics.snapshot()
                if self.observer.metrics is not None
                else {}
            )
            now = time.monotonic()
            return {
                "kind": "stats",
                # Server-side monotonic clock + uptime: pollers (e.g.
                # `parma runs watch`) difference successive replies to
                # turn raw counters into rates without trusting their
                # own wall clock against the service's.
                "server_monotonic": now,
                "uptime_seconds": now - self._started_at,
                "queue_depth": self.queue.depth(),
                "queue_depths": self.queue.depths(),
                "estimated_queue_seconds": self.queue.estimated_queue_seconds(),
                "draining": self.draining,
                "requests": self._requests_seen,
                "executor": self.executor_mode,
                "shed": dict(self._shed_counts),
                "quota_rejections": self._quota_rejections,
                "idempotent_hits": self._idempotent_hits,
                "worker_respawns": (
                    self.pool.respawns if self.pool is not None else 0
                ),
                "requests_salvaged": (
                    self.pool.salvaged if self.pool is not None else 0
                ),
                "metrics": snapshot,
            }
        if kind == "drain":
            self.request_drain()
            return {"kind": "draining"}
        if kind != "solve":
            return Response(
                id=str(message.get("id") or ""),
                status=STATUS_INVALID,
                error=f"unknown message kind {kind!r}",
            ).to_dict()
        return self._handle_solve(message)

    def _handle_solve(self, message: dict) -> dict:
        """Admit a solve request, wait for its ticket, return the reply.

        Client-supplied ids are idempotency keys: a duplicate of a
        completed request answers from the cache, a duplicate of an
        in-flight request joins the existing ticket, and only then does
        a fresh ticket enter admission.
        """
        try:
            request = Request.from_dict(message)
            request.z_array()  # shape-check before admission
        except ValueError as exc:
            self.observer.count("serve.rejected.invalid")
            return Response(
                id=str(message.get("id") or ""),
                status=STATUS_INVALID,
                error=str(exc),
            ).to_dict()
        if request.id is None:
            request = dataclasses.replace(request, id=uuid.uuid4().hex[:12])
        self._requests_seen += 1
        self.observer.count("serve.requests")
        assert request.id is not None
        with self._idempotency_lock:
            cached = self._completed.get(request.id)
            if cached is not None:
                self._completed.move_to_end(request.id)
                joined = None
            else:
                joined = self._inflight.get(request.id)
        if cached is not None:
            self._idempotent_hits += 1
            self.observer.count("serve.idempotent_hits")
            return cached.to_dict()
        if joined is not None:
            self._idempotent_hits += 1
            self.observer.count("serve.idempotent_hits")
            response = joined.wait()
            assert response is not None
            return response.to_dict()
        try:
            ticket = self.queue.submit(request)
        except QueueFull as exc:
            return self._reject(request, STATUS_QUEUE_FULL, error=str(exc))
        except QueueDraining as exc:
            return self._reject(request, STATUS_DRAINING, error=str(exc))
        except QuotaExceeded as exc:
            self._quota_rejections += 1
            return self._reject(request, STATUS_QUOTA, error=str(exc))
        with self._idempotency_lock:
            self._inflight[request.id] = ticket
        response = ticket.wait()
        assert response is not None  # tickets are always resolved
        with self._idempotency_lock:
            self._inflight.pop(request.id, None)
            if not response.retriable:
                self._completed[request.id] = response
                while len(self._completed) > self.config.idempotency_cache:
                    self._completed.popitem(last=False)
        return response.to_dict()

    def _reject(
        self,
        request: Request,
        status: str,
        error: str = "",
        ticket: Ticket | None = None,
    ) -> dict:
        """Build (and deliver, for queued tickets) a retriable rejection."""
        self.observer.count(
            _REJECT_COUNTERS.get(status, "serve.rejected.draining")
        )
        response = Response(
            id=request.id or "",
            status=status,
            error=error or "service is draining; retry against the next instance",
        )
        if ticket is not None:
            ticket.try_resolve(response)
        return response.to_dict()

    # -- dispatchers ---------------------------------------------------------

    def _worker_loop(self, rank: int) -> None:
        """Pull batches until the queue is drained empty, then exit."""
        while True:
            batch = self.batcher.next_batch(timeout=_POLL_SECONDS)
            if batch is None:
                if self._stopping.is_set() and self.queue.depth() == 0:
                    return
                continue
            self._execute_batch(rank, batch)

    def _execute_batch(self, rank: int, batch: Batch) -> None:
        """Run one compatible batch on this dispatcher's execution host."""
        self.observer.count("serve.batches")
        self.observer.observe_hist("serve.batch_size", float(batch.size))
        if self.pool is not None:
            with self.observer.span(
                "serve.batch",
                n=batch.n,
                formation=batch.formation,
                backend=batch.backend,
                size=batch.size,
                executor="subprocess",
            ):
                self.pool.run_batch(rank, list(batch.tickets))
            return
        warm = batch.formation != "cached" or has_template(batch.n)
        with self.observer.span(
            "serve.batch",
            n=batch.n,
            formation=batch.formation,
            backend=batch.backend,
            size=batch.size,
            cache_warm=warm,
        ):
            for index, ticket in enumerate(batch.tickets):
                # One formation pass per batch: the head member's
                # formation stage builds (or finds) the per-n template,
                # and every member behind it only stamps values into
                # the shared structure.  The head of a cold batch is
                # labelled cold — its latency covers the build.
                self._execute_ticket(ticket, batch, warm or index > 0)

    def _execute_ticket(self, ticket: Ticket, batch: Batch, warm: bool) -> None:
        """Execute one request in-process and resolve its ticket."""
        assert self._runner is not None
        queue_seconds = ticket.queue_seconds()
        self.observer.observe_hist("serve.queue_wait_seconds", queue_seconds)
        response = self._runner.run(
            ticket.request,
            batch_size=batch.size,
            warm=warm,
            queue_seconds=queue_seconds,
        )
        ticket.try_resolve(response)
        self._on_executed(ticket, response)
