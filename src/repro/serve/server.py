""":class:`SolveService` — the persistent solve server.

One process, three kinds of threads:

* the **acceptor** owns the unix-domain listening socket and spawns a
  short-lived handler per connection;
* **handlers** read one request, admit it to the
  :class:`repro.serve.queue.AdmissionQueue` (or answer a retriable
  rejection), block on the ticket, and write the response;
* **workers** pull compatible batches through the
  :class:`repro.serve.batcher.Batcher` and execute them against a
  long-lived engine pool, so the per-``n`` pair template, the
  Jacobian-structure cache and the Laplacian-pinv LRU stay warm
  across requests (the whole point of serving instead of re-execing).

Graceful drain (SIGTERM, or an admin ``drain`` message): admission
closes, queued-but-unstarted tickets are answered with the retriable
``rejected-draining`` status, in-flight batches run to completion and
their responses are delivered, then the workers exit and the socket
is unlinked.  Nothing already being computed is discarded.

Every request that executes gets a run manifest (plus trace
artifacts) written through :mod:`repro.observe` under
``results_dir/req-<id>/``; service-level health lands in the
``serve.*`` spans/counters of the service observer (see
``docs/SERVING.md`` for the metric names and
``docs/OBSERVABILITY.md`` for the manifest schema).
"""

from __future__ import annotations

import dataclasses
import os
import socket
import threading
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.engine import ParmaEngine
from repro.core.templates import has_template
from repro.observe import Observer
from repro.observe.observer import MANIFEST_FILE_NAME, as_observer
from repro.resilience.supervise import Deadline, DeadlineExceeded
from repro.serve.batcher import Batch, Batcher
from repro.serve.protocol import (
    STATUS_DEADLINE,
    STATUS_DRAINING,
    STATUS_FAILED,
    STATUS_INVALID,
    STATUS_OK,
    STATUS_QUEUE_FULL,
    ProtocolError,
    Request,
    Response,
    recv_message,
    send_message,
)
from repro.serve.queue import AdmissionQueue, QueueDraining, QueueFull, Ticket
from repro.utils import logging as rlog

#: How long blocked socket/queue polls sleep between liveness checks.
_POLL_SECONDS = 0.1


@dataclass(frozen=True)
class ServiceConfig:
    """Everything a :class:`SolveService` needs to run.

    ``strategy``/``num_workers`` configure the engines (the default
    ``single`` strategy avoids forking out of a multi-threaded server;
    forked strategies work but are the operator's informed choice).
    ``serve_workers`` is the number of executor threads — keep it at 1
    unless solves are short and BLAS contention is acceptable.
    ``max_deadline`` caps any per-request budget; ``None`` accepts the
    request's own value unchanged.
    """

    socket_path: Path
    results_dir: Path
    max_queue_depth: int = 64
    max_batch: int = 8
    linger: float = 0.05
    serve_workers: int = 1
    strategy: str = "single"
    num_workers: int = 4
    max_deadline: float | None = None
    observer: object | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "socket_path", Path(self.socket_path))
        object.__setattr__(self, "results_dir", Path(self.results_dir))
        if self.serve_workers < 1:
            raise ValueError(
                f"serve_workers must be >= 1, got {self.serve_workers}"
            )


class SolveService:
    """A running (or startable) solve service bound to a unix socket.

    Lifecycle::

        service = SolveService(ServiceConfig(socket_path, results_dir))
        service.start()           # binds + spawns acceptor/workers
        ...                       # clients connect and submit
        service.request_drain()   # e.g. from a SIGTERM handler
        service.wait()            # until drained and stopped
        service.stop()            # idempotent final cleanup

    ``start()``/``stop()`` are safe to call from the main thread while
    handlers and workers run; ``request_drain()`` is async-signal-safe
    enough for a Python signal handler (it only sets events and
    resolves tickets).
    """

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.observer = as_observer(config.observer)
        self.queue = AdmissionQueue(
            max_depth=config.max_queue_depth,
            on_depth=lambda depth: self.observer.gauge(
                "serve.queue_depth", float(depth)
            ),
        )
        self.batcher = Batcher(
            self.queue, max_batch=config.max_batch, linger=config.linger
        )
        self._sock: socket.socket | None = None
        self._acceptor: threading.Thread | None = None
        self._workers: list[threading.Thread] = []
        self._handlers: set[threading.Thread] = set()
        self._handlers_lock = threading.Lock()
        self._engines: dict[tuple, ParmaEngine] = {}
        self._engines_lock = threading.Lock()
        self._stopping = threading.Event()
        self._drained = threading.Event()
        self._started_at = time.monotonic()
        self._requests_seen = 0

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Bind the socket and spawn the acceptor and worker threads."""
        if self._sock is not None:
            raise RuntimeError("service already started")
        path = self.config.socket_path
        path.parent.mkdir(parents=True, exist_ok=True)
        self.config.results_dir.mkdir(parents=True, exist_ok=True)
        if path.exists():
            # A previous instance that died uncleanly leaves its socket
            # file behind; binding over it requires the unlink.
            path.unlink()
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.bind(str(path))
        sock.listen(min(128, self.config.max_queue_depth * 2))
        sock.settimeout(_POLL_SECONDS)
        self._sock = sock
        self._started_at = time.monotonic()
        self._acceptor = threading.Thread(
            target=self._accept_loop, name="serve-acceptor", daemon=True
        )
        self._acceptor.start()
        for rank in range(self.config.serve_workers):
            worker = threading.Thread(
                target=self._worker_loop,
                name=f"serve-worker-{rank}",
                daemon=True,
            )
            worker.start()
            self._workers.append(worker)
        rlog.info(
            "serve.started",
            socket=str(path),
            workers=self.config.serve_workers,
            max_batch=self.config.max_batch,
        )

    def request_drain(self) -> None:
        """Begin a graceful drain (idempotent; returns immediately).

        New submissions are rejected with ``rejected-draining``,
        queued-but-unstarted tickets are resolved with the same
        retriable status, and workers exit once in-flight batches
        finish.  :meth:`wait` observes completion.
        """
        if self._stopping.is_set():
            return
        self._stopping.set()
        self.observer.count("serve.drains")
        self.observer.event("serve.draining", queued=self.queue.depth())
        abandoned = self.queue.drain()
        for ticket in abandoned:
            self._reject(ticket.request, STATUS_DRAINING, ticket=ticket)
        rlog.info("serve.draining", rejected_queued=len(abandoned))

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the drain completed; True when it did."""
        deadline = None if timeout is None else time.monotonic() + timeout
        for worker in self._workers:
            remaining = (
                None if deadline is None else max(0.0, deadline - time.monotonic())
            )
            worker.join(remaining)
            if worker.is_alive():
                return False
        self._drained.set()
        return True

    def stop(self) -> None:
        """Drain, join every thread and remove the socket (idempotent)."""
        self.request_drain()
        self.wait()
        if self._acceptor is not None:
            self._acceptor.join(timeout=5.0)
            self._acceptor = None
        with self._handlers_lock:
            handlers = list(self._handlers)
        for handler in handlers:
            handler.join(timeout=5.0)
        if self._sock is not None:
            self._sock.close()
            self._sock = None
        try:
            self.config.socket_path.unlink()
        except FileNotFoundError:
            pass
        rlog.info("serve.stopped", requests=self._requests_seen)

    @property
    def draining(self) -> bool:
        """True once a drain has been requested."""
        return self._stopping.is_set()

    # -- acceptor / handlers -------------------------------------------------

    def _accept_loop(self) -> None:
        """Accept connections until stopped; one handler thread each."""
        assert self._sock is not None
        while not self._stopping.is_set():
            try:
                conn, _ = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:  # pragma: no cover - socket closed under us
                break
            handler = threading.Thread(
                target=self._handle_connection, args=(conn,), daemon=True
            )
            with self._handlers_lock:
                self._handlers.add(handler)
            handler.start()

    def _handle_connection(self, conn: socket.socket) -> None:
        """Serve one connection: read one message, answer, close."""
        try:
            with conn:
                conn.settimeout(60.0)
                try:
                    message = recv_message(conn)
                except ProtocolError as exc:
                    send_message(
                        conn,
                        Response(
                            id="", status=STATUS_INVALID, error=str(exc)
                        ).to_dict(),
                    )
                    return
                if message is None:
                    return
                reply = self._dispatch(message)
                send_message(conn, reply)
        except OSError:
            # The client went away mid-reply; its problem, not ours.
            pass
        finally:
            with self._handlers_lock:
                self._handlers.discard(threading.current_thread())

    def _dispatch(self, message: dict) -> dict:
        """Route one decoded message to its handler; returns the reply."""
        kind = message.get("kind", "solve")
        if kind == "ping":
            return {
                "kind": "pong",
                "draining": self.draining,
                "uptime_seconds": time.monotonic() - self._started_at,
                "pid": os.getpid(),
            }
        if kind == "stats":
            snapshot = (
                self.observer.metrics.snapshot()
                if self.observer.metrics is not None
                else {}
            )
            return {
                "kind": "stats",
                "queue_depth": self.queue.depth(),
                "draining": self.draining,
                "requests": self._requests_seen,
                "metrics": snapshot,
            }
        if kind == "drain":
            self.request_drain()
            return {"kind": "draining"}
        if kind != "solve":
            return Response(
                id=str(message.get("id") or ""),
                status=STATUS_INVALID,
                error=f"unknown message kind {kind!r}",
            ).to_dict()
        return self._handle_solve(message)

    def _handle_solve(self, message: dict) -> dict:
        """Admit a solve request, wait for its ticket, return the reply."""
        try:
            request = Request.from_dict(message)
            request.z_array()  # shape-check before admission
        except ValueError as exc:
            self.observer.count("serve.rejected.invalid")
            return Response(
                id=str(message.get("id") or ""),
                status=STATUS_INVALID,
                error=str(exc),
            ).to_dict()
        if request.id is None:
            request = dataclasses.replace(request, id=uuid.uuid4().hex[:12])
        self._requests_seen += 1
        self.observer.count("serve.requests")
        try:
            ticket = self.queue.submit(request)
        except QueueFull as exc:
            return self._reject(request, STATUS_QUEUE_FULL, error=str(exc))
        except QueueDraining as exc:
            return self._reject(request, STATUS_DRAINING, error=str(exc))
        response = ticket.wait()
        assert response is not None  # tickets are always resolved
        return response.to_dict()

    def _reject(
        self,
        request: Request,
        status: str,
        error: str = "",
        ticket: Ticket | None = None,
    ) -> dict:
        """Build (and deliver, for queued tickets) a retriable rejection."""
        counter = (
            "serve.rejected.queue_full"
            if status == STATUS_QUEUE_FULL
            else "serve.rejected.draining"
        )
        self.observer.count(counter)
        response = Response(
            id=request.id or "",
            status=status,
            error=error or "service is draining; retry against the next instance",
        )
        if ticket is not None:
            ticket.resolve(response)
        return response.to_dict()

    # -- workers -------------------------------------------------------------

    def _worker_loop(self) -> None:
        """Pull batches until the queue is drained empty, then exit."""
        while True:
            batch = self.batcher.next_batch(timeout=_POLL_SECONDS)
            if batch is None:
                if self._stopping.is_set() and self.queue.depth() == 0:
                    return
                continue
            self._execute_batch(batch)

    def _engine_for(self, request: Request, deadline: Deadline | None) -> ParmaEngine:
        """A pooled engine for the request's knobs (fresh when deadlined).

        Engines are stateless between calls, so one per knob
        combination serves every matching request; a per-request
        deadline (and the observer handle) is mutable engine state, so
        deadlined requests — and every request when more than one
        executor thread could share a pooled engine — get a throwaway.
        Engine construction is cheap; the expensive state (templates,
        pinv LRU, Jacobian structure) is process-global either way.
        """
        key = (
            request.solver,
            request.formation,
            request.backend,
            request.threshold_sigmas,
            request.validate,
        )
        if deadline is not None or self.config.serve_workers > 1:
            return ParmaEngine(
                strategy=self.config.strategy,
                num_workers=self.config.num_workers,
                solver=request.solver,
                backend=request.backend,
                threshold_sigmas=request.threshold_sigmas,
                formation=request.formation,
                validate=request.validate,
                deadline=deadline,
            )
        with self._engines_lock:
            engine = self._engines.get(key)
            if engine is None:
                engine = ParmaEngine(
                    strategy=self.config.strategy,
                    num_workers=self.config.num_workers,
                    solver=request.solver,
                    backend=request.backend,
                    threshold_sigmas=request.threshold_sigmas,
                    formation=request.formation,
                    validate=request.validate,
                )
                self._engines[key] = engine
        return engine

    def _execute_batch(self, batch: Batch) -> None:
        """Run one compatible batch: shared warm-up, then each member."""
        warm = batch.formation != "cached" or has_template(batch.n)
        self.observer.count("serve.batches")
        self.observer.observe_hist("serve.batch_size", float(batch.size))
        with self.observer.span(
            "serve.batch",
            n=batch.n,
            formation=batch.formation,
            backend=batch.backend,
            size=batch.size,
            cache_warm=warm,
        ):
            for index, ticket in enumerate(batch.tickets):
                # One formation pass per batch: the head member's
                # formation stage builds (or finds) the per-n template,
                # and every member behind it only stamps values into
                # the shared structure.  The head of a cold batch is
                # labelled cold — its latency covers the build.
                self._execute_ticket(ticket, batch, warm or index > 0)

    def _execute_ticket(self, ticket: Ticket, batch: Batch, warm: bool) -> None:
        """Execute one request and resolve its ticket (never raises)."""
        request = ticket.request
        queue_seconds = ticket.queue_seconds()
        self.observer.observe_hist("serve.queue_wait_seconds", queue_seconds)
        started = time.perf_counter()
        try:
            response = self._run_request(request, batch, warm, queue_seconds)
        except Exception as exc:  # noqa: BLE001 - tickets must resolve
            self.observer.count("serve.responses.failed")
            response = Response(
                id=request.id or "",
                status=STATUS_FAILED,
                error=f"{type(exc).__name__}: {exc}",
                batch_size=batch.size,
                cache_warm=warm,
                queue_seconds=queue_seconds,
                elapsed_seconds=time.perf_counter() - started,
            )
        ticket.resolve(response)

    def _fold_request_metrics(self, request_observer: Observer) -> None:
        """Aggregate a finished request's registry into the service's.

        Per-request observers own their formation/solve/cache counters
        (they land in that request's manifest); merging them here keeps
        the service-level ``stats`` reply a running total across every
        request served.
        """
        if self.observer.metrics is not None:
            self.observer.metrics.merge(request_observer.metrics.snapshot())

    def _run_request(
        self, request: Request, batch: Batch, warm: bool, queue_seconds: float
    ) -> Response:
        """The per-request pipeline: engine, observer, manifest, response."""
        from repro.mea.dataset import Measurement, MeasurementValidationError
        from repro.resilience.degrade import SolverDegradationError

        started = time.perf_counter()
        deadline = Deadline.capped(request.deadline, self.config.max_deadline)
        engine = self._engine_for(request, deadline)
        request_dir = self.config.results_dir / f"req-{request.id}"
        obs = Observer(trace_dir=request_dir)
        engine.observer = obs
        config = {
            "command": "serve",
            "request_id": request.id,
            "n": request.n,
            "hour": request.hour,
            "solver": request.solver,
            "formation": request.formation,
            "backend": request.backend,
            "strategy": self.config.strategy,
            "validate": request.validate,
            "batch_size": batch.size,
            "cache_warm": warm,
        }
        z = request.z_array()
        try:
            measurement: Measurement | object
            try:
                measurement = Measurement(
                    z_kohm=z, voltage=request.voltage, hour=request.hour
                )
            except ValueError:
                # Dirty acquisitions cannot satisfy Measurement's own
                # invariants; hand the raw array to the engine's
                # validate policy (strict will name the channel).
                measurement = z
            with obs.span("run", command="serve", n=request.n):
                result = engine.parametrize(
                    measurement,
                    solver_kwargs=request.solver_kwargs or None,
                    voltage=request.voltage,
                    hour=request.hour,
                )
        except DeadlineExceeded as exc:
            obs.finalize(config=config)
            self._fold_request_metrics(obs)
            self.observer.count("serve.responses.deadline")
            return Response(
                id=request.id or "",
                status=STATUS_DEADLINE,
                error=str(exc),
                manifest_path=str(request_dir / MANIFEST_FILE_NAME),
                batch_size=batch.size,
                cache_warm=warm,
                queue_seconds=queue_seconds,
                elapsed_seconds=time.perf_counter() - started,
            )
        except (SolverDegradationError, MeasurementValidationError) as exc:
            self.observer.count("serve.responses.failed")
            return Response(
                id=request.id or "",
                status=STATUS_FAILED,
                error=str(exc),
                batch_size=batch.size,
                cache_warm=warm,
                queue_seconds=queue_seconds,
                elapsed_seconds=time.perf_counter() - started,
            )
        finally:
            engine.observer = None
        elapsed = time.perf_counter() - started
        obs.finalize(config=config)
        self._fold_request_metrics(obs)
        failed = (
            result.degradation is not None
            and result.degradation.degraded
            and not result.solve.converged
        )
        bucket = "serve.latency.warm_seconds" if warm else "serve.latency.cold_seconds"
        self.observer.observe_hist(bucket, elapsed)
        self.observer.count(
            "serve.responses.failed" if failed else "serve.responses.ok"
        )
        return Response(
            id=request.id or "",
            status=STATUS_FAILED if failed else STATUS_OK,
            summary=result.summary(),
            error=(
                "solve did not converge even after degradation" if failed else ""
            ),
            manifest_path=str(request_dir / MANIFEST_FILE_NAME),
            num_regions=result.detection.num_regions,
            resistance=(
                result.resistance.tolist() if request.want_field else None
            ),
            events=result.events,
            batch_size=batch.size,
            cache_warm=warm,
            queue_seconds=queue_seconds,
            elapsed_seconds=elapsed,
        )
