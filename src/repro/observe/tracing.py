"""Lightweight span tracing with JSONL and Chrome ``trace_event`` export.

The unit of intrinsic parallelism in Parma is the Kirchhoff loop
(β₁ = |E| − |V| + 1 independent meshes, paper §III), and the units of
*work* are the pair blocks and partition shares built on top of them —
so those are the natural span granularity: a traced run shows, per
worker and per phase, exactly where an ``n = 60`` campaign spent its
time.

Design constraints:

* **cheap** — a span is one ``perf_counter`` pair, a small dataclass
  and a list append; no I/O happens until export;
* **thread-safe** — the open-span stack is ``threading.local``; the
  finished-span buffer is guarded by one lock;
* **fork-safe** — PyMP workers are *forked processes*: spans they
  record live in their copy-on-write heap and die with them.  Workers
  therefore flush their region-local spans to a spool directory
  (:meth:`Tracer.flush_to_spool`) before the region joins, and the
  parent merges the spool (:meth:`Tracer.merge_spool`) after the join.
  Span timestamps use ``time.perf_counter``, which on Linux is
  CLOCK_MONOTONIC and hence comparable across processes of one boot —
  parent and worker spans land on one consistent timeline.

Exports: :func:`write_jsonl` / :func:`read_jsonl` round-trip the raw
span stream; :func:`write_chrome_trace` emits the Chrome
``trace_event`` JSON (an object with a ``traceEvents`` array) loadable
by ``chrome://tracing`` and `Perfetto <https://ui.perfetto.dev>`_;
:func:`build_span_tree` and :func:`phase_rollup` reconstruct the call
structure for ``parma trace summarize``.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Sequence

#: Span kinds: ``span`` has a duration; ``event`` is instantaneous
#: (resilience events — retries, rung transitions, checkpoint writes —
#: are events on the same stream).
SPAN_KINDS = ("span", "event")

#: File suffix for per-worker spool files (see :meth:`Tracer.flush_to_spool`).
SPOOL_SUFFIX = ".spans.jsonl"


@dataclass(frozen=True)
class Span:
    """One finished span (or instantaneous event) on the trace stream."""

    name: str
    ts: float  # perf_counter seconds at entry (monotonic, cross-process)
    dur: float  # seconds; 0.0 for events
    pid: int
    tid: int
    span_id: str
    parent_id: str | None = None
    kind: str = "span"
    attrs: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict:
        d = {
            "name": self.name,
            "ts": self.ts,
            "dur": self.dur,
            "pid": self.pid,
            "tid": self.tid,
            "span_id": self.span_id,
            "kind": self.kind,
        }
        if self.parent_id is not None:
            d["parent_id"] = self.parent_id
        if self.attrs:
            d["attrs"] = self.attrs
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "Span":
        return cls(
            name=str(d["name"]),
            ts=float(d["ts"]),
            dur=float(d["dur"]),
            pid=int(d["pid"]),
            tid=int(d["tid"]),
            span_id=str(d["span_id"]),
            parent_id=d.get("parent_id"),
            kind=str(d.get("kind", "span")),
            attrs=dict(d.get("attrs", {})),
        )


def _jsonable(value: Any) -> Any:
    """Coerce attr values to JSON-safe primitives (tuples -> lists)."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (tuple, list)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    try:  # numpy scalars
        return value.item()
    except AttributeError:
        return str(value)


class _SpanHandle:
    """Context manager for one open span; returned by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_name", "_attrs", "_start", "_id", "_parent")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._start = 0.0
        self._id = ""
        self._parent: str | None = None

    def __enter__(self) -> "_SpanHandle":
        self._id, self._parent = self._tracer._push()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        end = time.perf_counter()
        if exc_type is not None:
            self._attrs["error"] = exc_type.__name__
        self._tracer._pop(
            Span(
                name=self._name,
                ts=self._start,
                dur=end - self._start,
                pid=os.getpid(),
                tid=threading.get_ident(),
                span_id=self._id,
                parent_id=self._parent,
                kind="span",
                attrs={k: _jsonable(v) for k, v in self._attrs.items()},
            )
        )


class Tracer:
    """Collects spans in memory; workers spill to a spool directory."""

    def __init__(self) -> None:
        self._spans: list[Span] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        self._seq = 0
        self.spool_dir: Path | None = None

    # -- recording -----------------------------------------------------------

    def span(self, name: str, **attrs: Any) -> _SpanHandle:
        """``with tracer.span("form", pair=(i, j)): ...``"""
        return _SpanHandle(self, name, attrs)

    def event(self, name: str, **attrs: Any) -> Span:
        """Record an instantaneous event at the current position."""
        stack = getattr(self._local, "stack", None)
        parent = stack[-1] if stack else None
        with self._lock:
            self._seq += 1
            span_id = f"{os.getpid()}:{self._seq}"
            span = Span(
                name=name,
                ts=time.perf_counter(),
                dur=0.0,
                pid=os.getpid(),
                tid=threading.get_ident(),
                span_id=span_id,
                parent_id=parent,
                kind="event",
                attrs={k: _jsonable(v) for k, v in attrs.items()},
            )
            self._spans.append(span)
        return span

    def add_span(
        self,
        name: str,
        ts: float,
        dur: float,
        pid: int | None = None,
        tid: int = 0,
        **attrs: Any,
    ) -> Span:
        """Append a synthesized span (e.g. rebuilt from a remote rank's
        reported timing).  Parented under the caller's currently open
        span, so an MPI launcher can nest per-rank spans inside its
        ``formation`` span even though the ranks never saw the tracer.
        """
        stack = getattr(self._local, "stack", None)
        parent = stack[-1] if stack else None
        with self._lock:
            self._seq += 1
            span = Span(
                name=name,
                ts=float(ts),
                dur=float(dur),
                pid=int(pid) if pid is not None else os.getpid(),
                tid=int(tid),
                span_id=f"{os.getpid()}:{self._seq}",
                parent_id=parent,
                kind="span",
                attrs={k: _jsonable(v) for k, v in attrs.items()},
            )
            self._spans.append(span)
        return span

    def _push(self) -> tuple[str, str | None]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        with self._lock:
            self._seq += 1
            span_id = f"{os.getpid()}:{self._seq}"
        parent = stack[-1] if stack else None
        stack.append(span_id)
        return span_id, parent

    def _pop(self, span: Span) -> None:
        stack = self._local.stack
        stack.pop()
        with self._lock:
            self._spans.append(span)

    # -- access --------------------------------------------------------------

    @property
    def spans(self) -> tuple[Span, ...]:
        with self._lock:
            return tuple(self._spans)

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def mark(self) -> int:
        """Buffer length now; workers flush only spans after the mark."""
        with self._lock:
            return len(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    # -- fork support --------------------------------------------------------

    def ensure_spool(self, directory: str | Path) -> Path:
        """Create (and remember) the spool directory for worker flushes.

        Must be called in the *parent* before forking so every region
        member inherits the same path.
        """
        self.spool_dir = Path(directory)
        self.spool_dir.mkdir(parents=True, exist_ok=True)
        return self.spool_dir

    def flush_to_spool(self, since: int = 0, worker: int | None = None) -> int:
        """Write spans recorded after ``since`` to a per-process spool file.

        Called by forked workers just before region exit (their heap —
        and with it, their span buffer — vanishes at ``os._exit``).
        The write lands under a temporary name and is renamed into
        place so the parent's merge never reads a torn file.  Returns
        the number of spans flushed.
        """
        if self.spool_dir is None:
            return 0
        with self._lock:
            spans = self._spans[since:]
        if not spans:
            return 0
        tag = f"{os.getpid()}" if worker is None else f"w{worker}-{os.getpid()}"
        path = self.spool_dir / f"{tag}{SPOOL_SUFFIX}"
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            for span in spans:
                fh.write(json.dumps(span.to_dict()) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        return len(spans)

    def merge_spool(self) -> int:
        """Absorb (and delete) every spool file; returns spans merged.

        Called by the parent after the fork region joins.  Safe when
        the spool is empty or absent.
        """
        if self.spool_dir is None or not self.spool_dir.exists():
            return 0
        merged = 0
        for path in sorted(self.spool_dir.glob(f"*{SPOOL_SUFFIX}")):
            spans = read_jsonl(path)
            with self._lock:
                self._spans.extend(spans)
            merged += len(spans)
            path.unlink()
        return merged


# -- serialization ------------------------------------------------------------


def write_jsonl(spans: Iterable[Span], path: str | Path) -> int:
    """Write one span per line; returns the number written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        for span in spans:
            fh.write(json.dumps(span.to_dict()) + "\n")
            count += 1
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    return count


def read_jsonl(path: str | Path) -> list[Span]:
    """Parse a span JSONL file (skipping blank lines)."""
    spans: list[Span] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                spans.append(Span.from_dict(json.loads(line)))
    return spans


def chrome_trace_events(spans: Sequence[Span]) -> list[dict]:
    """Spans -> Chrome ``trace_event`` dicts (``X`` complete, ``i`` instant).

    Timestamps are microseconds from the earliest span, so the trace
    starts at t=0 regardless of the monotonic clock's epoch.
    """
    if not spans:
        return []
    t0 = min(s.ts for s in spans)
    events: list[dict] = []
    names: dict[int, None] = {}
    for s in spans:
        names.setdefault(s.pid, None)
        ev: dict[str, Any] = {
            "name": s.name,
            "cat": s.kind,
            "ts": (s.ts - t0) * 1e6,
            "pid": s.pid,
            "tid": s.tid,
            "args": dict(s.attrs),
        }
        if s.kind == "event":
            ev["ph"] = "i"
            ev["s"] = "t"  # thread-scoped instant
        else:
            ev["ph"] = "X"
            ev["dur"] = s.dur * 1e6
        events.append(ev)
    meta = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "args": {"name": f"parma pid {pid}"},
        }
        for pid in sorted(names)
    ]
    return meta + events


def write_chrome_trace(spans: Sequence[Span], path: str | Path) -> int:
    """Write the Perfetto-loadable trace file; returns event count."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    events = chrome_trace_events(spans)
    doc = {"traceEvents": events, "displayTimeUnit": "ms"}
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    return len(events)


# -- reconstruction -----------------------------------------------------------


@dataclass
class SpanNode:
    """One span plus its reconstructed children."""

    span: Span
    children: list["SpanNode"] = field(default_factory=list)

    @property
    def self_seconds(self) -> float:
        """Duration not covered by child *spans* (events cost nothing)."""
        child_time = sum(
            c.span.dur for c in self.children if c.span.kind == "span"
        )
        return max(0.0, self.span.dur - child_time)


def build_span_tree(spans: Sequence[Span]) -> list[SpanNode]:
    """Reconstruct the span forest from parent links.

    Spans whose parent is missing from the stream (e.g. a worker span
    whose parent lived in another process and was not flushed) become
    roots.  Events participate as leaf nodes.
    """
    nodes = {s.span_id: SpanNode(span=s) for s in spans}
    roots: list[SpanNode] = []
    for s in spans:
        node = nodes[s.span_id]
        parent = nodes.get(s.parent_id) if s.parent_id else None
        if parent is not None and parent is not node:
            parent.children.append(node)
        else:
            roots.append(node)
    for node in nodes.values():
        node.children.sort(key=lambda c: c.span.ts)
    roots.sort(key=lambda r: r.span.ts)
    return roots


def phase_rollup(spans: Sequence[Span]) -> dict[str, dict[str, float]]:
    """Aggregate per span name: count, total seconds, self seconds.

    ``self`` excludes time covered by child spans, so the rollup's
    self-column sums to (approximately) the union of root durations —
    the "where did the time actually go" view.
    """
    roots = build_span_tree([s for s in spans if s.kind == "span"])
    rollup: dict[str, dict[str, float]] = {}

    def visit(node: SpanNode) -> None:
        entry = rollup.setdefault(
            node.span.name, {"count": 0, "total": 0.0, "self": 0.0}
        )
        entry["count"] += 1
        entry["total"] += node.span.dur
        entry["self"] += node.self_seconds
        for child in node.children:
            if child.span.kind == "span":
                visit(child)

    for root in roots:
        visit(root)
    return rollup
