"""Run manifests: one JSON artifact answering "what ran, where, how long".

A manifest is written next to the trace by
:meth:`repro.observe.Observer.finalize` and records:

* identity — run id, start time, schema version;
* config — the caller's knob dict (strategy, n, workers, solver, ...);
* environment — host, platform, Python, numpy + BLAS, git describe;
* phases — per-span-name wall rollups (count / total / self seconds)
  reconstructed from the trace;
* metrics — the full :class:`repro.observe.metrics.MetricsRegistry`
  snapshot (includes the formation-cache gauges, so the manifest and
  ``parma info`` agree by construction);
* totals — wall seconds, CPU seconds, and (when a
  :class:`repro.instrument.MemorySampler` ran) peak/quantile RSS.

The file is written atomically (:mod:`repro.resilience.atomio`), and
:func:`validate_manifest` is the CI gate: a manifest missing any
:data:`REQUIRED_KEYS` fails the workflow.
"""

from __future__ import annotations

import json
import platform
import socket
import subprocess
import sys
from pathlib import Path
from typing import Any

MANIFEST_SCHEMA_VERSION = 1

#: Schema versions this build can read.  :func:`validate_manifest`
#: rejects anything else up front with a clear error, instead of
#: letting a future manifest fail later on some missing/renamed key.
SUPPORTED_SCHEMA_VERSIONS = (1,)

#: Keys every manifest must carry (CI fails a traced run without them).
REQUIRED_KEYS = (
    "schema_version",
    "kind",
    "run_id",
    "started_unix",
    "config",
    "environment",
    "phases",
    "metrics",
    "wall_seconds",
    "cpu_seconds",
)


class ManifestError(ValueError):
    """A manifest file is missing required structure."""


def _git_describe() -> str:
    """Best-effort ``git describe`` of the source tree (never raises)."""
    root = Path(__file__).resolve().parents[3]
    try:
        out = subprocess.run(
            ["git", "describe", "--always", "--dirty", "--tags"],
            cwd=root,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def _blas_info() -> str:
    """One-line description of numpy's BLAS backend (best effort)."""
    import numpy as np

    try:  # numpy >= 1.26 exposes the build config as a dict
        config = np.show_config(mode="dicts")
        blas = config.get("Build Dependencies", {}).get("blas", {})
        name = blas.get("name", "unknown")
        version = blas.get("version", "")
        return f"{name} {version}".strip()
    except (TypeError, AttributeError, KeyError):
        pass
    try:  # older numpy: parse the first backend section name
        info = np.__config__.blas_opt_info  # type: ignore[attr-defined]
        libs = info.get("libraries", [])
        return ",".join(libs) if libs else "unknown"
    except AttributeError:
        return "unknown"


def environment_info() -> dict[str, Any]:
    """Host/toolchain facts pinned into every manifest."""
    import numpy as np

    return {
        "host": socket.gethostname(),
        "platform": platform.platform(),
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "blas": _blas_info(),
        "git": _git_describe(),
        "cpu_count": __import__("os").cpu_count(),
    }


def build_manifest(
    run_id: str,
    config: dict,
    phases: dict[str, dict[str, float]],
    metrics: dict[str, dict],
    wall_seconds: float,
    cpu_seconds: float,
    started_unix: float,
    memory: dict | None = None,
    num_spans: int = 0,
    extra: dict | None = None,
) -> dict:
    """Assemble the manifest dict (pure; no I/O)."""
    manifest: dict[str, Any] = {
        "schema_version": MANIFEST_SCHEMA_VERSION,
        "kind": "run-manifest",
        "run_id": run_id,
        "started_unix": float(started_unix),
        "config": dict(config),
        "environment": environment_info(),
        "phases": {
            name: {
                "count": int(entry.get("count", 0)),
                "total_seconds": float(entry.get("total", 0.0)),
                "self_seconds": float(entry.get("self", 0.0)),
            }
            for name, entry in phases.items()
        },
        "metrics": metrics,
        "wall_seconds": float(wall_seconds),
        "cpu_seconds": float(cpu_seconds),
        "num_spans": int(num_spans),
    }
    if memory is not None:
        manifest["memory"] = {k: float(v) for k, v in memory.items()}
    if extra:
        manifest["extra"] = dict(extra)
    return manifest


def write_manifest(path: str | Path, manifest: dict) -> Path:
    """Atomically persist a validated manifest; returns the path."""
    validate_manifest(manifest)
    from repro.resilience.atomio import atomic_write_json

    path = Path(path)
    atomic_write_json(path, manifest)
    return path


def load_manifest(path: str | Path) -> dict:
    """Read and structurally validate a manifest file."""
    path = Path(path)
    try:
        manifest = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ManifestError(f"unreadable manifest {path}: {exc}") from exc
    validate_manifest(manifest)
    return manifest


def validate_manifest(manifest: Any) -> dict:
    """Raise :class:`ManifestError` unless all required keys are present."""
    if not isinstance(manifest, dict):
        raise ManifestError(
            f"manifest must be a JSON object, got {type(manifest).__name__}"
        )
    # Schema gate first: a manifest from a newer (or corrupted) writer
    # should be rejected by version, not by whichever renamed key
    # happens to trip a confusing missing-key error below.
    if "schema_version" in manifest:
        version = manifest["schema_version"]
        if version not in SUPPORTED_SCHEMA_VERSIONS:
            supported = ", ".join(str(v) for v in SUPPORTED_SCHEMA_VERSIONS)
            raise ManifestError(
                f"manifest schema version {version!r} is not supported by "
                f"this build (supported: {supported}); it was written by a "
                "different parma version"
            )
    missing = [key for key in REQUIRED_KEYS if key not in manifest]
    if missing:
        raise ManifestError(
            f"manifest is missing required key(s): {', '.join(missing)}"
        )
    if manifest["kind"] != "run-manifest":
        raise ManifestError(
            f"manifest kind is {manifest['kind']!r}, expected 'run-manifest'"
        )
    if not isinstance(manifest["phases"], dict):
        raise ManifestError("manifest 'phases' must be an object")
    if not isinstance(manifest["metrics"], dict):
        raise ManifestError("manifest 'metrics' must be an object")
    return manifest


def phase_total_seconds(manifest: dict, top_level_only: bool = True) -> float:
    """Sum of phase time for the wall-coverage acceptance check.

    With ``top_level_only`` the *self* seconds are summed across all
    phases — self time partitions the trace (every traced second is
    counted exactly once), so the sum is comparable to ``wall_seconds``.
    """
    phases = manifest.get("phases", {})
    key = "self_seconds" if top_level_only else "total_seconds"
    return float(sum(entry.get(key, 0.0) for entry in phases.values()))
