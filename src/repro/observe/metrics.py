"""Process-local metrics: counters, gauges, fixed-bucket histograms.

One :class:`MetricsRegistry` per run (the :class:`repro.observe.Observer`
owns it) aggregates everything the pipeline wants counted — pair
blocks formed, template-cache hits/misses, retry attempts, degradation
rung transitions, checkpoint writes/resumes, bytes committed by
:mod:`repro.resilience.atomio` — and snapshots to a plain dict that the
run manifest embeds verbatim.

The registry is intentionally *process-local*: forked formation
workers report their share through the existing shared-memory
reductions (``FormationReport.per_worker_terms`` etc.), and the parent
feeds the reduced totals into the registry after the join
(:func:`record_formation`), so no cross-process metric merging is ever
needed.

Canonical metric names are dotted lowercase (``formation.terms``,
``retry.attempts``, ``degrade.rung.bounded``, ``checkpoint.writes``,
``atomio.bytes_committed``, ``cache.pair-template.hits``).  The solve
service adds the ``serve.*`` family — ``serve.requests``,
``serve.batches``, ``serve.batch_size``, ``serve.queue_depth`` (total
plus per-class ``serve.queue_depth.{interactive,batch}`` gauges),
``serve.queue_wait_seconds``, ``serve.latency.{cold,warm}_seconds``,
``serve.rejected.{queue_full,draining,invalid,quota}``,
``serve.responses.{ok,failed,deadline,worker_lost}``,
``serve.shed.{interactive,batch}``, ``serve.idempotent_hits``,
``serve.drains``, and the executor-supervision counters
``serve.worker_respawns`` / ``serve.requests_salvaged`` /
``serve.worker_lost`` — documented in ``docs/SERVING.md``.  The solver fast path adds the ``solver.*``
family — ``solver.iteration.seconds`` (per-Gauss–Newton-iteration
histogram), ``solver.gn.refine_fallbacks`` (float32 step factorisation
abandoned for double precision), ``solver.gn.lm_rescues`` (line search
exhausted, Levenberg normal equations assembled) and
``solver.backend.fallback`` (``backend="compiled"`` requested without
numba) — documented in ``docs/OBSERVABILITY.md``.

One cross-registry operation exists for the serving path:
:meth:`MetricsRegistry.merge` folds a *snapshot* of another registry
into this one, so the long-lived service registry can aggregate each
per-request registry after the request's manifest is finalized — and,
with subprocess executors, the snapshots that each executor child
ships back alongside its result frames.
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Any, Sequence

#: Default histogram buckets for durations in seconds (upper edges).
DURATION_BUCKETS = (0.001, 0.01, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0)


@dataclass
class Counter:
    """Monotonically increasing count."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> float:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount
        return self.value

    def to_dict(self) -> dict:
        return {"type": "counter", "value": self.value}


@dataclass
class Gauge:
    """Last-write-wins level (cache residency, queue depth, ...)."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> float:
        self.value = float(value)
        return self.value

    def to_dict(self) -> dict:
        return {"type": "gauge", "value": self.value}


@dataclass
class Histogram:
    """Fixed-bucket histogram: counts per upper-edge bucket + overflow.

    ``buckets`` are the inclusive upper edges; one extra overflow
    bucket catches everything above the last edge.  Also tracks sum
    and count so means survive the snapshot.
    """

    name: str
    buckets: tuple[float, ...] = DURATION_BUCKETS
    counts: list[int] = field(default_factory=list)
    total: float = 0.0
    count: int = 0

    def __post_init__(self) -> None:
        edges = tuple(float(b) for b in self.buckets)
        if list(edges) != sorted(edges):
            raise ValueError(f"histogram {self.name}: buckets must be sorted")
        self.buckets = edges
        if not self.counts:
            self.counts = [0] * (len(edges) + 1)

    def observe(self, value: float) -> None:
        self.counts[bisect_right(self.buckets, float(value))] += 1
        self.total += float(value)
        self.count += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "type": "histogram",
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.total,
            "count": self.count,
        }


class MetricsRegistry:
    """Thread-safe name -> metric map with typed get-or-create access."""

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, cls, **kwargs):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name=name, **kwargs)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} is a {type(metric).__name__}, "
                    f"not a {cls.__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(
        self, name: str, buckets: Sequence[float] = DURATION_BUCKETS
    ) -> Histogram:
        return self._get(name, Histogram, buckets=tuple(buckets))

    def names(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._metrics))

    def snapshot(self) -> dict[str, dict]:
        """A JSON-safe copy of every metric, sorted by name."""
        with self._lock:
            return {
                name: self._metrics[name].to_dict()
                for name in sorted(self._metrics)
            }

    def clear(self) -> None:
        with self._lock:
            self._metrics.clear()

    def merge(self, snapshot: dict[str, dict]) -> None:
        """Fold a :meth:`snapshot` of another registry into this one.

        Counters add, gauges take the incoming value, histograms merge
        bucket-by-bucket when the edges agree (and are skipped with no
        error when they don't — two registries disagreeing on buckets
        is a configuration drift the caller can see in its own
        snapshot, not a reason to corrupt counts).  Unknown metric
        types are ignored so newer snapshots stay mergeable.
        """
        for name, entry in snapshot.items():
            kind = entry.get("type")
            if kind == "counter":
                self.counter(name).inc(float(entry.get("value", 0.0)))
            elif kind == "gauge":
                self.gauge(name).set(float(entry.get("value", 0.0)))
            elif kind == "histogram":
                edges = tuple(float(b) for b in entry.get("buckets", ()))
                hist = self.histogram(name, buckets=edges or DURATION_BUCKETS)
                counts = entry.get("counts", [])
                if hist.buckets != edges or len(counts) != len(hist.counts):
                    continue
                with self._lock:
                    for i, c in enumerate(counts):
                        hist.counts[i] += int(c)
                    hist.total += float(entry.get("sum", 0.0))
                    hist.count += int(entry.get("count", 0))


def histogram_quantile(entry: dict, q: float) -> float:
    """Estimate a quantile from a snapshot histogram dict.

    Linear interpolation inside the winning bucket, the standard
    fixed-bucket estimator (same convention as Prometheus'
    ``histogram_quantile``): the true value is within one bucket width.
    Values in the overflow bucket clamp to the last edge.  Accepts the
    :meth:`Histogram.to_dict` shape; returns 0.0 for empty histograms.
    """
    buckets = [float(b) for b in entry.get("buckets", ())]
    counts = [int(c) for c in entry.get("counts", ())]
    total = sum(counts)
    if total == 0 or not buckets:
        return 0.0
    target = max(1.0, q * total)
    cumulative = 0
    lower = 0.0
    for index, count in enumerate(counts):
        upper = buckets[index] if index < len(buckets) else buckets[-1]
        if cumulative + count >= target:
            if index >= len(buckets):  # overflow bucket: clamp
                return buckets[-1]
            fraction = (target - cumulative) / count
            return lower + fraction * (upper - lower)
        cumulative += count
        lower = upper
    return buckets[-1]


# -- pipeline-specific recorders ----------------------------------------------


def record_formation(registry: MetricsRegistry, report: Any) -> None:
    """Fold one ``FormationReport`` into the registry."""
    registry.counter("formation.runs").inc()
    registry.counter("formation.terms").inc(float(report.terms_formed))
    registry.counter("formation.pair_blocks").inc(float(report.n) ** 2)
    registry.counter("formation.bytes_written").inc(
        float(getattr(report, "bytes_written", 0))
    )
    registry.histogram("formation.elapsed_seconds").observe(
        float(report.elapsed_seconds)
    )
    salvaged = float(getattr(report, "blocks_salvaged", 0))
    reformed = float(getattr(report, "blocks_reformed", 0))
    if salvaged:
        registry.counter("formation.blocks_salvaged").inc(salvaged)
    if reformed:
        registry.counter("formation.blocks_reformed").inc(reformed)


def record_degradation(registry: MetricsRegistry, report: Any) -> None:
    """Fold one ``DegradationReport`` into the registry."""
    if report is None:
        return
    if report.rung_used:
        registry.counter(f"degrade.rung.{report.rung_used}").inc()
    transitions = max(0, len(report.rungs_tried) - 1)
    if transitions:
        registry.counter("degrade.rung_transitions").inc(transitions)
    if report.exhausted:
        registry.counter("degrade.exhausted").inc()


def all_cache_stats() -> list[Any]:
    """The three formation/assembly cache stats, one authoritative list.

    This is the *single source* consumed by ``parma info``'s
    :func:`repro.instrument.report.cache_stats_table`, by
    :func:`sync_cache_gauges` (metrics registry), and hence by the run
    manifest — all three surfaces show the same numbers.
    """
    # Imported here: the core/kirchhoff layers sit above this module.
    from repro.core.residual import jacobian_cache_stats
    from repro.core.templates import cache_stats
    from repro.kirchhoff.forward import laplacian_cache_stats

    return [cache_stats(), jacobian_cache_stats(), laplacian_cache_stats()]


def sync_cache_gauges(registry: MetricsRegistry) -> list[Any]:
    """Mirror the cache stats into ``cache.<name>.*`` gauges.

    Every numeric field of each stats dataclass becomes one gauge, so
    cache-specific counters (the Laplacian cache's
    ``pinv_materializations``, say) flow into manifests without this
    function enumerating them.  Returns the stats list so callers can
    also tabulate it.
    """
    stats_list = all_cache_stats()
    for stats in stats_list:
        prefix = f"cache.{stats.name}"
        for field_name, value in vars(stats).items():
            if field_name == "name" or not isinstance(value, (int, float)):
                continue
            registry.gauge(f"{prefix}.{field_name}").set(value)
    return stats_list
