"""Observability: unified tracing, metrics and run manifests.

The observability spine of the library (DESIGN.md §7): every
substantive phase — formation (per strategy, per worker, per pair
block), solve (per degradation rung), detection, checkpoint I/O,
streaming — can emit **spans** and **events** onto one stream, and
every interesting count (pair blocks formed, cache hits, retries,
rung transitions, checkpoint writes, bytes committed) lands in one
**metrics registry**; a traced run ends with a **manifest** tying it
all together next to the results.

* :mod:`repro.observe.tracing` — span API, JSONL + Chrome
  ``trace_event`` export (Perfetto-loadable), span-tree
  reconstruction;
* :mod:`repro.observe.metrics` — counters / gauges / fixed-bucket
  histograms, snapshot-able to a dict;
* :mod:`repro.observe.manifest` — run manifests (config, environment,
  phase rollups, metric snapshot) with CI-gated required keys;
* :mod:`repro.observe.observer` — the :class:`Observer` bundle and
  the global no-op default (:data:`NULL_OBSERVER`), which keeps hot
  paths at < 2 % overhead when tracing is off;
* :mod:`repro.observe.catalog` — the SQLite run catalog indexing
  manifest directories for ``parma runs``
  (list/query/stats/regress/watch).

``manifest`` is imported lazily (PEP 562): it depends on
:mod:`repro.resilience.atomio`, which itself reports byte counts
through this package's global observer.
"""

from __future__ import annotations

from repro.observe.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    all_cache_stats,
    histogram_quantile,
    record_degradation,
    record_formation,
    sync_cache_gauges,
)
from repro.observe.observer import (
    NULL_OBSERVER,
    NullObserver,
    Observer,
    as_observer,
    get_observer,
    set_observer,
)
from repro.observe.tracing import (
    Span,
    SpanNode,
    Tracer,
    build_span_tree,
    chrome_trace_events,
    phase_rollup,
    read_jsonl,
    write_chrome_trace,
    write_jsonl,
)

_LAZY = {
    "ManifestError": "manifest",
    "REQUIRED_KEYS": "manifest",
    "SUPPORTED_SCHEMA_VERSIONS": "manifest",
    "build_manifest": "manifest",
    "load_manifest": "manifest",
    "phase_total_seconds": "manifest",
    "validate_manifest": "manifest",
    "write_manifest": "manifest",
    # catalog pulls in sqlite3 + manifest; keep it off the hot import path
    "Catalog": "catalog",
    "CatalogError": "catalog",
    "IngestReport": "catalog",
    "RegressReport": "catalog",
    "flatten_manifest": "catalog",
    "summarize_run": "catalog",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f"{__name__}.{module_name}")
    return getattr(module, name)


__all__ = [
    "NULL_OBSERVER",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullObserver",
    "Observer",
    "Span",
    "SpanNode",
    "Tracer",
    "all_cache_stats",
    "as_observer",
    "build_span_tree",
    "chrome_trace_events",
    "get_observer",
    "histogram_quantile",
    "phase_rollup",
    "read_jsonl",
    "record_degradation",
    "record_formation",
    "set_observer",
    "sync_cache_gauges",
    "write_chrome_trace",
    "write_jsonl",
    *sorted(_LAZY),
]
