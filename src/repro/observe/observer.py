"""The :class:`Observer` — one handle bundling tracer + metrics + manifest.

An ``Observer`` rides through the whole pipeline (engine, strategies,
streaming, MPI dispatch, resilience hooks).  Everything is optional:
the default is the module-global observer, which starts as
:data:`NULL_OBSERVER` — a no-op whose ``span()`` returns one shared
do-nothing context manager, so instrumented hot paths cost a single
attribute lookup and an empty ``with`` when observability is off
(benchmarked < 2 % in ``benchmarks/bench_observer_overhead.py``).

Enable per run::

    from repro.observe import Observer, set_observer

    obs = Observer(trace_dir="runs/today")
    set_observer(obs)           # resilience/atomio layers pick it up
    engine = ParmaEngine(observer=obs)
    engine.parametrize(meas)
    obs.finalize(config={"n": 20})   # trace.jsonl + trace.chrome.json
                                     # + manifest.json under trace_dir

Fork protocol (used by the PyMP strategies): the parent calls
``obs.ensure_spool()`` *before* the region and ``obs.merge_workers()``
after the join; each forked worker calls
``obs.worker_flush(mark, worker=r)`` in its region ``finally`` with the
``mark = obs.mark()`` taken before the fork, so only region-local
spans are spooled (never the inherited pre-fork buffer).
"""

from __future__ import annotations

import os
import tempfile
import time
import uuid
from pathlib import Path
from typing import Any

from repro.observe.metrics import MetricsRegistry, sync_cache_gauges
from repro.observe.tracing import (
    Tracer,
    phase_rollup,
    write_chrome_trace,
    write_jsonl,
)

#: Canonical artifact names written by :meth:`Observer.finalize`.
TRACE_JSONL_NAME = "trace.jsonl"
TRACE_CHROME_NAME = "trace.chrome.json"
MANIFEST_FILE_NAME = "manifest.json"


class _NullSpan:
    """Shared do-nothing context manager (singleton)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_SPAN = _NullSpan()

#: Public no-op span for hot loops that want to skip even keyword-dict
#: construction: ``with obs.span(...) if obs.enabled else NULL_SPAN:``.
NULL_SPAN = _NULL_SPAN


class NullObserver:
    """Zero-overhead stand-in used when observability is off.

    Every method is a no-op returning a neutral value; ``enabled`` is
    False so hot loops can skip even attr-dict construction with a
    single boolean check.
    """

    __slots__ = ()

    enabled = False
    metrics = None
    trace_dir = None

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **attrs: Any) -> None:
        return None

    def count(self, name: str, amount: float = 1.0) -> None:
        return None

    def gauge(self, name: str, value: float) -> None:
        return None

    def observe_hist(self, name: str, value: float) -> None:
        return None

    def record_formation(self, report: Any) -> None:
        return None

    def record_degradation(self, report: Any) -> None:
        return None

    def add_span(self, name: str, ts: float, dur: float, **kwargs: Any) -> None:
        return None

    # fork protocol ----------------------------------------------------------

    def mark(self) -> int:
        return 0

    def ensure_spool(self) -> None:
        return None

    def worker_flush(self, since: int = 0, worker: int | None = None) -> int:
        return 0

    def merge_workers(self) -> int:
        return 0

    def finalize(self, **kwargs: Any) -> dict:
        return {}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "NullObserver()"


#: The shared no-op observer (also the initial global observer).
NULL_OBSERVER = NullObserver()


class Observer:
    """Live tracing + metrics for one run.

    Parameters
    ----------
    trace_dir:
        Where :meth:`finalize` writes ``trace.jsonl``,
        ``trace.chrome.json`` and ``manifest.json`` (created on
        demand).  None keeps everything in memory — spans and metrics
        are still queryable, nothing touches disk unless a fork region
        needs a spool (which then lands in a temp directory).
    """

    enabled = True

    def __init__(self, trace_dir: str | Path | None = None) -> None:
        self.trace_dir = Path(trace_dir) if trace_dir is not None else None
        self.tracer = Tracer()
        self.metrics = MetricsRegistry()
        self.run_id = (
            time.strftime("%Y%m%dT%H%M%S")
            + f"-{os.getpid():x}-{uuid.uuid4().hex[:6]}"
        )
        self._t0_wall = time.time()
        self._t0_perf = time.perf_counter()
        self._t0_cpu = time.process_time()
        self._tmp_spool: tempfile.TemporaryDirectory | None = None

    # -- recording -----------------------------------------------------------

    def span(self, name: str, **attrs: Any):
        return self.tracer.span(name, **attrs)

    def event(self, name: str, **attrs: Any) -> None:
        self.tracer.event(name, **attrs)

    def count(self, name: str, amount: float = 1.0) -> None:
        self.metrics.counter(name).inc(amount)

    def gauge(self, name: str, value: float) -> None:
        self.metrics.gauge(name).set(value)

    def observe_hist(self, name: str, value: float) -> None:
        self.metrics.histogram(name).observe(value)

    def record_formation(self, report: Any) -> None:
        """Fold a ``FormationReport`` into the metrics registry."""
        from repro.observe.metrics import record_formation

        record_formation(self.metrics, report)

    def record_degradation(self, report: Any) -> None:
        """Fold a ``DegradationReport`` into the metrics registry."""
        from repro.observe.metrics import record_degradation

        record_degradation(self.metrics, report)

    def add_span(
        self,
        name: str,
        ts: float,
        dur: float,
        pid: int | None = None,
        tid: int = 0,
        **attrs: Any,
    ):
        """Append a synthesized span (see :meth:`Tracer.add_span`)."""
        return self.tracer.add_span(name, ts, dur, pid=pid, tid=tid, **attrs)

    @property
    def spans(self):
        return self.tracer.spans

    # -- fork protocol -------------------------------------------------------

    def mark(self) -> int:
        return self.tracer.mark()

    def ensure_spool(self) -> None:
        """Pick/create the spool directory (call before forking)."""
        if self.tracer.spool_dir is not None:
            return
        if self.trace_dir is not None:
            self.tracer.ensure_spool(self.trace_dir / "spool")
        else:
            self._tmp_spool = tempfile.TemporaryDirectory(prefix="parma-spool-")
            self.tracer.ensure_spool(self._tmp_spool.name)

    def worker_flush(self, since: int = 0, worker: int | None = None) -> int:
        return self.tracer.flush_to_spool(since=since, worker=worker)

    def merge_workers(self) -> int:
        return self.tracer.merge_spool()

    # -- finalize ------------------------------------------------------------

    def elapsed_wall(self) -> float:
        return time.perf_counter() - self._t0_perf

    def elapsed_cpu(self) -> float:
        return time.process_time() - self._t0_cpu

    def phase_rollup(self) -> dict[str, dict[str, float]]:
        return phase_rollup(self.tracer.spans)

    def finalize(
        self,
        config: dict | None = None,
        memory: dict | None = None,
        extra: dict | None = None,
    ) -> dict:
        """Write the run artifacts and return the manifest dict.

        Requires ``trace_dir``; merges any straggler spool files,
        mirrors the formation-cache stats into gauges (so the manifest
        and ``parma info`` report the same numbers from the same
        source), then writes ``trace.jsonl``, ``trace.chrome.json``
        and ``manifest.json`` atomically.
        """
        if self.trace_dir is None:
            raise ValueError("Observer was created without a trace_dir")
        # Deferred import: manifest -> atomio -> this module.
        from repro.observe.manifest import build_manifest, write_manifest

        # Snapshot the clocks before artifact writing so the reported
        # wall covers the observed run, not the export itself.
        end_perf = time.perf_counter()
        cpu_seconds = self.elapsed_cpu()
        self.merge_workers()
        sync_cache_gauges(self.metrics)
        spans = self.tracer.spans
        # Manifest wall covers the *observed* window: from the first
        # recorded span to finalize entry (ctor time when nothing was
        # traced), so phase coverage is judged against traced activity
        # rather than importer/CLI setup outside any span.
        t0 = min((s.ts for s in spans), default=self._t0_perf)
        wall_seconds = end_perf - min(t0, end_perf)
        self.trace_dir.mkdir(parents=True, exist_ok=True)
        write_jsonl(spans, self.trace_dir / TRACE_JSONL_NAME)
        write_chrome_trace(spans, self.trace_dir / TRACE_CHROME_NAME)
        manifest = build_manifest(
            run_id=self.run_id,
            config=config or {},
            phases=self.phase_rollup(),
            metrics=self.metrics.snapshot(),
            wall_seconds=wall_seconds,
            cpu_seconds=cpu_seconds,
            started_unix=self._t0_wall,
            memory=memory,
            num_spans=len(spans),
            extra=extra,
        )
        write_manifest(self.trace_dir / MANIFEST_FILE_NAME, manifest)
        if self._tmp_spool is not None:
            self._tmp_spool.cleanup()
            self._tmp_spool = None
            self.tracer.spool_dir = None
        return manifest

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Observer(run_id={self.run_id!r}, spans={len(self.tracer)}, "
            f"trace_dir={str(self.trace_dir) if self.trace_dir else None!r})"
        )


# -- the module-global observer ----------------------------------------------

_GLOBAL: NullObserver | Observer = NULL_OBSERVER


def set_observer(observer: "Observer | NullObserver | None") -> None:
    """Install the global observer (None resets to the no-op)."""
    global _GLOBAL
    _GLOBAL = observer if observer is not None else NULL_OBSERVER


def get_observer() -> "Observer | NullObserver":
    """The currently installed global observer (never None)."""
    return _GLOBAL


def as_observer(
    observer: "Observer | NullObserver | None",
) -> "Observer | NullObserver":
    """Explicit observer if given, else the global one."""
    return observer if observer is not None else _GLOBAL
