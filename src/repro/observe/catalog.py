"""The run catalog: SQLite-indexed run manifests with a query surface.

Every traced run — a ``parma solve``, a full ``parma monitor``
campaign, each request a ``parma serve`` instance executes, a
benchmark size — ends in one :mod:`repro.observe.manifest` JSON file.
The catalog turns that pile of per-run files into a fleet-level,
queryable corpus: ``parma runs ingest`` flattens each manifest into
indexed columns (kind, n, knobs, status, degradation rung, phase
timings, cache hit rates, memory quantiles), ``parma runs
list/stats/query`` answer questions like "p95 solve seconds by n" or
"every run whose ladder went past rung 0" without reading JSON by
hand, and ``parma runs regress`` gates bench-tagged runs against the
committed ``BENCH_*.json`` trajectories.

Storage design:

* **stdlib ``sqlite3`` in WAL mode** — concurrent ingesters (several
  CLI processes, the serve dispatcher threads) coexist with readers;
  a ``busy_timeout`` absorbs writer collisions.
* **versioned schema** — ``PRAGMA user_version`` plus a
  ``catalog_migrations`` audit table; opening an older catalog applies
  the missing migrations in one transaction, opening a *newer* one
  refuses loudly instead of corrupting it.
* **idempotent ingest** — each manifest's canonical JSON is hashed
  (SHA-256) into a ``UNIQUE`` column; re-ingesting a directory (or two
  processes racing on the same one) inserts each run exactly once.
* **FTS5 free-text search** over the flattened config/environment/
  extra text when the host SQLite has the extension, with a ``LIKE``
  fallback recorded in ``catalog_meta`` when it doesn't.
* **read-only escape hatch** — :meth:`Catalog.query` runs arbitrary
  SELECTs on a ``mode=ro`` connection, so even a statement that slips
  past the SELECT/WITH gate cannot write.

The flattened row shape is produced by :func:`flatten_manifest`, the
same serializer behind ``parma trace summarize --json`` — the two
surfaces agree by construction.  See docs/OBSERVABILITY.md ("Run
catalog") for the schema table and worked queries.
"""

from __future__ import annotations

import hashlib
import json
import re
import sqlite3
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator, Sequence

from repro.observe.manifest import ManifestError, load_manifest
from repro.observe.observer import MANIFEST_FILE_NAME

#: Current catalog schema version (``PRAGMA user_version``).
CATALOG_SCHEMA_VERSION = 1

#: The solver degradation ladder, mirrored from
#: :data:`repro.resilience.degrade.LADDER_RUNGS` (kept literal here so
#: the observe layer does not import upward; the cross-check lives in
#: the test suite).
_LADDER_RUNGS = ("primary", "cold-start", "regularized", "bounded")

#: Caches whose hit rates get their own indexed columns.
_RATE_CACHES = ("pair-template", "laplacian-pinv", "jacobian-structure")

#: Leading-comment-tolerant matcher for read-only statements.
_SELECT_RE = re.compile(
    r"^(?:\s|--[^\n]*\n|/\*.*?\*/)*(select|with)\b", re.IGNORECASE | re.DOTALL
)


class CatalogError(ValueError):
    """The catalog refused an operation (bad schema, bad query, ...)."""


# -- manifest flattening ------------------------------------------------------


def _metric_value(metrics: dict, name: str) -> float | None:
    entry = metrics.get(name)
    if not isinstance(entry, dict) or "value" not in entry:
        return None
    return float(entry["value"])


def _hit_rate(metrics: dict, cache: str) -> float | None:
    hits = _metric_value(metrics, f"cache.{cache}.hits")
    misses = _metric_value(metrics, f"cache.{cache}.misses")
    if hits is None and misses is None:
        return None
    total = (hits or 0.0) + (misses or 0.0)
    return (hits or 0.0) / total if total > 0 else None


def _phase_seconds(phases: dict, name: str) -> float | None:
    entry = phases.get(name)
    if not isinstance(entry, dict):
        return None
    return float(entry.get("total_seconds", 0.0))


def flatten_manifest(manifest: dict, source_path: str | None = None) -> dict:
    """One manifest -> one flat, indexable row (pure; no I/O).

    This is the single serializer shared by :meth:`Catalog.ingest` and
    ``parma trace summarize --json``: the keys here are exactly the
    ``runs`` table columns (minus the catalog-assigned ``id``,
    ``content_hash`` and ``ingested_unix``).

    Derivations worth knowing:

    * ``kind`` is the manifest config's ``command``, except that a
      per-request serve manifest (``command == "serve"`` with a
      ``request_id``) becomes ``"serve-request"`` so fleet queries can
      separate the service's own manifest from its requests';
    * ``status`` prefers an explicit ``config.status`` / ``extra.status``
      stamp, falling back to ``exhausted`` when the degradation ladder
      ran dry and ``ok`` otherwise;
    * ``degradation_rung`` is the deepest ladder rung whose
      ``degrade.rung.<name>`` counter fired (0 = primary, i.e. never
      degraded);
    * ``bench`` is the ``extra.bench`` tag benchmarks (and
      ``--bench-tag`` runs) stamp, used by ``parma runs regress``.
    """
    config = manifest.get("config", {}) or {}
    metrics = manifest.get("metrics", {}) or {}
    phases = manifest.get("phases", {}) or {}
    extra = manifest.get("extra", {}) or {}
    memory = manifest.get("memory", {}) or {}
    environment = manifest.get("environment", {}) or {}

    kind = str(config.get("command", "unknown"))
    if kind == "serve" and "request_id" in config:
        kind = "serve-request"

    rung_index = 0
    rung_name = _LADDER_RUNGS[0]
    for index, rung in enumerate(_LADDER_RUNGS):
        if (_metric_value(metrics, f"degrade.rung.{rung}") or 0.0) > 0:
            rung_index, rung_name = index, rung

    status = str(config.get("status") or extra.get("status") or "")
    if not status:
        exhausted = (_metric_value(metrics, "degrade.exhausted") or 0.0) > 0
        status = "exhausted" if exhausted else "ok"

    def _int(value: Any) -> int | None:
        try:
            return int(value)
        except (TypeError, ValueError):
            return None

    def _float(value: Any) -> float | None:
        try:
            return float(value)
        except (TypeError, ValueError):
            return None

    return {
        "run_id": str(manifest["run_id"]),
        "schema_version": _int(manifest.get("schema_version")),
        "kind": kind,
        "status": status,
        "bench": str(extra.get("bench", "") or ""),
        "n": _int(config.get("n")),
        "hour": _float(config.get("hour")),
        "strategy": config.get("strategy"),
        "workers": _int(config.get("workers")),
        "solver": config.get("solver"),
        "backend": config.get("backend"),
        "formation": config.get("formation"),
        "validate": config.get("validate"),
        "timepoints": _int(config.get("timepoints")),
        "batch_size": _int(config.get("batch_size")),
        "cache_warm": (
            None if "cache_warm" not in config else int(bool(config["cache_warm"]))
        ),
        "queue_seconds": _float(config.get("queue_seconds")),
        "degradation_rung": rung_index,
        "rung_name": rung_name,
        "started_unix": _float(manifest.get("started_unix")),
        "wall_seconds": _float(manifest.get("wall_seconds")),
        "cpu_seconds": _float(manifest.get("cpu_seconds")),
        "solve_seconds": _phase_seconds(phases, "solve"),
        "formation_seconds": _phase_seconds(phases, "formation"),
        "detect_seconds": _phase_seconds(phases, "detect"),
        "num_spans": _int(manifest.get("num_spans")),
        "template_hit_rate": _hit_rate(metrics, "pair-template"),
        "laplacian_hit_rate": _hit_rate(metrics, "laplacian-pinv"),
        "jacobian_hit_rate": _hit_rate(metrics, "jacobian-structure"),
        "mem_peak_bytes": _float(memory.get("peak")),
        "mem_p50_bytes": _float(memory.get("p50")),
        "mem_p90_bytes": _float(memory.get("p90")),
        "git": environment.get("git"),
        "host": environment.get("host"),
        "source_path": source_path,
        "config_json": json.dumps(config, sort_keys=True),
        "extra_json": json.dumps(extra, sort_keys=True) if extra else None,
    }


def summarize_run(manifest: dict, source_path: str | None = None) -> dict:
    """The machine-readable run digest behind ``trace summarize --json``.

    ``run`` is the :func:`flatten_manifest` row (what the catalog
    indexes), ``phases`` the manifest's per-phase rollup verbatim.
    """
    return {
        "run": flatten_manifest(manifest, source_path=source_path),
        "phases": manifest.get("phases", {}),
    }


def manifest_content_hash(manifest: dict) -> str:
    """SHA-256 of the canonical manifest JSON (the ingest dedup key)."""
    canonical = json.dumps(
        manifest, sort_keys=True, separators=(",", ":"), default=str
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _fts_text(manifest: dict) -> str:
    """The free-text body indexed by FTS: config + env + extra tokens."""
    parts: list[str] = [str(manifest.get("run_id", ""))]
    for section in ("config", "environment", "extra"):
        payload = manifest.get(section)
        if not isinstance(payload, dict):
            continue
        for key in sorted(payload):
            parts.append(f"{key}={payload[key]}")
    return " ".join(parts)


# -- schema / migrations ------------------------------------------------------

_RUNS_DDL = """
CREATE TABLE runs (
    id INTEGER PRIMARY KEY,
    content_hash TEXT NOT NULL UNIQUE,
    run_id TEXT NOT NULL,
    schema_version INTEGER,
    kind TEXT NOT NULL,
    status TEXT NOT NULL,
    bench TEXT NOT NULL DEFAULT '',
    n INTEGER,
    hour REAL,
    strategy TEXT,
    workers INTEGER,
    solver TEXT,
    backend TEXT,
    formation TEXT,
    validate TEXT,
    timepoints INTEGER,
    batch_size INTEGER,
    cache_warm INTEGER,
    queue_seconds REAL,
    degradation_rung INTEGER NOT NULL DEFAULT 0,
    rung_name TEXT,
    started_unix REAL,
    ingested_unix REAL NOT NULL,
    wall_seconds REAL,
    cpu_seconds REAL,
    solve_seconds REAL,
    formation_seconds REAL,
    detect_seconds REAL,
    num_spans INTEGER,
    template_hit_rate REAL,
    laplacian_hit_rate REAL,
    jacobian_hit_rate REAL,
    mem_peak_bytes REAL,
    mem_p50_bytes REAL,
    mem_p90_bytes REAL,
    git TEXT,
    host TEXT,
    source_path TEXT,
    config_json TEXT NOT NULL,
    extra_json TEXT
)
"""

#: Ordered DDL per schema version.  A new version appends an entry;
#: :func:`_migrate` replays the missing tail on older catalogs.
_MIGRATIONS: dict[int, tuple[str, ...]] = {
    1: (
        _RUNS_DDL,
        "CREATE INDEX runs_kind ON runs (kind)",
        "CREATE INDEX runs_n ON runs (n)",
        "CREATE INDEX runs_started ON runs (started_unix)",
        "CREATE INDEX runs_bench ON runs (bench) WHERE bench != ''",
        "CREATE INDEX runs_rung ON runs (degradation_rung)",
        """
        CREATE TABLE phases (
            run_fk INTEGER NOT NULL REFERENCES runs(id) ON DELETE CASCADE,
            name TEXT NOT NULL,
            count INTEGER NOT NULL,
            total_seconds REAL NOT NULL,
            self_seconds REAL NOT NULL
        )
        """,
        "CREATE INDEX phases_run ON phases (run_fk)",
        """
        CREATE TABLE metrics (
            run_fk INTEGER NOT NULL REFERENCES runs(id) ON DELETE CASCADE,
            name TEXT NOT NULL,
            type TEXT NOT NULL,
            value REAL,
            sum REAL,
            count INTEGER
        )
        """,
        "CREATE INDEX metrics_run ON metrics (run_fk)",
        "CREATE INDEX metrics_name ON metrics (name)",
        """
        CREATE TABLE catalog_meta (
            key TEXT PRIMARY KEY,
            value TEXT NOT NULL
        )
        """,
        """
        CREATE TABLE catalog_migrations (
            version INTEGER PRIMARY KEY,
            applied_unix REAL NOT NULL
        )
        """,
    ),
}

#: Attempted per catalog; failure (SQLite built without FTS5) degrades
#: to LIKE search and is recorded in ``catalog_meta``.
_FTS_DDL = "CREATE VIRTUAL TABLE runs_fts USING fts5(body)"


@dataclass
class IngestReport:
    """What one :meth:`Catalog.ingest` call did."""

    scanned: int = 0
    ingested: int = 0
    duplicates: int = 0
    errors: list[tuple[str, str]] = field(default_factory=list)

    def summary(self) -> str:
        line = (
            f"scanned {self.scanned} manifest(s): {self.ingested} ingested, "
            f"{self.duplicates} already cataloged"
        )
        if self.errors:
            line += f", {len(self.errors)} rejected"
        return line


@dataclass(frozen=True)
class RegressCheck:
    """One bench-tagged catalog run judged against a trajectory point."""

    bench: str
    n: int
    run_id: str
    observed_seconds: float
    baseline_seconds: float
    threshold: float

    @property
    def ratio(self) -> float:
        return (
            self.observed_seconds / self.baseline_seconds
            if self.baseline_seconds > 0
            else float("inf")
        )

    @property
    def ok(self) -> bool:
        return self.ratio <= self.threshold


@dataclass
class RegressReport:
    """All regression checks for one ``parma runs regress`` invocation."""

    threshold: float
    checks: list[RegressCheck] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def failures(self) -> list[RegressCheck]:
        return [check for check in self.checks if not check.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    def render(self) -> str:
        lines = [
            f"== regression gate (threshold {self.threshold:g}x) ==",
        ]
        for check in self.checks:
            verdict = "ok  " if check.ok else "FAIL"
            lines.append(
                f"  [{verdict}] {check.bench} n={check.n}: "
                f"{check.observed_seconds:.4g}s vs baseline "
                f"{check.baseline_seconds:.4g}s ({check.ratio:.2f}x) "
                f"[run {check.run_id}]"
            )
        for note in self.notes:
            lines.append(f"  note: {note}")
        if not self.checks:
            lines.append("  no bench-tagged runs matched any trajectory")
        return "\n".join(lines)


def load_bench_trajectory(path: str | Path) -> tuple[str, str, dict[int, float]]:
    """Read a committed ``BENCH_*.json`` into a regression baseline.

    Returns ``(bench_tag, phase_column, {n: baseline_seconds})``:
    ``BENCH_solver.json`` gates the ``solve_seconds`` of runs tagged
    ``bench=solver`` against ``fast_cold_seconds`` (cold is the
    generous bound — a fresh CLI process never has warm caches);
    ``BENCH_formation.json`` gates ``formation_seconds`` of
    ``bench=formation`` runs against ``cached_seconds``;
    ``BENCH_scaling.json`` gates ``formation_seconds`` of
    ``bench=scaling`` runs (the ``parma scale`` elastic campaign,
    quiet + churn) against ``elastic_formation_seconds``;
    ``BENCH_serve.json`` gates ``solve_seconds`` of ``bench=serve``
    runs (the ``benchmarks/bench_serve.py`` load generator) against
    the *measured* single-host ``warm_p95_seconds`` — the SLO the
    fleet front promises per request once caches are warm.
    """
    path = Path(path)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise CatalogError(f"unreadable benchmark trajectory {path}: {exc}")
    benchmark = data.get("benchmark", "")
    if benchmark == "solver_fastpath":
        tag, column, key = "solver", "solve_seconds", "fast_cold_seconds"
    elif benchmark == "formation_cache":
        tag, column, key = "formation", "formation_seconds", "cached_seconds"
    elif benchmark == "elastic_scaling":
        tag, column, key = "scaling", "formation_seconds", "elastic_formation_seconds"
    elif benchmark == "serve_slo":
        tag, column, key = "serve", "solve_seconds", "warm_p95_seconds"
    else:
        raise CatalogError(
            f"{path}: unknown benchmark kind {benchmark!r} (expected "
            "solver_fastpath, formation_cache, elastic_scaling or "
            "serve_slo)"
        )
    baselines: dict[int, float] = {}
    for size in data.get("sizes", []):
        if key in size and size[key] is not None:
            baselines[int(size["n"])] = float(size[key])
    if not baselines:
        raise CatalogError(f"{path}: trajectory has no usable sizes")
    return tag, column, baselines


def parse_since(text: str, *, now: float | None = None) -> float:
    """``--since`` argument -> unix seconds.

    Accepts a relative age (``90s``, ``30m``, ``12h``, ``7d``, ``2w``)
    or an ISO date/datetime (``2026-08-01``, ``2026-08-01T12:00``).
    """
    text = text.strip()
    match = re.fullmatch(r"(\d+(?:\.\d+)?)([smhdw])", text)
    if match:
        scale = {"s": 1, "m": 60, "h": 3600, "d": 86400, "w": 604800}
        age = float(match.group(1)) * scale[match.group(2)]
        return (time.time() if now is None else now) - age
    from datetime import datetime

    try:
        return datetime.fromisoformat(text).timestamp()
    except ValueError:
        raise CatalogError(
            f"cannot parse --since {text!r}: use a relative age like "
            "'12h'/'7d' or an ISO date like '2026-08-01'"
        ) from None


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile of an already-sorted sequence."""
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return float(sorted_values[0])
    pos = q * (len(sorted_values) - 1)
    low = int(pos)
    high = min(low + 1, len(sorted_values) - 1)
    frac = pos - low
    return float(sorted_values[low] * (1 - frac) + sorted_values[high] * frac)


# -- the catalog --------------------------------------------------------------


class Catalog:
    """One SQLite run-catalog database.

    Thread-safe for ingest (a single internal connection guarded by a
    lock — the serve dispatchers share one instance), multi-process
    safe through WAL + the content-hash unique constraint.  Use as a
    context manager or call :meth:`close`.

    ``readonly=True`` opens with ``mode=ro`` and skips migrations —
    useful for querying a catalog owned by another user.
    """

    def __init__(self, path: str | Path, *, readonly: bool = False) -> None:
        self.path = Path(path)
        self.readonly = readonly
        self._lock = threading.Lock()
        if readonly:
            if not self.path.exists():
                raise CatalogError(f"no run catalog at {self.path}")
            self._conn = self._connect_ro()
            self._check_version(self._conn)
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._conn = sqlite3.connect(
                str(self.path),
                timeout=30.0,
                isolation_level=None,  # explicit BEGIN/COMMIT below
                check_same_thread=False,
            )
            self._conn.row_factory = sqlite3.Row
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA busy_timeout=30000")
            self._conn.execute("PRAGMA foreign_keys=ON")
            self._migrate()
        self._fts = self._probe_fts()

    # -- connections / schema ------------------------------------------------

    def _connect_ro(self) -> sqlite3.Connection:
        conn = sqlite3.connect(
            f"file:{self.path}?mode=ro",
            uri=True,
            timeout=30.0,
            check_same_thread=False,
        )
        conn.row_factory = sqlite3.Row
        conn.execute("PRAGMA busy_timeout=30000")
        return conn

    def _check_version(self, conn: sqlite3.Connection) -> None:
        version = conn.execute("PRAGMA user_version").fetchone()[0]
        if version > CATALOG_SCHEMA_VERSION:
            raise CatalogError(
                f"catalog {self.path} has schema version {version}, newer "
                f"than this build supports ({CATALOG_SCHEMA_VERSION}); "
                "upgrade parma to read it"
            )
        if version == 0 and self.readonly:
            raise CatalogError(f"{self.path} is not an initialized run catalog")

    def _migrate(self) -> None:
        """Apply any missing schema versions inside one write lock."""
        self._check_version(self._conn)
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            # Re-read under the write lock: another process may have
            # migrated between the unlocked check and our BEGIN.
            version = self._conn.execute("PRAGMA user_version").fetchone()[0]
            for target in range(version + 1, CATALOG_SCHEMA_VERSION + 1):
                for statement in _MIGRATIONS[target]:
                    self._conn.execute(statement)
                self._conn.execute(
                    "INSERT INTO catalog_migrations (version, applied_unix) "
                    "VALUES (?, ?)",
                    (target, time.time()),
                )
            if version < CATALOG_SCHEMA_VERSION:
                self._conn.execute(
                    f"PRAGMA user_version = {CATALOG_SCHEMA_VERSION}"
                )
                try:
                    self._conn.execute(_FTS_DDL)
                    fts = "1"
                except sqlite3.OperationalError:
                    fts = "0"  # SQLite built without FTS5: LIKE fallback
                self._conn.execute(
                    "INSERT OR REPLACE INTO catalog_meta (key, value) "
                    "VALUES ('fts', ?)",
                    (fts,),
                )
            self._conn.execute("COMMIT")
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise

    def _probe_fts(self) -> bool:
        row = self._conn.execute(
            "SELECT value FROM catalog_meta WHERE key = 'fts'"
        ).fetchone()
        return bool(row and row[0] == "1")

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "Catalog":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def schema_version(self) -> int:
        return int(self._conn.execute("PRAGMA user_version").fetchone()[0])

    # -- ingest --------------------------------------------------------------

    def _iter_manifest_files(
        self, paths: Iterable[str | Path]
    ) -> Iterator[Path]:
        for path in paths:
            path = Path(path)
            if path.is_dir():
                yield from sorted(path.rglob(MANIFEST_FILE_NAME))
            elif path.name == MANIFEST_FILE_NAME or path.suffix == ".json":
                yield path
            else:
                yield path / MANIFEST_FILE_NAME

    def ingest(self, paths: Iterable[str | Path]) -> IngestReport:
        """Index every manifest under ``paths`` (idempotent).

        Directories are scanned recursively for ``manifest.json``
        files; explicit file paths are taken as-is.  A manifest whose
        content hash is already cataloged counts as a duplicate and
        changes nothing; an invalid manifest lands in
        ``report.errors`` without aborting the rest of the scan.
        """
        if self.readonly:
            raise CatalogError("catalog opened read-only; cannot ingest")
        report = IngestReport()
        for file_path in self._iter_manifest_files(paths):
            report.scanned += 1
            try:
                manifest = load_manifest(file_path)
            except ManifestError as exc:
                report.errors.append((str(file_path), str(exc)))
                continue
            if self.ingest_manifest(manifest, source_path=str(file_path)):
                report.ingested += 1
            else:
                report.duplicates += 1
        return report

    def ingest_manifest(
        self, manifest: dict, source_path: str | None = None
    ) -> bool:
        """Index one already-loaded manifest; False when deduplicated."""
        if self.readonly:
            raise CatalogError("catalog opened read-only; cannot ingest")
        content_hash = manifest_content_hash(manifest)
        row = flatten_manifest(manifest, source_path=source_path)
        row["content_hash"] = content_hash
        row["ingested_unix"] = time.time()
        columns = sorted(row)
        placeholders = ", ".join("?" for _ in columns)
        column_sql = ", ".join(f'"{c}"' for c in columns)
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                cursor = self._conn.execute(
                    f"INSERT OR IGNORE INTO runs ({column_sql}) "
                    f"VALUES ({placeholders})",
                    [row[c] for c in columns],
                )
                if cursor.rowcount == 0:
                    self._conn.execute("COMMIT")
                    return False
                run_fk = cursor.lastrowid
                self._conn.executemany(
                    "INSERT INTO phases (run_fk, name, count, total_seconds, "
                    "self_seconds) VALUES (?, ?, ?, ?, ?)",
                    [
                        (
                            run_fk,
                            name,
                            int(entry.get("count", 0)),
                            float(entry.get("total_seconds", 0.0)),
                            float(entry.get("self_seconds", 0.0)),
                        )
                        for name, entry in manifest.get("phases", {}).items()
                    ],
                )
                metric_rows = []
                for name, entry in manifest.get("metrics", {}).items():
                    if not isinstance(entry, dict):
                        continue
                    metric_rows.append(
                        (
                            run_fk,
                            name,
                            str(entry.get("type", "?")),
                            (
                                float(entry["value"])
                                if "value" in entry
                                else None
                            ),
                            float(entry.get("sum", 0.0)) if "sum" in entry else None,
                            int(entry.get("count", 0)) if "count" in entry else None,
                        )
                    )
                self._conn.executemany(
                    "INSERT INTO metrics (run_fk, name, type, value, sum, "
                    "count) VALUES (?, ?, ?, ?, ?, ?)",
                    metric_rows,
                )
                if self._fts:
                    self._conn.execute(
                        "INSERT INTO runs_fts (rowid, body) VALUES (?, ?)",
                        (run_fk, _fts_text(manifest)),
                    )
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
        return True

    # -- queries -------------------------------------------------------------

    def count(self) -> int:
        return int(self._conn.execute("SELECT COUNT(*) FROM runs").fetchone()[0])

    def _filters(
        self,
        *,
        kind: str | None = None,
        status: str | None = None,
        bench: str | None = None,
        since: float | None = None,
        min_rung: int | None = None,
        search: str | None = None,
        where: str | None = None,
    ) -> tuple[str, list[Any]]:
        clauses: list[str] = []
        params: list[Any] = []
        if kind is not None:
            clauses.append("kind = ?")
            params.append(kind)
        if status is not None:
            clauses.append("status = ?")
            params.append(status)
        if bench is not None:
            clauses.append("bench = ?")
            params.append(bench)
        if since is not None:
            clauses.append("started_unix >= ?")
            params.append(float(since))
        if min_rung is not None:
            clauses.append("degradation_rung >= ?")
            params.append(int(min_rung))
        if search is not None:
            if self._fts:
                clauses.append(
                    "id IN (SELECT rowid FROM runs_fts WHERE runs_fts MATCH ?)"
                )
                params.append(search)
            else:
                clauses.append(
                    "(config_json LIKE ? OR IFNULL(extra_json, '') LIKE ?)"
                )
                params.extend([f"%{search}%", f"%{search}%"])
        if where is not None:
            clauses.append(f"({where})")
        sql = (" WHERE " + " AND ".join(clauses)) if clauses else ""
        return sql, params

    def list_runs(self, *, limit: int | None = 50, **filters: Any) -> list[sqlite3.Row]:
        """Filtered run rows, newest first (see :meth:`_filters` knobs)."""
        where_sql, params = self._filters(**filters)
        sql = (
            "SELECT * FROM runs" + where_sql
            + " ORDER BY started_unix DESC, id DESC"
        )
        if limit is not None:
            sql += " LIMIT ?"
            params.append(int(limit))
        try:
            return list(self._conn.execute(sql, params))
        except sqlite3.OperationalError as exc:
            raise CatalogError(f"bad filter: {exc}") from exc

    def get_run(self, run_id: str) -> tuple[sqlite3.Row, list, list]:
        """One run (matched by full or prefix run_id) + phases + metrics."""
        rows = list(
            self._conn.execute(
                "SELECT * FROM runs WHERE run_id = ? OR run_id LIKE ? "
                "ORDER BY started_unix DESC",
                (run_id, f"{run_id}%"),
            )
        )
        if not rows:
            raise CatalogError(f"no cataloged run matches {run_id!r}")
        if len(rows) > 1 and rows[0]["run_id"] != run_id:
            matches = ", ".join(sorted(r["run_id"] for r in rows)[:5])
            raise CatalogError(
                f"run id prefix {run_id!r} is ambiguous ({matches}, ...)"
            )
        run = rows[0]
        phases = list(
            self._conn.execute(
                "SELECT name, count, total_seconds, self_seconds FROM phases "
                "WHERE run_fk = ? ORDER BY self_seconds DESC",
                (run["id"],),
            )
        )
        metrics = list(
            self._conn.execute(
                "SELECT name, type, value, sum, count FROM metrics "
                "WHERE run_fk = ? ORDER BY name",
                (run["id"],),
            )
        )
        return run, phases, metrics

    def query(
        self, sql: str, params: Sequence[Any] = ()
    ) -> tuple[list[str], list[tuple]]:
        """Read-only SQL escape hatch: SELECT/WITH statements only.

        The statement gate is cosmetic UX; the real guarantee is the
        ``mode=ro`` connection the statement runs on — even a writing
        CTE that slips past the regex cannot modify the catalog.
        """
        if not _SELECT_RE.match(sql or ""):
            raise CatalogError(
                "only SELECT (or WITH ... SELECT) statements are allowed; "
                "use `parma runs ingest` to write"
            )
        conn = self._connect_ro()
        try:
            try:
                cursor = conn.execute(sql, tuple(params))
            except sqlite3.OperationalError as exc:
                raise CatalogError(f"query failed: {exc}") from exc
            columns = (
                [d[0] for d in cursor.description] if cursor.description else []
            )
            return columns, [tuple(row) for row in cursor.fetchall()]
        finally:
            conn.close()

    def stats(
        self,
        *,
        group_by: Sequence[str] = ("n", "backend"),
        metric: str = "solve_seconds",
        **filters: Any,
    ) -> list[dict]:
        """Percentile aggregates of one runs column, grouped.

        Returns one dict per group: the group keys plus ``count``,
        ``p50``, ``p95``, ``mean`` and ``max`` of ``metric`` (rows
        where the column is NULL are excluded).  ``metric`` and
        ``group_by`` must name ``runs`` columns.
        """
        columns = {
            row[1] for row in self._conn.execute("PRAGMA table_info(runs)")
        }
        for name in (*group_by, metric):
            if name not in columns:
                raise CatalogError(
                    f"{name!r} is not a runs column (see PRAGMA "
                    "table_info(runs), or `parma runs query`)"
                )
        where_sql, params = self._filters(**filters)
        null_guard = f'"{metric}" IS NOT NULL'
        where_sql = (
            f"{where_sql} AND {null_guard}" if where_sql else f" WHERE {null_guard}"
        )
        group_sql = ", ".join(f'"{g}"' for g in group_by) or "1"
        rows = self._conn.execute(
            f'SELECT {group_sql}, "{metric}" FROM runs{where_sql}',
            params,
        ).fetchall()
        groups: dict[tuple, list[float]] = {}
        for row in rows:
            key = tuple(row[: len(group_by)] if group_by else ())
            groups.setdefault(key, []).append(float(row[-1]))
        out = []
        for key in sorted(groups, key=lambda k: tuple(str(v) for v in k)):
            values = sorted(groups[key])
            entry = dict(zip(group_by, key))
            entry.update(
                count=len(values),
                p50=_percentile(values, 0.50),
                p95=_percentile(values, 0.95),
                mean=sum(values) / len(values),
                max=values[-1],
            )
            out.append(entry)
        return out

    def regress(
        self,
        bench_paths: Iterable[str | Path],
        *,
        threshold: float = 1.5,
    ) -> RegressReport:
        """Gate the latest bench-tagged runs against trajectories.

        For every ``(bench tag, n)`` a trajectory defines, the most
        recent cataloged run carrying that tag at that size is checked:
        its phase seconds must stay within ``threshold`` times the
        committed baseline.  Sizes with no cataloged run are noted, not
        failed — the gate judges the runs you have.
        """
        report = RegressReport(threshold=float(threshold))
        for path in bench_paths:
            tag, column, baselines = load_bench_trajectory(path)
            for n, baseline in sorted(baselines.items()):
                row = self._conn.execute(
                    f'SELECT run_id, "{column}" AS observed FROM runs '
                    f'WHERE bench = ? AND n = ? AND "{column}" IS NOT NULL '
                    "ORDER BY started_unix DESC, id DESC LIMIT 1",
                    (tag, n),
                ).fetchone()
                if row is None:
                    report.notes.append(
                        f"{tag} n={n}: no bench-tagged run cataloged"
                    )
                    continue
                report.checks.append(
                    RegressCheck(
                        bench=tag,
                        n=n,
                        run_id=row["run_id"],
                        observed_seconds=float(row["observed"]),
                        baseline_seconds=baseline,
                        threshold=float(threshold),
                    )
                )
        return report
