"""Bit-packed linear algebra over GF(2).

Chain groups of a simplicial complex with mod-2 coefficients are vector
spaces over GF(2); homology ranks (Betti numbers) reduce to ranks and
null spaces of boundary matrices.  For the MEA complexes in this
library those matrices reach tens of thousands of rows, so a dense
uint8 representation with per-bit Python loops would dominate the run
time.  Instead a matrix is stored bit-packed: row *i* occupies
``ceil(ncols / 64)`` little-endian ``uint64`` words, and every
elimination step is a whole-row XOR executed by NumPy, i.e. 64 matrix
entries per machine instruction — the "vectorise the inner loop" idiom
from the HPC guides.

The public surface is :class:`BitMatrix` plus module-level helpers
(:func:`rank`, :func:`nullspace`, :func:`row_reduce`, :func:`matmul`,
:func:`solve`) that accept either :class:`BitMatrix` or 0/1 arrays.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

_WORD = 64


class BitMatrix:
    """A dense matrix over GF(2), rows packed into ``uint64`` words.

    Construct with :meth:`zeros`, :meth:`identity`, :meth:`from_dense`,
    or :meth:`from_rows`.  The packed buffer is exposed as ``.words``
    (shape ``(nrows, nwords)``); mutating helpers operate in place and
    return ``self`` for chaining.
    """

    __slots__ = ("nrows", "ncols", "words")

    def __init__(self, nrows: int, ncols: int, words: np.ndarray) -> None:
        self.nrows = int(nrows)
        self.ncols = int(ncols)
        self.words = words

    # -- constructors -------------------------------------------------

    @classmethod
    def zeros(cls, nrows: int, ncols: int) -> "BitMatrix":
        if nrows < 0 or ncols < 0:
            raise ValueError("matrix dimensions must be non-negative")
        nwords = max(1, -(-ncols // _WORD))
        return cls(nrows, ncols, np.zeros((nrows, nwords), dtype=np.uint64))

    @classmethod
    def identity(cls, n: int) -> "BitMatrix":
        out = cls.zeros(n, n)
        for i in range(n):
            out.set(i, i, 1)
        return out

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "BitMatrix":
        """Pack a 0/1 (or any-integer, reduced mod 2) 2-D array."""
        dense = np.atleast_2d(np.asarray(dense))
        if dense.ndim != 2:
            raise ValueError("from_dense expects a 2-D array")
        bits = (dense.astype(np.uint64) & np.uint64(1)).astype(np.uint8)
        nrows, ncols = bits.shape
        out = cls.zeros(nrows, ncols)
        if ncols == 0:
            return out
        # Pad columns to a word multiple, then packbits per 64-column
        # group.  np.packbits is MSB-first per byte; we want bit k of
        # the word to be column (w*64 + k), so reverse within bytes via
        # bitorder="little".
        pad = (-ncols) % _WORD
        if pad:
            bits = np.concatenate(
                [bits, np.zeros((nrows, pad), dtype=np.uint8)], axis=1
            )
        packed = np.ascontiguousarray(np.packbits(bits, axis=1, bitorder="little"))
        out.words[:] = packed.view(np.uint64)
        return out

    @classmethod
    def from_rows(cls, rows: Iterable[Sequence[int]], ncols: int) -> "BitMatrix":
        """Build from an iterable of per-row column-index lists."""
        rows = list(rows)
        out = cls.zeros(len(rows), ncols)
        for i, cols in enumerate(rows):
            for j in cols:
                out.set(i, j, 1)
        return out

    # -- element access ------------------------------------------------

    def get(self, i: int, j: int) -> int:
        self._check(i, j)
        w, b = divmod(j, _WORD)
        return int((self.words[i, w] >> np.uint64(b)) & np.uint64(1))

    def set(self, i: int, j: int, value: int) -> None:
        self._check(i, j)
        w, b = divmod(j, _WORD)
        mask = np.uint64(1) << np.uint64(b)
        if value & 1:
            self.words[i, w] |= mask
        else:
            self.words[i, w] &= ~mask

    def _check(self, i: int, j: int) -> None:
        if not (0 <= i < self.nrows and 0 <= j < self.ncols):
            raise IndexError(
                f"index ({i}, {j}) out of bounds for {self.nrows}x{self.ncols}"
            )

    # -- conversions ----------------------------------------------------

    def to_dense(self) -> np.ndarray:
        """Return the matrix as a ``uint8`` 0/1 array."""
        if self.ncols == 0:
            return np.zeros((self.nrows, 0), dtype=np.uint8)
        bytes_view = np.ascontiguousarray(self.words).view(np.uint8)
        bits = np.unpackbits(bytes_view, axis=1, bitorder="little")
        return bits[:, : self.ncols]

    def copy(self) -> "BitMatrix":
        return BitMatrix(self.nrows, self.ncols, self.words.copy())

    def row_nonzero(self, i: int) -> np.ndarray:
        """Column indices of the 1-bits in row ``i``."""
        return np.flatnonzero(self.to_dense_row(i))

    def to_dense_row(self, i: int) -> np.ndarray:
        row = np.unpackbits(
            np.ascontiguousarray(self.words[i : i + 1]).view(np.uint8),
            bitorder="little",
        )
        return row[: self.ncols]

    # -- algebra ---------------------------------------------------------

    def xor_row_into(self, src: int, dst: int) -> None:
        """``row[dst] ^= row[src]`` (in place)."""
        self.words[dst] ^= self.words[src]

    def is_zero_row(self, i: int) -> bool:
        return not self.words[i].any()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitMatrix):
            return NotImplemented
        return (
            self.nrows == other.nrows
            and self.ncols == other.ncols
            and bool(np.array_equal(self.words, other.words))
        )

    def __hash__(self) -> int:  # pragma: no cover - mutable; discourage
        raise TypeError("BitMatrix is mutable and unhashable")

    def __repr__(self) -> str:
        return f"BitMatrix({self.nrows}x{self.ncols})"


def _coerce(m: "BitMatrix | np.ndarray") -> BitMatrix:
    if isinstance(m, BitMatrix):
        return m
    return BitMatrix.from_dense(np.asarray(m))


def row_reduce(m: "BitMatrix | np.ndarray") -> tuple[BitMatrix, list[int]]:
    """Reduced row-echelon form over GF(2).

    Returns ``(rref, pivot_columns)``.  The elimination clears each
    pivot column in *all* other rows with a single vectorised XOR over
    the packed words (boolean mask indexing), so cost is
    ``O(rank * nrows * nwords)`` word operations.
    """
    work = _coerce(m).copy()
    nrows, ncols = work.nrows, work.ncols
    pivots: list[int] = []
    if nrows == 0 or ncols == 0:
        return work, pivots
    rank_so_far = 0
    words = work.words
    for col in range(ncols):
        if rank_so_far == nrows:
            break
        w, b = divmod(col, _WORD)
        colbits = (words[:, w] >> np.uint64(b)) & np.uint64(1)
        candidates = np.flatnonzero(colbits[rank_so_far:])
        if candidates.size == 0:
            continue
        pivot_row = rank_so_far + int(candidates[0])
        if pivot_row != rank_so_far:
            words[[rank_so_far, pivot_row]] = words[[pivot_row, rank_so_far]]
            colbits = (words[:, w] >> np.uint64(b)) & np.uint64(1)
        # Clear this column everywhere except the pivot row, in one shot.
        mask = colbits.astype(bool)
        mask[rank_so_far] = False
        if mask.any():
            words[mask] ^= words[rank_so_far]
        pivots.append(col)
        rank_so_far += 1
    return work, pivots


def rank(m: "BitMatrix | np.ndarray") -> int:
    """Rank of ``m`` over GF(2)."""
    _, pivots = row_reduce(m)
    return len(pivots)


def nullspace(m: "BitMatrix | np.ndarray") -> BitMatrix:
    """Basis of the right null space (kernel) of ``m`` over GF(2).

    Returns a :class:`BitMatrix` whose *rows* are basis vectors of
    ``{x : m @ x = 0}``; the row count is ``ncols - rank(m)``.
    """
    mat = _coerce(m)
    rref, pivots = row_reduce(mat)
    ncols = mat.ncols
    pivot_set = set(pivots)
    free_cols = [c for c in range(ncols) if c not in pivot_set]
    basis = BitMatrix.zeros(len(free_cols), ncols)
    dense = rref.to_dense()
    for k, free in enumerate(free_cols):
        basis.set(k, free, 1)
        # Each pivot row r has its pivot at pivots[r]; if that row has
        # a 1 in the free column, the pivot variable equals the free
        # variable (mod 2).
        for r, pcol in enumerate(pivots):
            if dense[r, free]:
                basis.set(k, pcol, 1)
    return basis


def matmul(a: "BitMatrix | np.ndarray", b: "BitMatrix | np.ndarray") -> BitMatrix:
    """Matrix product over GF(2).

    Implemented as: for each 1-bit ``a[i, k]``, XOR row ``k`` of ``b``
    into row ``i`` of the result — vectorised with one fancy-indexed
    XOR-reduce per output row.
    """
    am, bm = _coerce(a), _coerce(b)
    if am.ncols != bm.nrows:
        raise ValueError(
            f"shape mismatch: {am.nrows}x{am.ncols} @ {bm.nrows}x{bm.ncols}"
        )
    out = BitMatrix.zeros(am.nrows, bm.ncols)
    a_dense = am.to_dense()
    for i in range(am.nrows):
        ks = np.flatnonzero(a_dense[i])
        if ks.size:
            out.words[i] = np.bitwise_xor.reduce(bm.words[ks], axis=0)
    return out


def matvec(m: "BitMatrix | np.ndarray", x: np.ndarray) -> np.ndarray:
    """``m @ x`` over GF(2) for a 0/1 vector ``x``; returns uint8 0/1."""
    mm = _coerce(m)
    x = np.asarray(x).astype(np.uint8) & 1
    if x.shape != (mm.ncols,):
        raise ValueError(f"vector length {x.shape} != ncols {mm.ncols}")
    ks = np.flatnonzero(x)
    if ks.size == 0:
        return np.zeros(mm.nrows, dtype=np.uint8)
    dense = mm.to_dense()
    return np.bitwise_xor.reduce(dense[:, ks], axis=1)


def solve(m: "BitMatrix | np.ndarray", rhs: np.ndarray) -> np.ndarray | None:
    """One solution of ``m @ x = rhs`` over GF(2), or ``None`` if none.

    Works by row-reducing the augmented matrix.  The returned solution
    sets all free variables to 0.
    """
    mm = _coerce(m)
    rhs = np.asarray(rhs).astype(np.uint8) & 1
    if rhs.shape != (mm.nrows,):
        raise ValueError("rhs length mismatch")
    aug_dense = np.concatenate([mm.to_dense(), rhs[:, None]], axis=1)
    rref, pivots = row_reduce(BitMatrix.from_dense(aug_dense))
    ncols = mm.ncols
    if pivots and pivots[-1] == ncols:  # pivot in augmented column
        return None
    dense = rref.to_dense()
    x = np.zeros(ncols, dtype=np.uint8)
    for r, pcol in enumerate(pivots):
        x[pcol] = dense[r, ncols]
    return x


def is_in_rowspace(m: "BitMatrix | np.ndarray", v: np.ndarray) -> bool:
    """True iff ``v`` lies in the row space of ``m`` over GF(2)."""
    mm = _coerce(m)
    v = np.asarray(v).astype(np.uint8) & 1
    if v.shape != (mm.ncols,):
        raise ValueError("vector length mismatch")
    base = rank(mm)
    stacked = np.concatenate([mm.to_dense(), v[None, :]], axis=0)
    return rank(BitMatrix.from_dense(stacked)) == base
