"""Mod-2 simplicial homology and Betti numbers.

For a complex ``K`` and dimension ``k``:

* the *k-cycle group*  ``D^k = ker ∂_k``          (paper's notation),
* the *k-boundary group* ``B^k = im ∂_{k+1}``,
* the *k-th homology group* ``H^k = D^k / B^k``, and
* the Betti number ``β_k = rank D^k - rank B^k``
  (= log₂|H^k| since every group here is a GF(2) vector space —
  the paper's Lagrange-law derivation).

Edge cases: ``D^0 = C_0`` (``∂_0 = 0``) and ``B^k = 0`` above the top
dimension.  β₀ counts connected components; for a 1-dimensional
complex (every MEA, by Proposition 1) β₁ equals the Maxwell cyclomatic
number ``|E| - |V| + β₀`` — both facts are cross-checked in tests
against :mod:`repro.topology.cycles` and ``networkx``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.topology import gf2
from repro.topology.boundary import BoundaryOperator
from repro.topology.chains import Chain, ChainSpace
from repro.topology.complex import SimplicialComplex


@dataclass(frozen=True)
class HomologySummary:
    """Ranks of the chain/cycle/boundary/homology groups at one dim."""

    dim: int
    chain_rank: int  # dim C_k
    cycle_rank: int  # dim D^k
    boundary_rank: int  # dim B^k
    betti: int  # dim H^k

    @property
    def group_order(self) -> int:
        """|H^k| = 2^betti (every mod-2 homology group is (Z/2)^betti)."""
        return 1 << self.betti


class HomologyCalculator:
    """Computes homology of one complex, caching boundary operators."""

    def __init__(self, complex_: SimplicialComplex) -> None:
        self.complex = complex_
        self._ops: dict[int, BoundaryOperator] = {}

    def boundary(self, k: int) -> BoundaryOperator:
        op = self._ops.get(k)
        if op is None:
            op = self._ops[k] = BoundaryOperator(self.complex, k)
        return op

    def cycle_rank(self, k: int) -> int:
        """dim D^k = dim ker ∂_k (all of C_0 when k = 0)."""
        space = ChainSpace(self.complex, k)
        if k == 0:
            return space.rank
        if space.rank == 0:
            return 0
        return self.boundary(k).nullity()

    def boundary_rank(self, k: int) -> int:
        """dim B^k = rank ∂_{k+1} (zero above the top dimension)."""
        if k >= self.complex.dimension:
            return 0
        upper = ChainSpace(self.complex, k + 1)
        if upper.rank == 0:
            return 0
        return self.boundary(k + 1).rank()

    def betti(self, k: int) -> int:
        """β_k = rank D^k - rank B^k."""
        if k < 0:
            raise ValueError("dimension must be non-negative")
        if k > self.complex.dimension:
            return 0
        return self.cycle_rank(k) - self.boundary_rank(k)

    def betti_numbers(self) -> tuple[int, ...]:
        """``(β_0, ..., β_dim)``."""
        top = self.complex.dimension
        if top < 0:
            return ()
        return tuple(self.betti(k) for k in range(top + 1))

    def summary(self, k: int) -> HomologySummary:
        space = ChainSpace(self.complex, k)
        cyc = self.cycle_rank(k)
        bnd = self.boundary_rank(k)
        return HomologySummary(
            dim=k,
            chain_rank=space.rank,
            cycle_rank=cyc,
            boundary_rank=bnd,
            betti=cyc - bnd,
        )

    def cycle_basis(self, k: int) -> list[Chain]:
        """A basis of D^k as chains (k >= 1)."""
        if k < 1:
            raise ValueError("cycle basis is computed for k >= 1")
        return self.boundary(k).kernel_basis()

    def homology_representatives(self, k: int) -> list[Chain]:
        """Chains whose classes form a basis of ``H^k``.

        Computed by extending a basis of B^k to a basis of D^k: cycle
        basis vectors are added greedily while they increase the rank
        of the stacked (boundary + chosen) matrix.
        """
        space = ChainSpace(self.complex, k)
        if space.rank == 0:
            return []
        want = self.betti(k)
        if want == 0:
            return []
        cycles = self.cycle_basis(k) if k >= 1 else [
            Chain([s]) for s in space.basis
        ]
        # Rows of the boundary image (im ∂_{k+1}) expressed in C_k.
        rows = []
        if k < self.complex.dimension:
            upper = self.boundary(k + 1)
            for col in range(upper.domain.rank):
                image = upper.apply(Chain([upper.domain.basis[col]]))
                rows.append(space.to_vector(image))
        import numpy as np

        stack = (
            np.array(rows, dtype=np.uint8)
            if rows
            else np.zeros((0, space.rank), dtype=np.uint8)
        )
        base_rank = gf2.rank(stack) if stack.size else 0
        reps: list[Chain] = []
        current = stack
        current_rank = base_rank
        for cyc in cycles:
            if len(reps) == want:
                break
            vec = space.to_vector(cyc)
            trial = np.concatenate([current, vec[None, :]], axis=0)
            r = gf2.rank(trial)
            if r > current_rank:
                reps.append(cyc)
                current = trial
                current_rank = r
        if len(reps) != want:  # pragma: no cover - internal invariant
            raise RuntimeError("failed to extend boundary basis to cycles")
        return reps


def betti_numbers(complex_: SimplicialComplex) -> tuple[int, ...]:
    """Betti numbers of ``complex_`` (module-level convenience)."""
    return HomologyCalculator(complex_).betti_numbers()


def euler_characteristic_check(complex_: SimplicialComplex) -> bool:
    """Verify ``Σ(-1)^k f_k == Σ(-1)^k β_k`` (Euler–Poincaré)."""
    chi_f = complex_.euler_characteristic()
    betti = betti_numbers(complex_)
    chi_b = sum((-1) ** k * b for k, b in enumerate(betti))
    return chi_f == chi_b
