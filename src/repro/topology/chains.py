"""Chain groups over GF(2).

A *k-chain* is a formal mod-2 sum of k-simplices of a complex, i.e. a
subset of the k-simplices; the group operation ``⋆`` is symmetric
difference ("duplicate simplices cancel out", §III-B).  The k-chains
form the vector space ``C_k`` over GF(2) with the k-simplices as basis.

:class:`ChainSpace` fixes the basis ordering (sorted simplices) and
converts between simplex subsets and 0/1 coefficient vectors;
:class:`Chain` is the group element.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.topology.complex import SimplicialComplex
from repro.topology.simplex import Simplex


class Chain:
    """An element of a chain group: a frozen set of equal-dim simplices.

    Supports the paper's ``⋆`` operation as ``+`` (and ``^``): mod-2
    addition, i.e. symmetric difference.  The empty chain is the group
    identity; every element is its own inverse.
    """

    __slots__ = ("_simplices", "_dim")

    def __init__(self, simplices: Iterable[Simplex] = ()) -> None:
        fs = frozenset(simplices)
        dims = {s.dimension for s in fs}
        if len(dims) > 1:
            raise ValueError(f"chain mixes dimensions {sorted(dims)}")
        self._simplices = fs
        self._dim = dims.pop() if dims else -1

    @property
    def simplices(self) -> frozenset[Simplex]:
        return self._simplices

    @property
    def dimension(self) -> int:
        """Dimension of the member simplices; -1 for the zero chain."""
        return self._dim

    def is_zero(self) -> bool:
        return not self._simplices

    def __add__(self, other: "Chain") -> "Chain":
        if not isinstance(other, Chain):
            return NotImplemented
        if not self._simplices:
            return other
        if not other._simplices:
            return self
        if self._dim != other._dim:
            raise ValueError(
                f"cannot add chains of dimension {self._dim} and {other._dim}"
            )
        return Chain(self._simplices ^ other._simplices)

    __xor__ = __add__

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Chain):
            return NotImplemented
        return self._simplices == other._simplices

    def __hash__(self) -> int:
        return hash(self._simplices)

    def __len__(self) -> int:
        return len(self._simplices)

    def __iter__(self) -> Iterator[Simplex]:
        return iter(sorted(self._simplices))

    def __repr__(self) -> str:
        if not self._simplices:
            return "Chain(0)"
        inner = " + ".join(repr(s) for s in sorted(self._simplices))
        return f"Chain({inner})"


class ChainSpace:
    """The vector space ``C_k`` of a complex with a fixed ordered basis.

    Provides simplex-set <-> coefficient-vector conversion used by the
    boundary-matrix and homology machinery.
    """

    def __init__(self, complex_: SimplicialComplex, dim: int) -> None:
        if dim < 0:
            raise ValueError("chain dimension must be non-negative")
        self.complex = complex_
        self.dim = dim
        self.basis: list[Simplex] = complex_.simplices(dim)
        self._index = {s: i for i, s in enumerate(self.basis)}

    @property
    def rank(self) -> int:
        """dim C_k = number of k-simplices (each generator has order 2)."""
        return len(self.basis)

    def index(self, simplex: Simplex) -> int:
        try:
            return self._index[simplex]
        except KeyError:
            raise KeyError(
                f"{simplex!r} is not a {self.dim}-simplex of the complex"
            ) from None

    def to_vector(self, chain: Chain | Iterable[Simplex]) -> np.ndarray:
        """Coefficient vector (uint8 0/1, length = rank)."""
        if isinstance(chain, Chain):
            members: Iterable[Simplex] = chain.simplices
        else:
            members = chain
        vec = np.zeros(self.rank, dtype=np.uint8)
        for s in members:
            vec[self.index(s)] ^= 1
        return vec

    def from_vector(self, vec: np.ndarray) -> Chain:
        vec = np.asarray(vec)
        if vec.shape != (self.rank,):
            raise ValueError(
                f"vector length {vec.shape} != chain-space rank {self.rank}"
            )
        return Chain(self.basis[i] for i in np.flatnonzero(vec & 1))

    def random_chain(self, rng: np.random.Generator) -> Chain:
        """A uniformly random element of C_k (for property tests)."""
        bits = rng.integers(0, 2, size=self.rank, dtype=np.uint8)
        return self.from_vector(bits)

    def __repr__(self) -> str:
        return f"ChainSpace(dim={self.dim}, rank={self.rank})"
