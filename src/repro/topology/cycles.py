"""Cycle bases and the Maxwell cyclomatic number on graphs.

Kirchhoff's second law needs one independent equation per independent
loop; Maxwell's *cyclomatic number* ``|E| - |V| + c`` (``c`` connected
components) counts them (§II-A).  This module derives an explicit
*fundamental cycle basis* from a spanning forest: each non-tree edge
closes exactly one cycle with the tree path between its endpoints.
These cycles are the concrete, independently-processable work units
("holes") behind the paper's Betti-number-aware parallelism.

Graphs here are plain vertex/edge lists so the module works for both
the MEA joint graph and arbitrary circuits; conversion helpers to and
from :class:`~repro.topology.complex.SimplicialComplex` are provided.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Hashable, Iterable, Sequence

from repro.topology.complex import SimplicialComplex
from repro.topology.simplex import Simplex

Vertex = Hashable
Edge = tuple[Vertex, Vertex]


def _normalize(edge: Edge) -> Edge:
    a, b = edge
    if a == b:
        raise ValueError(f"self-loop at {a!r} not allowed")
    return (a, b) if repr(a) <= repr(b) else (b, a)


@dataclass(frozen=True)
class CycleBasis:
    """A fundamental cycle basis.

    Attributes
    ----------
    cycles:
        Each cycle as a tuple of normalised edges.
    tree_edges / chord_edges:
        The spanning-forest partition that generated the basis; cycle
        ``k`` is the unique cycle of ``chord_edges[k]``.
    """

    cycles: tuple[tuple[Edge, ...], ...]
    tree_edges: tuple[Edge, ...]
    chord_edges: tuple[Edge, ...]

    def __len__(self) -> int:
        return len(self.cycles)


def cyclomatic_number(
    vertices: Sequence[Vertex], edges: Sequence[Edge]
) -> int:
    """``|E| - |V| + c`` for the simple graph ``(vertices, edges)``."""
    vset = set(vertices)
    eset = {_normalize(e) for e in edges}
    for a, b in eset:
        if a not in vset or b not in vset:
            raise ValueError(f"edge ({a!r}, {b!r}) uses unknown vertex")
    comps = _component_count(vset, eset)
    return len(eset) - len(vset) + comps


def _component_count(vset: set[Vertex], eset: set[Edge]) -> int:
    adj: dict[Vertex, list[Vertex]] = {v: [] for v in vset}
    for a, b in eset:
        adj[a].append(b)
        adj[b].append(a)
    seen: set[Vertex] = set()
    comps = 0
    for v in vset:
        if v in seen:
            continue
        comps += 1
        queue = deque([v])
        seen.add(v)
        while queue:
            u = queue.popleft()
            for w in adj[u]:
                if w not in seen:
                    seen.add(w)
                    queue.append(w)
    return comps


def fundamental_cycles(
    vertices: Sequence[Vertex], edges: Sequence[Edge]
) -> CycleBasis:
    """Fundamental cycle basis from a BFS spanning forest.

    Deterministic: vertices are scanned in the given order and
    neighbours in sorted order, so the same graph always yields the
    same basis — a requirement for the deterministic work partitioning
    of §IV-C.
    """
    vlist = list(dict.fromkeys(vertices))
    eset = sorted({_normalize(e) for e in edges}, key=repr)
    adj: dict[Vertex, list[Vertex]] = {v: [] for v in vlist}
    for a, b in eset:
        if a not in adj or b not in adj:
            raise ValueError(f"edge ({a!r}, {b!r}) uses unknown vertex")
        adj[a].append(b)
        adj[b].append(a)
    for v in adj:
        adj[v].sort(key=repr)

    parent: dict[Vertex, Vertex | None] = {}
    tree: set[Edge] = set()
    for root in vlist:
        if root in parent:
            continue
        parent[root] = None
        queue = deque([root])
        while queue:
            u = queue.popleft()
            for w in adj[u]:
                if w not in parent:
                    parent[w] = u
                    tree.add(_normalize((u, w)))
                    queue.append(w)

    chords = [e for e in eset if e not in tree]
    cycles: list[tuple[Edge, ...]] = []
    for a, b in chords:
        path_a = _root_path(parent, a)
        path_b = _root_path(parent, b)
        # Trim the common suffix (shared ancestry) to get the tree path.
        ia, ib = len(path_a) - 1, len(path_b) - 1
        while ia > 0 and ib > 0 and path_a[ia - 1] == path_b[ib - 1]:
            ia -= 1
            ib -= 1
        walk = path_a[: ia + 1] + path_b[:ib][::-1]
        cycle_edges = [_normalize((a, b))]
        for u, w in zip(walk, walk[1:]):
            cycle_edges.append(_normalize((u, w)))
        cycles.append(tuple(cycle_edges))
    return CycleBasis(
        cycles=tuple(cycles),
        tree_edges=tuple(sorted(tree, key=repr)),
        chord_edges=tuple(chords),
    )


def _root_path(parent: dict[Vertex, Vertex | None], v: Vertex) -> list[Vertex]:
    path = [v]
    while parent[path[-1]] is not None:
        path.append(parent[path[-1]])
    return path


def cycle_is_closed(cycle: Sequence[Edge]) -> bool:
    """True iff every vertex of the edge multiset has even degree."""
    degree: dict[Vertex, int] = {}
    for a, b in cycle:
        degree[a] = degree.get(a, 0) + 1
        degree[b] = degree.get(b, 0) + 1
    return all(d % 2 == 0 for d in degree.values())


def graph_to_complex(
    vertices: Sequence[Vertex], edges: Sequence[Edge]
) -> SimplicialComplex:
    """The 1-complex of a graph (for homology cross-checks)."""
    return SimplicialComplex.from_graph(vertices, [_normalize(e) for e in edges])


def complex_to_graph(
    complex_: SimplicialComplex,
) -> tuple[list[Vertex], list[Edge]]:
    """Vertices and 1-simplices of a complex as a graph."""
    verts = complex_.vertices()
    edges = [tuple(s.vertices) for s in complex_.simplices(1)]
    return verts, edges  # type: ignore[return-value]


def cycles_as_chains(
    basis: CycleBasis, complex_: SimplicialComplex
) -> list:
    """Each basis cycle as a 1-chain of ``complex_`` (boundary must be 0)."""
    from repro.topology.chains import Chain

    out = []
    for cyc in basis.cycles:
        out.append(Chain(Simplex(e) for e in cyc))
    return out
