"""Cochains, the coboundary operator, and Kirchhoff via cohomology.

§II-A of the paper notes that Kirchhoff's 1847 theorem generalizes
beyond positive real resistances "using algebraic topology, i.e., the
introduction of *cochain* and *coboundary*" (citing Giblin).  This
module supplies that machinery over the reals:

* a *k-cochain* assigns a number to every k-simplex — a 0-cochain is a
  node potential assignment, a 1-cochain an (oriented) edge voltage or
  current assignment;
* the *coboundary* ``δ_k : C^k -> C^{k+1}`` is the transpose of the
  boundary operator with orientation signs; ``δ ∘ δ = 0``;
* Kirchhoff's laws become exactness statements:
  - **L2**: a 1-cochain of voltage drops is physical iff it is a
    *coboundary* ``δ(potential)`` — its loop sums vanish;
  - **L1**: a 1-cochain of currents is physical iff it is a *cycle*
    of the dual pairing — its vertex sums vanish.

On a 1-dimensional complex with a fixed edge orientation (we orient
each edge from its smaller to larger vertex, matching the ordering of
:class:`~repro.topology.simplex.Simplex`), the matrices are small and
dense; the point is conceptual completeness plus cross-checks with the
circuit substrate, not scale.
"""

from __future__ import annotations

import numpy as np

from repro.topology.chains import ChainSpace
from repro.topology.complex import SimplicialComplex


class CochainSpace:
    """Real-valued cochains ``C^k`` of a complex, with a fixed basis.

    The basis order matches :class:`ChainSpace` so chain/cochain
    pairings are plain dot products.
    """

    def __init__(self, complex_: SimplicialComplex, dim: int) -> None:
        self.complex = complex_
        self.dim = dim
        self._chain_space = ChainSpace(complex_, dim)
        self.basis = self._chain_space.basis

    @property
    def rank(self) -> int:
        return len(self.basis)

    def zero(self) -> np.ndarray:
        return np.zeros(self.rank, dtype=np.float64)

    def from_function(self, fn) -> np.ndarray:
        """Evaluate ``fn(simplex) -> float`` on the basis."""
        return np.array([float(fn(s)) for s in self.basis])

    def index(self, simplex) -> int:
        return self._chain_space.index(simplex)


def coboundary_matrix(complex_: SimplicialComplex, k: int) -> np.ndarray:
    """The signed matrix of ``δ_k : C^k -> C^{k+1}``.

    Entry ``[τ, σ]`` is the incidence sign of the k-face σ in the
    (k+1)-simplex τ: with vertices sorted, face ``i`` (dropping the
    i-th vertex) gets sign ``(-1)^i`` — the standard simplicial
    convention.  For ``k = 0`` this is the oriented node-edge
    incidence transpose: ``(δ f)(u -> v) = f(v) - f(u)``.
    """
    if k < 0:
        raise ValueError("cochain dimension must be non-negative")
    lower = ChainSpace(complex_, k)
    upper = ChainSpace(complex_, k + 1)
    mat = np.zeros((upper.rank, lower.rank), dtype=np.float64)
    for row, tau in enumerate(upper.basis):
        verts = tau.vertices
        for i in range(len(verts)):
            face_verts = verts[:i] + verts[i + 1 :]
            from repro.topology.simplex import Simplex

            face = Simplex(face_verts)
            mat[row, lower.index(face)] = (-1.0) ** i
    return mat


def apply_coboundary(
    complex_: SimplicialComplex, k: int, cochain: np.ndarray
) -> np.ndarray:
    """``δ_k(cochain)`` as a (k+1)-cochain vector."""
    mat = coboundary_matrix(complex_, k)
    cochain = np.asarray(cochain, dtype=np.float64)
    if cochain.shape != (mat.shape[1],):
        raise ValueError(
            f"cochain has length {cochain.shape}, expected {mat.shape[1]}"
        )
    return mat @ cochain


def coboundary_squared_is_zero(complex_: SimplicialComplex, k: int) -> bool:
    """Check ``δ_{k+1} ∘ δ_k = 0`` numerically."""
    d1 = coboundary_matrix(complex_, k)
    d2 = coboundary_matrix(complex_, k + 1)
    return bool(np.allclose(d2 @ d1, 0.0, atol=1e-12))


# -- Kirchhoff as exactness ---------------------------------------------------


def potential_to_voltage_drops(
    complex_: SimplicialComplex, potentials: np.ndarray
) -> np.ndarray:
    """Voltage 1-cochain of a node-potential 0-cochain: ``δ^0 p``.

    Edge ``{u, v}`` (oriented u < v) carries ``p(v) - p(u)``.
    """
    return apply_coboundary(complex_, 0, potentials)


def is_physical_voltage(
    complex_: SimplicialComplex, drops: np.ndarray, atol: float = 1e-9
) -> bool:
    """Kirchhoff L2 as cohomology: drops ∈ image(δ^0)?

    On a connected complex, H^1 measured against *real* coefficients
    has dimension β1; a 1-cochain is a coboundary iff its pairing with
    every cycle vanishes.  We test by least-squares projection onto
    image(δ^0).
    """
    d0 = coboundary_matrix(complex_, 0)
    drops = np.asarray(drops, dtype=np.float64)
    if drops.shape != (d0.shape[0],):
        raise ValueError("voltage cochain has wrong length")
    p, *_ = np.linalg.lstsq(d0, drops, rcond=None)
    return bool(np.allclose(d0 @ p, drops, atol=atol))


def recover_potentials(
    complex_: SimplicialComplex, drops: np.ndarray
) -> np.ndarray:
    """Integrate a physical voltage 1-cochain back to potentials.

    Returns the minimum-norm potential (defined up to a constant per
    component); raises if the cochain is not exact (violates L2).
    """
    d0 = coboundary_matrix(complex_, 0)
    drops = np.asarray(drops, dtype=np.float64)
    p, *_ = np.linalg.lstsq(d0, drops, rcond=None)
    if not np.allclose(d0 @ p, drops, atol=1e-8 * max(1.0, np.abs(drops).max())):
        raise ValueError("1-cochain is not exact: Kirchhoff L2 violated")
    return p


def current_conservation_residual(
    complex_: SimplicialComplex, currents: np.ndarray
) -> np.ndarray:
    """Kirchhoff L1 residual of a current 1-cochain: ``(δ^0)^T i``.

    The transpose of the coboundary sums oriented currents at each
    vertex; a source-free physical current has zero residual — i.e.
    currents lie in ker(∂_1), the cycle space.
    """
    d0 = coboundary_matrix(complex_, 0)
    currents = np.asarray(currents, dtype=np.float64)
    if currents.shape != (d0.shape[0],):
        raise ValueError("current cochain has wrong length")
    return d0.T @ currents


def harmonic_dimension(complex_: SimplicialComplex) -> int:
    """dim of harmonic 1-cochains — the real first Betti number.

    Hodge-style count: ``H^1 ≅ ker δ^1 / im δ^0``, and since
    ``im δ^0 ⊆ ker δ^1`` always, the dimension is
    ``dim ker δ^1 - rank δ^0``.  For a 1-dimensional complex (every
    MEA) ``δ^1 = 0``, so this is ``|E| - rank δ^0 = |E| - |V| + c``:
    real and mod-2 β1 coincide for graphs, cross-checked in tests
    against :mod:`repro.topology.homology`.
    """
    d0 = coboundary_matrix(complex_, 0)
    edges = d0.shape[0]
    rank0 = int(np.linalg.matrix_rank(d0)) if d0.size else 0
    if complex_.dimension >= 2:
        d1 = coboundary_matrix(complex_, 1)
        rank1 = int(np.linalg.matrix_rank(d1)) if d1.size else 0
        return (edges - rank1) - rank0
    return edges - rank0
