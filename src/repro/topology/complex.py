"""Abstract simplicial complexes.

A complex is a downward-closed family of simplices: every face of a
member is a member, and the intersection of any two members is a face
of both (§III-A; Figure 3 of the paper shows a polyhedron violating
this).  :class:`SimplicialComplex` enforces closure on insertion, so
any constructed instance *is* simplicial by construction; the explicit
checker :meth:`verify_simplicial` exists to validate externally
supplied simplex families (and to property-test Proposition 1).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Iterator, Mapping, Sequence

from repro.topology.simplex import Simplex, Vertex


class SimplicialComplex:
    """A finite abstract simplicial complex.

    Simplices are stored per dimension in insertion-independent sorted
    order, which fixes the column/row ordering of every boundary matrix
    derived from the complex — important for reproducible parallel
    decompositions.
    """

    def __init__(self, simplices: Iterable[Simplex | Sequence[Vertex]] = ()) -> None:
        self._by_dim: dict[int, set[Simplex]] = defaultdict(set)
        for s in simplices:
            self.add(s)

    # -- construction ---------------------------------------------------

    def add(self, simplex: Simplex | Sequence[Vertex]) -> None:
        """Insert ``simplex`` and all of its faces (downward closure)."""
        if not isinstance(simplex, Simplex):
            simplex = Simplex(simplex)
        for face in simplex.faces():
            self._by_dim[face.dimension].add(face)

    @classmethod
    def from_maximal(
        cls, maximal: Iterable[Sequence[Vertex]]
    ) -> "SimplicialComplex":
        """Build from a list of maximal simplices (facets)."""
        return cls(Simplex(m) for m in maximal)

    @classmethod
    def from_graph(cls, nodes: Iterable[Vertex], edges: Iterable[tuple[Vertex, Vertex]]) -> "SimplicialComplex":
        """The 1-dimensional complex of a simple graph."""
        out = cls()
        for v in nodes:
            out.add(Simplex([v]))
        for u, v in edges:
            if u == v:
                raise ValueError(f"self-loop at {u!r} is not a simplex")
            out.add(Simplex([u, v]))
        return out

    # -- queries ----------------------------------------------------------

    @property
    def dimension(self) -> int:
        """``max(dim σ)`` over the complex; -1 for the empty complex."""
        dims = [d for d, group in self._by_dim.items() if group]
        return max(dims) if dims else -1

    def simplices(self, dim: int | None = None) -> list[Simplex]:
        """Sorted list of simplices (of one dimension, or all)."""
        if dim is not None:
            return sorted(self._by_dim.get(dim, ()))
        out: list[Simplex] = []
        for d in sorted(self._by_dim):
            out.extend(sorted(self._by_dim[d]))
        return out

    def count(self, dim: int) -> int:
        """Number of ``dim``-simplices (the f-vector entry f_dim)."""
        return len(self._by_dim.get(dim, ()))

    def f_vector(self) -> tuple[int, ...]:
        """``(f_0, f_1, ..., f_dim)``."""
        top = self.dimension
        return tuple(self.count(d) for d in range(top + 1))

    def euler_characteristic(self) -> int:
        """``Σ (-1)^k f_k`` — equals ``Σ (-1)^k β_k`` (checked in tests)."""
        return sum((-1) ** d * f for d, f in enumerate(self.f_vector()))

    def __contains__(self, simplex: Simplex | Sequence[Vertex]) -> bool:
        if not isinstance(simplex, Simplex):
            simplex = Simplex(simplex)
        return simplex in self._by_dim.get(simplex.dimension, ())

    def __iter__(self) -> Iterator[Simplex]:
        return iter(self.simplices())

    def __len__(self) -> int:
        return sum(len(g) for g in self._by_dim.values())

    def vertices(self) -> list[Vertex]:
        return [s.vertices[0] for s in self.simplices(0)]

    def skeleton(self, k: int) -> "SimplicialComplex":
        """The k-skeleton: all simplices of dimension <= k."""
        out = SimplicialComplex()
        for d in range(min(k, self.dimension) + 1):
            for s in self._by_dim.get(d, ()):
                out._by_dim[d].add(s)
        return out

    def star(self, vertex: Vertex) -> list[Simplex]:
        """All simplices containing ``vertex``."""
        return [s for s in self.simplices() if vertex in s]

    def link_edges(self, vertex: Vertex) -> list[Vertex]:
        """Neighbours of ``vertex`` through 1-simplices."""
        out = []
        for s in self._by_dim.get(1, ()):
            if vertex in s:
                a, b = s.vertices
                out.append(b if a == vertex else a)
        return sorted(out, key=repr)

    # -- validation ---------------------------------------------------------

    def verify_simplicial(self) -> None:
        """Raise :class:`NotSimplicialError` if the family is invalid.

        Checks the two defining properties on the stored family:
        (1) downward closure — every face of a member is a member;
        (2) the intersection of any two members is a member (possibly
        empty).  (2) follows from (1) for *abstract* complexes, but we
        check both so this method can diagnose hand-built families
        mirroring the paper's Figure 3 discussion.
        """
        for s in self.simplices():
            for face in s.faces():
                if face not in self:
                    raise NotSimplicialError(
                        f"face {face!r} of {s!r} is missing from the complex"
                    )
        sims = self.simplices()
        for i, a in enumerate(sims):
            for b in sims[i + 1 :]:
                shared = a.intersection(b)
                if shared is not None and shared not in self:
                    raise NotSimplicialError(
                        f"intersection {shared!r} of {a!r} and {b!r} is not "
                        "a simplex of the complex"
                    )

    def is_simplicial(self) -> bool:
        try:
            self.verify_simplicial()
        except NotSimplicialError:
            return False
        return True

    def adjacency(self) -> Mapping[Vertex, list[Vertex]]:
        """Vertex adjacency through 1-simplices (for graph algorithms)."""
        adj: dict[Vertex, list[Vertex]] = {v: [] for v in self.vertices()}
        for s in self._by_dim.get(1, ()):
            a, b = s.vertices
            adj[a].append(b)
            adj[b].append(a)
        for v in adj:
            adj[v].sort(key=repr)
        return adj

    def connected_components(self) -> list[set[Vertex]]:
        """Vertex sets of the connected components (via 1-skeleton)."""
        adj = self.adjacency()
        seen: set[Vertex] = set()
        comps: list[set[Vertex]] = []
        for v in adj:
            if v in seen:
                continue
            stack = [v]
            comp: set[Vertex] = set()
            while stack:
                u = stack.pop()
                if u in comp:
                    continue
                comp.add(u)
                stack.extend(w for w in adj[u] if w not in comp)
            seen |= comp
            comps.append(comp)
        return comps

    def __repr__(self) -> str:
        return (
            f"SimplicialComplex(dim={self.dimension}, "
            f"f_vector={self.f_vector()})"
        )


class NotSimplicialError(ValueError):
    """Raised when a simplex family violates the simplicial property."""


def check_family_simplicial(
    family: Iterable[Sequence[Vertex]],
) -> tuple[bool, str | None]:
    """Check an arbitrary family of vertex sets *without* closure repair.

    Unlike :class:`SimplicialComplex` (which closes downward on
    insertion), this inspects the family as given — e.g. the paper's
    Figure 3 family, where triangles {a,b,c} and {d,e,f} are present
    but their geometric overlap segment {b,f} is not.  Returns
    ``(ok, reason)``.
    """
    sims = [Simplex(f) for f in family]
    present = set(sims)
    for s in sims:
        for face in s.faces():
            if face not in present:
                return False, f"face {face!r} of {s!r} missing"
    return True, None
