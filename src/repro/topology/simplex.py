"""Abstract simplices.

Following §III-A of the paper, a *simplex* here is an abstract one: a
finite set of vertices.  Any subset is a *face* and the dimension is
``|vertices| - 1``.  Vertices may be any hashable, orderable labels
(the MEA model uses integer joint ids and string wire names).
"""

from __future__ import annotations

from itertools import combinations
from typing import Hashable, Iterable, Iterator

Vertex = Hashable


class Simplex:
    """An immutable abstract simplex (a frozen, sorted vertex tuple).

    Two simplices are equal iff their vertex sets are equal; ordering
    is lexicographic on the sorted vertex tuple so simplices sort
    deterministically inside a complex.
    """

    __slots__ = ("_vertices",)

    def __init__(self, vertices: Iterable[Vertex]) -> None:
        vs = tuple(sorted(set(vertices), key=_sort_key))
        if not vs:
            raise ValueError(
                "empty simplex is not constructible; the empty face is "
                "represented implicitly"
            )
        self._vertices = vs

    @property
    def vertices(self) -> tuple[Vertex, ...]:
        return self._vertices

    @property
    def dimension(self) -> int:
        """``|σ| - 1`` per the paper's definition."""
        return len(self._vertices) - 1

    def faces(self, dim: int | None = None) -> Iterator["Simplex"]:
        """Yield proper and improper nonempty faces.

        With ``dim`` given, only faces of that dimension are yielded;
        otherwise all faces from dimension 0 up to ``self.dimension``.
        """
        sizes = (
            range(1, len(self._vertices) + 1)
            if dim is None
            else [dim + 1]
        )
        for size in sizes:
            if size < 1 or size > len(self._vertices):
                continue
            for combo in combinations(self._vertices, size):
                yield Simplex(combo)

    def boundary_faces(self) -> Iterator["Simplex"]:
        """The codimension-1 faces (the terms of the boundary operator)."""
        if self.dimension == 0:
            return iter(())
        return self.faces(self.dimension - 1)

    def is_face_of(self, other: "Simplex") -> bool:
        return set(self._vertices) <= set(other._vertices)

    def intersection(self, other: "Simplex") -> "Simplex | None":
        """The common face, or ``None`` for the empty intersection."""
        shared = set(self._vertices) & set(other._vertices)
        return Simplex(shared) if shared else None

    def __contains__(self, vertex: Vertex) -> bool:
        return vertex in self._vertices

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._vertices)

    def __len__(self) -> int:
        return len(self._vertices)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Simplex):
            return NotImplemented
        return self._vertices == other._vertices

    def __lt__(self, other: "Simplex") -> bool:
        if not isinstance(other, Simplex):
            return NotImplemented
        key_self = (len(self._vertices), tuple(map(_sort_key, self._vertices)))
        key_other = (len(other._vertices), tuple(map(_sort_key, other._vertices)))
        return key_self < key_other

    def __hash__(self) -> int:
        return hash(self._vertices)

    def __repr__(self) -> str:
        inner = ", ".join(map(repr, self._vertices))
        return f"Simplex({{{inner}}})"


def _sort_key(v: Vertex) -> tuple[str, str]:
    """Total order over mixed vertex label types (ints, strings, ...)."""
    return (type(v).__name__, repr(v))


def simplex(*vertices: Vertex) -> Simplex:
    """Convenience constructor: ``simplex(0, 1)`` == ``Simplex([0, 1])``."""
    return Simplex(vertices)
