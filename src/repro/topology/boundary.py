"""The boundary operator ``∂_k : C_k -> C_{k-1}`` over GF(2).

``∂`` sends a k-simplex to the mod-2 sum of its (k-1)-faces.  The
fundamental identity ``∂ ∘ ∂ = 0`` makes the chain spaces a chain
complex and is property-tested in the suite; homology is then
``ker ∂_k / im ∂_{k+1}``.

Matrices are built bit-packed (:class:`~repro.topology.gf2.BitMatrix`)
with rows indexed by (k-1)-simplices and columns by k-simplices, both
in the :class:`~repro.topology.chains.ChainSpace` basis order.
"""

from __future__ import annotations

import numpy as np

from repro.topology import gf2
from repro.topology.chains import Chain, ChainSpace
from repro.topology.complex import SimplicialComplex


def boundary_chain(chain: Chain) -> Chain:
    """Apply ``∂`` to a chain directly (set-level, no matrices).

    Each k-simplex contributes its (k-1)-faces mod 2; shared faces of
    adjacent simplices cancel, which is exactly why the boundary of a
    loop of edges is the zero chain.
    """
    if chain.is_zero() or chain.dimension == 0:
        return Chain()
    acc: set = set()
    for simplex in chain.simplices:
        for face in simplex.boundary_faces():
            if face in acc:
                acc.remove(face)
            else:
                acc.add(face)
    return Chain(acc)


class BoundaryOperator:
    """The matrix of ``∂_k`` for one complex and one dimension ``k >= 1``.

    Attributes
    ----------
    matrix:
        ``BitMatrix`` of shape ``(f_{k-1}, f_k)``.
    domain, codomain:
        The :class:`ChainSpace` bases fixing column/row order.
    """

    def __init__(self, complex_: SimplicialComplex, k: int) -> None:
        if k < 1:
            raise ValueError("boundary operator is defined for k >= 1")
        self.k = k
        self.domain = ChainSpace(complex_, k)
        self.codomain = ChainSpace(complex_, k - 1)
        self.matrix = gf2.BitMatrix.zeros(self.codomain.rank, self.domain.rank)
        for col, simplex in enumerate(self.domain.basis):
            for face in simplex.boundary_faces():
                self.matrix.set(self.codomain.index(face), col, 1)

    def apply(self, chain: Chain) -> Chain:
        """``∂(chain)`` via the matrix (agrees with :func:`boundary_chain`)."""
        vec = self.domain.to_vector(chain)
        out = gf2.matvec(self.matrix, vec)
        return self.codomain.from_vector(out)

    def rank(self) -> int:
        """rank ∂_k = dim B_{k-1}, the (k-1)-boundary group."""
        return gf2.rank(self.matrix)

    def kernel_basis(self) -> list[Chain]:
        """Basis of the k-cycle group D^k = ker ∂_k, as chains."""
        null = gf2.nullspace(self.matrix)
        return [self.domain.from_vector(null.to_dense_row(i)) for i in range(null.nrows)]

    def nullity(self) -> int:
        """dim ker ∂_k = f_k - rank ∂_k (rank-nullity)."""
        return self.domain.rank - self.rank()

    def __repr__(self) -> str:
        return (
            f"BoundaryOperator(k={self.k}, "
            f"{self.codomain.rank}x{self.domain.rank})"
        )


def boundary_matrix_dense(complex_: SimplicialComplex, k: int) -> np.ndarray:
    """Convenience: the ``∂_k`` matrix as a dense uint8 array."""
    return BoundaryOperator(complex_, k).matrix.to_dense()
