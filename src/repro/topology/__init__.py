"""Algebraic-topology substrate (paper §III).

Layers, bottom-up:

* :mod:`repro.topology.gf2` — bit-packed GF(2) linear algebra.
* :mod:`repro.topology.simplex` / :mod:`repro.topology.complex` —
  abstract simplices and simplicial complexes.
* :mod:`repro.topology.chains` / :mod:`repro.topology.boundary` —
  chain groups C_k and the boundary operator ∂.
* :mod:`repro.topology.homology` — cycle group D^k, boundary group
  B^k, homology H^k = D^k/B^k, Betti numbers β_k.
* :mod:`repro.topology.cycles` — spanning-tree fundamental cycle
  bases and the Maxwell cyclomatic number (the concrete "holes" that
  seed the parallel decomposition of §IV).
"""

from repro.topology.boundary import BoundaryOperator, boundary_chain
from repro.topology.chains import Chain, ChainSpace
from repro.topology.complex import (
    NotSimplicialError,
    SimplicialComplex,
    check_family_simplicial,
)
from repro.topology.cycles import (
    CycleBasis,
    cyclomatic_number,
    fundamental_cycles,
)
from repro.topology.homology import (
    HomologyCalculator,
    HomologySummary,
    betti_numbers,
)
from repro.topology.cochains import (
    CochainSpace,
    coboundary_matrix,
    harmonic_dimension,
    is_physical_voltage,
    potential_to_voltage_drops,
    recover_potentials,
)
from repro.topology.simplex import Simplex, simplex

__all__ = [
    "BoundaryOperator",
    "CochainSpace",
    "coboundary_matrix",
    "harmonic_dimension",
    "is_physical_voltage",
    "potential_to_voltage_drops",
    "recover_potentials",
    "Chain",
    "ChainSpace",
    "CycleBasis",
    "HomologyCalculator",
    "HomologySummary",
    "NotSimplicialError",
    "Simplex",
    "SimplicialComplex",
    "betti_numbers",
    "boundary_chain",
    "check_family_simplicial",
    "cyclomatic_number",
    "fundamental_cycles",
    "simplex",
]
